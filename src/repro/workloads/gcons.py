"""GCons — graph construction (CompDyn).

"Constructs a directed graph with a given number of vertices and edges"
(Section 4.2).  The kernel *is* the framework's add-vertex/add-edge path:
write-heavy, dynamic footprint — but with good locality, because each new
vertex/edge struct is reused immediately after its bump allocation (the
paper's explanation for GCons's low MPKI within CompDyn, Fig. 7).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.errors import DuplicateEdge
from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from .base import Workload


class GCons(Workload):
    """Build ``n_vertices`` and insert ``edges`` into (an empty) ``g``;
    sets each new vertex's ``level`` and edge's ``weight`` property right
    after insertion (the immediate-reuse pattern)."""

    NAME = "GCons"
    CTYPE = ComputationType.COMP_DYN
    CATEGORY = WorkloadCategory.UPDATE
    HAS_GPU = False

    def kernel(self, g: PropertyGraph, t, *, n_vertices: int,
               edges: np.ndarray, **_: Any) -> dict[str, Any]:
        if g.num_vertices:
            raise ValueError("GCons expects an empty target graph")
        for vid in range(n_vertices):
            v = g.add_vertex(vid)
            t.i(2)
            g.vset(v, "level", 0)    # immediate reuse of the fresh struct
        inserted = 0
        for s, d in edges:
            t.i(3)
            try:
                node = g.add_edge(int(s), int(d))
            except DuplicateEdge:
                continue
            g.eset(node, "weight", 1.0)
            inserted += 1
        return {"n_vertices": g.num_vertices, "n_edges": inserted}
