"""Correctness tests for the traversal workloads (BFS, DFS, SPath)."""

import pytest

from repro import workloads as W
from repro.core.trace import Tracer
from repro.datagen import ca_road, ldbc
from tests.conftest import build


class TestBFS:
    def test_levels_match_networkx(self, small_spec, small_graph):
        res = W.run("BFS", small_graph, root=0)
        assert res.outputs["levels"] == dict(W.BFS.reference(small_spec, 0))

    def test_parents_are_one_level_up(self, small_graph):
        res = W.run("BFS", small_graph, root=0)
        levels, parents = res.outputs["levels"], res.outputs["parents"]
        for v, p in parents.items():
            if v != 0:
                assert levels[p] == levels[v] - 1

    def test_visited_counts(self, small_spec, small_graph):
        res = W.run("BFS", small_graph, root=0)
        assert res.outputs["visited"] == len(res.outputs["levels"])

    def test_unreachable_not_labelled(self):
        spec = ldbc(200, avg_degree=4, seed=8)
        g = build(spec)
        iso = g.add_vertex(10_000)
        res = W.run("BFS", g, root=0)
        assert 10_000 not in res.outputs["levels"]
        assert g.vget(iso, "level") == -1

    def test_traced_matches_untraced(self, small_spec):
        r1 = W.run("BFS", build(small_spec), root=0)
        r2 = W.run("BFS", build(small_spec), tracer=Tracer(), root=0)
        assert r1.outputs["levels"] == r2.outputs["levels"]
        assert r2.trace is not None and r2.trace.n_accesses > 0

    def test_road_network(self):
        spec = ca_road(400, seed=2)
        g = build(spec)
        res = W.run("BFS", g, root=0)
        ref = W.BFS.reference(spec, 0)
        assert res.outputs["levels"] == dict(ref)

    def test_writes_level_property(self, small_graph):
        W.run("BFS", small_graph, root=0)
        assert small_graph.vget(0, "level") == 0


class TestDFS:
    def test_preorder_matches_networkx(self, small_spec, small_graph):
        res = W.run("DFS", small_graph, root=0)
        got = sorted(res.outputs["order"], key=res.outputs["order"].get)
        assert got == W.DFS.reference(small_spec, 0)

    def test_orders_unique_and_dense(self, small_graph):
        res = W.run("DFS", small_graph, root=0)
        orders = sorted(res.outputs["order"].values())
        assert orders == list(range(len(orders)))

    def test_root_first(self, small_graph):
        res = W.run("DFS", small_graph, root=3)
        assert res.outputs["order"][3] == 0
        assert res.outputs["parents"][3] == 3


class TestSPath:
    def test_unit_weights_match_networkx(self, small_spec, small_graph):
        res = W.run("SPath", small_graph, root=0)
        ref = W.SPath.reference(small_spec, 0)
        assert res.outputs["dists"] == {k: float(v) for k, v in ref.items()}

    def test_nonuniform_weights(self, tiny_spec):
        import networkx as nx
        g = build(tiny_spec)
        nxg = tiny_spec.nx()
        # weight edges by (src + dst) % 5 + 1
        for vid in g.vertex_ids():
            for dst, node in g.find_vertex(vid).out.items():
                w = (vid + dst) % 5 + 1.0
                g.eset(node, "weight", w)
                nxg[vid][dst]["weight"] = w
        res = W.run("SPath", g, root=0)
        ref = nx.single_source_dijkstra_path_length(nxg, 0)
        for v, d in ref.items():
            assert res.outputs["dists"][v] == pytest.approx(d)

    def test_negative_weight_rejected(self, tiny_spec):
        g = build(tiny_spec)
        v0 = g.find_vertex(0)
        first = next(iter(v0.out.values()))
        g.eset(first, "weight", -1.0)
        with pytest.raises(ValueError):
            W.run("SPath", g, root=0)

    def test_settled_counts(self, small_graph):
        res = W.run("SPath", small_graph, root=0)
        assert res.outputs["settled"] == len(res.outputs["dists"])

    def test_traced_matches_untraced(self, small_spec):
        r1 = W.run("SPath", build(small_spec), root=0)
        r2 = W.run("SPath", build(small_spec), tracer=Tracer(), root=0)
        assert r1.outputs["dists"] == r2.outputs["dists"]
