"""Dataset registry — the paper's Tables 5 & 7, scaled.

``experiment_datasets(scale)`` returns the five characterization datasets
of Table 7 (four real-world sources + LDBC), sized at ``scale`` times the
repository defaults (which are the paper's vertex counts divided by ~250,
matching the cache scaling of ``SCALED_XEON`` — see DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..core.taxonomy import DataSource
from .information import knowledge_repo
from .nature import watson_gene
from .rmat import rmat
from .social import ldbc, twitter
from .spec import GraphSpec
from .technology import ca_road


@dataclass(frozen=True)
class DatasetEntry:
    """Registry row: paper-reported size and the scaled generator."""

    name: str
    source: DataSource
    paper_vertices: int          # Table 7 experiment sizes
    paper_edges: int
    default_vertices: int        # repository scaled default
    factory: Callable[..., GraphSpec]


REGISTRY: dict[str, DatasetEntry] = {
    "twitter": DatasetEntry("Twitter Graph (sampled)", DataSource.SOCIAL,
                            11_000_000, 85_000_000, 11000, twitter),
    "knowledge": DatasetEntry("IBM Knowledge Repo", DataSource.INFORMATION,
                              154_000, 1_720_000, 3000, knowledge_repo),
    "watson": DatasetEntry("IBM Watson Gene Graph", DataSource.NATURE,
                           2_000_000, 12_200_000, 8000, watson_gene),
    "roadnet": DatasetEntry("CA Road Network", DataSource.TECHNOLOGY,
                            1_900_000, 2_800_000, 7600, ca_road),
    "ldbc": DatasetEntry("LDBC Graph", DataSource.SYNTHETIC,
                         1_000_000, 28_820_000, 4000, ldbc),
}

GENERATORS: dict[str, Callable[..., GraphSpec]] = {
    "twitter": twitter,
    "knowledge": knowledge_repo,
    "watson": watson_gene,
    "roadnet": ca_road,
    "ldbc": ldbc,
    "rmat": rmat,
}


def scaled_vertices(name: str, scale: float = 1.0) -> int:
    """The vertex count :func:`make` will generate for ``name`` at
    ``scale`` — without generating anything (the mutation write
    factories need the id range up front)."""
    try:
        entry = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"choose from {sorted(REGISTRY)}") from None
    return max(120, int(entry.default_vertices * scale))


def make(name: str, scale: float = 1.0, seed: int = 0, **kwargs) -> GraphSpec:
    """Generate registry dataset ``name`` at ``scale`` x default size."""
    n = scaled_vertices(name, scale)
    return REGISTRY[name].factory(n, seed=seed, **kwargs)


def experiment_datasets(scale: float = 1.0, seed: int = 0
                        ) -> dict[str, GraphSpec]:
    """The Table 7 dataset suite (generation order is registry order)."""
    return {name: make(name, scale=scale, seed=seed) for name in REGISTRY}
