"""GPU SPath: frontier-based Bellman-Ford-style SSSP.

Thread-centric relaxation: vertices whose distance improved last launch
expand their edges and relax neighbours (the standard GPU SSSP shape —
Dijkstra's priority queue does not parallelize).  Converges to the same
distances as the CPU Dijkstra workload on non-negative weights (tested).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..simt import KernelAccum
from .base import GPUKernel, frontier_expand


class GPUSpath(GPUKernel):
    NAME = "SPath"
    MODEL = "thread-centric"

    def kernel(self, csr, coo, acc: KernelAccum, *, root: int = 0,
               **_: Any) -> dict[str, Any]:
        n = csr.n
        if csr.vals is not None:
            w = csr.vals
            if len(w) and w.min() < 0:
                raise ValueError("SSSP requires non-negative weights")
        else:
            w = np.ones(csr.m, dtype=np.float64)
        dist = np.full(n, np.inf)
        dist[root] = 0.0
        active = np.zeros(n, dtype=bool)
        active[root] = True
        launches = 0
        while active.any():
            acc.launch()
            launches += 1
            threads, steps, slots = frontier_expand(acc, csr, active,
                                                    body_instrs=6.0)
            active = np.zeros(n, dtype=bool)
            if len(threads) == 0:
                break
            epos = csr.row_ptr[threads] + steps
            nbr = csr.col_idx[epos]
            # weight loads parallel the col loads; dist reads scattered
            acc.mem_op(slots, csr.base_val + 4 * epos)
            acc.mem_op(slots, csr.base_vprop + 4 * nbr)
            cand = dist[threads] + w[epos]
            better = cand < dist[nbr]
            if better.any():
                acc.atomic_op(slots[better],
                              csr.base_vprop + 4 * nbr[better])
                # apply min-reduction per neighbour
                order = np.lexsort((cand[better], nbr[better]))
                tb, cb = nbr[better][order], cand[better][order]
                first = np.concatenate(([True], tb[1:] != tb[:-1]))
                improved = cb[first] < dist[tb[first]]
                upd = tb[first][improved]
                dist[upd] = cb[first][improved]
                active[upd] = True
        return {"dist": dist, "launches": launches,
                "settled": int(np.isfinite(dist).sum())}
