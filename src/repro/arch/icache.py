"""Instruction-cache model over the traced code-region sequence.

Key paper observation (Section 5.2.1): unlike other big-data workloads —
whose deep software stacks (frameworks atop libraries atop libraries) blow
the ICache — GraphBIG's framework has a *flat* code hierarchy, so ICache
MPKI stays below 0.7 for every workload.

The tracer records the sequence of code-region visits (framework primitives
and user kernels).  The ICache model lays every region out in a simulated
code segment and touches its lines on entry; an LRU ICache then yields
misses.  A *deep-stack* transform wraps each visit in ``depth`` synthetic
wrapper regions (adapter/glue code of layered frameworks), reproducing the
contrast with CloudSuite-style stacks as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import FrozenTrace, Region
from .cache import Cache, CacheConfig, line_ids

#: Base of the simulated code segment (distinct from the data heap).
CODE_BASE = 0x4000_0000

#: Alignment of each region's code in the segment.
CODE_ALIGN = 64


@dataclass
class ICacheStats:
    """Outcome of an ICache simulation."""

    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, n_instrs: int) -> float:
        return 1000.0 * self.misses / n_instrs if n_instrs else 0.0


def layout_code(regions: dict[int, Region]) -> dict[int, tuple[int, int]]:
    """Assign each region a (base_addr, n_lines) span in the code segment."""
    out: dict[int, tuple[int, int]] = {}
    cursor = CODE_BASE
    for rid in sorted(regions):
        r = regions[rid]
        n_lines = max(1, (r.code_bytes + CODE_ALIGN - 1) // CODE_ALIGN)
        out[rid] = (cursor, n_lines)
        cursor += n_lines * CODE_ALIGN
    return out


def code_footprint(regions: dict[int, Region]) -> int:
    """Total code bytes across all regions (flat-stack footprint)."""
    return sum(r.code_bytes for r in regions.values())


def deep_stack_regions(regions: dict[int, Region], depth: int,
                       wrapper_bytes: int = 384) -> dict[int, Region]:
    """Synthesize ``depth`` wrapper regions per original region, modelling
    the adapter layers of a deep software stack."""
    out = dict(regions)
    next_rid = max(regions) + 1
    for rid in sorted(regions):
        for lvl in range(depth):
            out[next_rid + lvl] = Region(
                next_rid + lvl, f"{regions[rid].name}_wrap{lvl}",
                wrapper_bytes, regions[rid].framework)
        next_rid += depth
    return out


def expand_visits(region_seq: np.ndarray, regions: dict[int, Region],
                  depth: int) -> tuple[np.ndarray, dict[int, Region]]:
    """Rewrite the visit sequence so each visit passes through its wrapper
    chain (call path down, region, call path up is elided — wrappers touch
    their lines once per visit, which is the dominant effect)."""
    if depth == 0:
        return region_seq, regions
    deep = deep_stack_regions(regions, depth)
    base = max(regions) + 1
    order = {rid: i for i, rid in enumerate(sorted(regions))}
    out = []
    for rid in region_seq.tolist():
        start = base + order[rid] * depth
        out.extend(range(start, start + depth))
        out.append(rid)
    return np.asarray(out, dtype=np.uint32), deep


class ICache:
    """LRU instruction cache replaying region-visit line touches."""

    def __init__(self, config: CacheConfig):
        self._cache = Cache(config)
        self.line = config.line

    def reset(self) -> None:
        self._cache.reset()

    def simulate(self, trace: FrozenTrace, stack_depth: int = 0,
                 fast: bool = True) -> ICacheStats:
        """Replay ``trace``'s region visits; returns aggregate stats.

        ``stack_depth`` > 0 applies the deep-stack ablation transform.
        With ``fast`` the LRU probes go through the count-only engine in
        :mod:`repro.arch.replay` (identical miss totals); ``fast=False``
        keeps the reference :class:`Cache` as the oracle.
        """
        addrs = self._visit_addrs(trace, stack_depth)
        if not len(addrs):
            return ICacheStats(0, 0)
        if fast:
            from .replay import lru_misses
            cfg = self._cache.config
            ids = line_ids(addrs, cfg.line)
            return ICacheStats(len(addrs),
                               lru_misses(ids, cfg.n_sets - 1, cfg.assoc))
        self._cache.simulate(addrs)
        st = self._cache.stats
        return ICacheStats(st.accesses, st.misses)

    def _visit_addrs(self, trace: FrozenTrace,
                     stack_depth: int) -> np.ndarray:
        """Line-touch address stream of the region-visit sequence:
        consecutive duplicate visits collapse (straight-line execution
        within a region), every surviving visit touches each of its
        region's code lines in order."""
        seq, regions = expand_visits(trace.region_seq, trace.regions,
                                     stack_depth)
        if not len(seq):
            return np.empty(0, dtype=np.uint64)
        layout = layout_code(regions)
        keep = np.ones(len(seq), dtype=bool)
        keep[1:] = seq[1:] != seq[:-1]
        visits = seq[keep].astype(np.int64)
        max_rid = max(layout)
        base_lut = np.zeros(max_rid + 1, dtype=np.uint64)
        nl_lut = np.zeros(max_rid + 1, dtype=np.int64)
        for rid, (base, n_lines) in layout.items():
            base_lut[rid] = base
            nl_lut[rid] = n_lines
        nv = nl_lut[visits]
        total = int(nv.sum())
        # ragged [0..n_lines) offsets per visit, fully vectorized
        starts = np.concatenate(([0], np.cumsum(nv)[:-1]))
        offs = np.arange(total, dtype=np.int64) - np.repeat(starts, nv)
        return (np.repeat(base_lut[visits], nv)
                + offs.astype(np.uint64) * np.uint64(CODE_ALIGN))
