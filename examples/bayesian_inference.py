#!/usr/bin/env python
"""Rich-property graph computing: Bayesian inference on a MUNIN-like
diagnostic network (the paper's CompProp workload and its special
dataset).

A clinician-style what-if: clamp a few observed findings as evidence, run
Gibbs sampling over the CPT-laden property graph, and read off posterior
beliefs — then peek at why CompProp looks so different architecturally.

Run:  python examples/bayesian_inference.py
"""

import numpy as np

from repro.arch import CPUModel, SCALED_XEON
from repro.bayes import munin_like
from repro.core.trace import Tracer
from repro.workloads import build_bn_graph, run

# --- a MUNIN-like diagnostic network -----------------------------------------
bn = munin_like(n_vertices=400, n_edges=540, target_params=30000, seed=9)
print(f"network: {bn.n} variables, {bn.n_edges} dependencies, "
      f"{bn.n_params} CPT parameters "
      "(MUNIN: 1041 / 1397 / 80592)")

g = build_bn_graph(bn)
print(f"property graph footprint: {g.alloc.footprint / 1024:.0f} KiB "
      f"({g.alloc.tag_bytes('payload') / 1024:.0f} KiB of CPT payloads)")

# --- choose evidence: clamp three findings (leaf-ish variables) --------------
leaves = [v for v in range(bn.n) if not bn.children[v]][:3]
evidence = {v: 0 for v in leaves}
print(f"evidence: variables {leaves} observed in state 0")

# --- posterior inference via Gibbs sampling ----------------------------------
tracer = Tracer()
res = run("Gibbs", g, tracer=tracer, bn=bn, n_sweeps=30, burn_in=10,
          seed=1, evidence=evidence)
marginals = res.outputs["marginals"]

# the "diagnoses": root variables with the most decisive posteriors
roots = [v for v in range(bn.n) if not bn.parents[v]]
decisive = sorted(roots, key=lambda v: -marginals[v].max())[:5]
print("\nmost decisive root posteriors:")
for v in decisive:
    m = marginals[v]
    print(f"  variable {v:4d}: P(state {int(np.argmax(m))}) = "
          f"{m.max():.2f}  (arity {bn.arities[v]})")

# --- the CompProp architectural signature (paper Figs. 5-8) -------------------
metrics = CPUModel(SCALED_XEON).run(tracer.freeze())
s = metrics.summary()
print("\nwhy CompProp is the outlier (paper Fig. 8):")
print(f"  L3 MPKI      {s['l3_mpki']:6.1f}   (accesses stay inside each "
      "vertex's CPT)")
print(f"  DTLB penalty {s['dtlb_penalty']:6.1%}   (centralized, "
      "page-local)")
print(f"  IPC          {s['ipc']:6.2f}   (numeric work retires)")
print(f"  backend      {s['cycles_backend']:6.1%}   (vs >85% for "
      "traversals)")
