"""Future-work extension — NDP (near-data processing) projection.

The paper's conclusion: "In the future, we will also extend GraphBIG to
other platforms, such as near-data processing (NDP) units".  This bench
quantifies the opportunity the paper's observations imply: workloads that
lose >85 % of cycles to memory stalls (CompStruct) gain the most from
moving compute next to DRAM; the compute-retiring CompProp workload gains
least.
"""

from benchmarks.conftest import show
from repro.arch import NDPConfig, project_ndp
from repro.core.taxonomy import ComputationType
from repro.harness import format_table, paper_note


def test_ndp_projection(suite, benchmark):
    rows = suite.main_rows()

    def project_all():
        return {name: project_ndp(r.cpu, NDPConfig())
                for name, r in rows.items()}

    proj = benchmark(project_all)
    data = [[name, rows[name].ctype.value,
             proj[name].memory_bound_fraction, proj[name].speedup]
            for name in rows]
    show(format_table(
        ["workload", "ctype", "memory_bound", "ndp_speedup"], data,
        title="Extension — NDP (16-vault PIM) projected speedup")
        + paper_note("future work: 'extend GraphBIG to near-data "
                     "processing (NDP) units' — the low cache hit rates "
                     "are the opportunity"))
    by_type: dict[str, list[float]] = {}
    for name, r in rows.items():
        by_type.setdefault(r.ctype.value, []).append(proj[name].speedup)
    avg = {k: sum(v) / len(v) for k, v in by_type.items()}
    # the memory-stall-dominated computation types gain the most
    assert avg[ComputationType.COMP_STRUCT.value] > \
        avg[ComputationType.COMP_PROP.value]
    assert all(p.speedup > 0 for p in proj.values())
