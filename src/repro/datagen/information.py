"""Information-network generator: IBM Knowledge Repo-like bipartite graph.

Paper Table 2, type 2 (information/knowledge networks): large vertex
degrees, large small-hop neighbourhoods.  The IBM Knowledge Repo dataset is
a bipartite user x document graph from an internal document-recommendation
system (154K vertices, 1.72M edges): "an edge represents a particular
document is accessed by a user".
"""

from __future__ import annotations

import numpy as np

from ..core.taxonomy import DataSource
from .spec import GraphSpec


def knowledge_repo(n_vertices: int = 3000, avg_degree: float = 11.2,
                   doc_fraction: float = 0.3, doc_zipf: float = 1.4,
                   seed: int = 0) -> GraphSpec:
    """Bipartite user->document access graph.

    Users occupy ids ``[0, n_users)``, documents ``[n_users, n)``.
    Document popularity is Zipf-distributed (a few documents are accessed
    by a large share of users → large degrees, and any two users are two
    hops apart through a popular document → large 2-hop neighbourhoods).
    """
    if n_vertices < 20:
        raise ValueError("n_vertices must be >= 20")
    rng = np.random.default_rng(seed)
    n_docs = max(2, int(n_vertices * doc_fraction))
    n_users = n_vertices - n_docs
    m = int(n_vertices * avg_degree)
    # accesses per user: lognormal (most users read a few, some read many)
    w = rng.lognormal(mean=0.0, sigma=1.0, size=n_users)
    per_user = np.maximum(1, np.round(w * m / w.sum())).astype(np.int64)
    src = np.repeat(np.arange(n_users), per_user)[:m]
    if len(src) < m:
        src = np.concatenate([src, rng.integers(0, n_users, m - len(src))])
    rank = rng.zipf(doc_zipf, size=m)
    dst = n_users + np.minimum(rank - 1, n_docs - 1)
    return GraphSpec("KnowledgeRepo", DataSource.INFORMATION, n_vertices,
                     np.column_stack([src, dst]), directed=True,
                     meta={"n_users": n_users, "n_docs": n_docs,
                           "seed": seed})
