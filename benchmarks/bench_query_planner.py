"""Query planner/executor: plan+result cache leverage and distributed
vs single-node execution.

Two claims behind the pipeline-DSL subsystem:

* **cache claim** — the content-addressed plan cache plus the
  version-keyed result cache turn a repeated query into a lookup: a
  warm engine answers the same canonical query at least
  ``MIN_CACHE_SPEEDUP``x the throughput of a cold engine that must
  parse, plan, and execute every time (identical answers asserted).
* **distribution claim** — a 4-shard scatter of per-shard subplans
  merges to the byte-identical single-node answer; the benchmark
  reports both latencies so the fan-out overhead at toy scale is
  visible rather than hidden (at these graph sizes the single node
  usually wins — the point is equivalence and disclosed cost, not a
  speedup).

Shape-not-absolute: thresholds compare arms within this run on this
host; seeds pin the graphs and the query set.  Results land in
``BENCH_query.json``.

Run standalone (tiny mode for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_query_planner.py
    QUERY_BENCH_TINY=1 PYTHONPATH=src python benchmarks/bench_query_planner.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.cluster import ClusterSpec, ClusterThread
from repro.harness import format_table
from repro.query import QueryEngine, query_template_pool
from repro.service import (
    GraphService,
    PoolConfig,
    ServiceClient,
    ServiceThread,
)

TINY = bool(os.environ.get("QUERY_BENCH_TINY"))

DATASETS = ("twitter", "roadnet") if TINY else (
    "twitter", "knowledge", "watson", "roadnet", "ldbc")
SCALE = 0.02 if TINY else 0.1
REPEATS = 5 if TINY else 20
SHARDS = 2 if TINY else 4
MIN_CACHE_SPEEDUP = 5.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_query.json"

TEMPLATES = query_template_pool(DATASETS, scale=SCALE)


# -- cache arm: warm engine vs cold engine per query -------------------------

def _cache_arm() -> dict[str, Any]:
    warm = QueryEngine()
    for q in TEMPLATES:              # first pass fills every cache
        warm.query({"q": q})

    t0 = time.perf_counter()
    for _ in range(REPEATS):
        for q in TEMPLATES:
            warm.query({"q": q})
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold_answers = []
    for q in TEMPLATES:
        cold_answers.append(QueryEngine().query({"q": q})["table"])
    cold_s = (time.perf_counter() - t0)

    # equivalence: the cached path answers exactly what a cold engine
    # computes from scratch
    for q, cold in zip(TEMPLATES, cold_answers):
        assert warm.query({"q": q})["table"] == cold

    n_warm = REPEATS * len(TEMPLATES)
    warm_qps = n_warm / warm_s if warm_s > 0 else float("inf")
    cold_qps = len(TEMPLATES) / cold_s if cold_s > 0 else float("inf")
    return {"queries": len(TEMPLATES), "repeats": REPEATS,
            "warm_total_s": round(warm_s, 6),
            "cold_total_s": round(cold_s, 6),
            "warm_qps": round(warm_qps, 1),
            "cold_qps": round(cold_qps, 1),
            "speedup": round(warm_qps / cold_qps, 2),
            "engine_stats": warm.stats()}


# -- distribution arm: 4-shard scatter vs single node ------------------------

def _timed_queries(client: ServiceClient,
                   queries: list[str]) -> tuple[float, list[dict]]:
    tables = []
    t0 = time.perf_counter()
    for q in queries:
        tables.append(client.query_lang(q)["table"])
    return time.perf_counter() - t0, tables


def _distribution_arm() -> dict[str, Any]:
    queries = [q for q in TEMPLATES if "topk" in q]
    service = GraphService(
        pool_config=PoolConfig(size=2, isolation="inline"))
    with ServiceThread(service) as st:
        with ServiceClient(st.host, st.port) as client:
            _timed_queries(client, queries)          # warm caches
            single_s, single_tables = _timed_queries(client, queries)
    spec = ClusterSpec.of(SHARDS, datasets=DATASETS)
    with ClusterThread(spec, router_kwargs=dict(
            attempt_timeout_s=60, fanout_timeout_s=60)) as ct:
        with ServiceClient(port=ct.router_port) as client:
            _timed_queries(client, queries)          # warm caches
            dist_s, dist_tables = _timed_queries(client, queries)
    assert dist_tables == single_tables, \
        "distributed topk diverged from single-node"
    return {"queries": len(queries), "shards": SHARDS,
            "single_node_s": round(single_s, 6),
            "distributed_s": round(dist_s, 6),
            "single_qps": round(len(queries) / single_s, 1),
            "distributed_qps": round(len(queries) / dist_s, 1),
            "identical_answers": True}


def run_query_benchmark() -> dict[str, Any]:
    cache = _cache_arm()
    dist = _distribution_arm()
    return {
        "config": {"datasets": list(DATASETS), "scale": SCALE,
                   "repeats": REPEATS, "shards": SHARDS, "tiny": TINY},
        "methodology": "cache: one warm engine replays the template "
                       "pool vs a cold engine per query (parse + plan "
                       "+ execute every time); answers asserted equal. "
                       "distribution: the pool's topk templates on a "
                       "single node vs a scatter-merge cluster; "
                       "element-identical tables asserted",
        "cache": cache,
        "distribution": dist,
        "headline": {"cache_speedup": cache["speedup"],
                     "cache_speedup_floor": MIN_CACHE_SPEEDUP,
                     "distributed_identical":
                         dist["identical_answers"]},
    }


def _render(results: dict) -> str:
    c, d = results["cache"], results["distribution"]
    table = format_table(
        ["arm", "queries", "total_s", "qps"],
        [["warm (cached)", c["queries"] * c["repeats"],
          c["warm_total_s"], c["warm_qps"]],
         ["cold (plan+exec)", c["queries"], c["cold_total_s"],
          c["cold_qps"]],
         ["single-node topk", d["queries"], d["single_node_s"],
          d["single_qps"]],
         [f"{d['shards']}-shard topk", d["queries"],
          d["distributed_s"], d["distributed_qps"]]],
        title="query throughput by serving arm")
    return (f"{table}\n"
            f"plan/result cache speedup: {c['speedup']}x "
            f"(floor {MIN_CACHE_SPEEDUP}x)\n"
            f"distributed answers identical: "
            f"{d['identical_answers']}")


def _check(results: dict) -> None:
    h = results["headline"]
    assert h["cache_speedup"] >= MIN_CACHE_SPEEDUP, h
    assert h["distributed_identical"], h


def test_query_planner():
    results = run_query_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results))
    _check(results)


if __name__ == "__main__":
    results = run_query_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    _check(results)
    print(f"wrote {OUT_PATH}")
