"""BFS — breadth-first search (graph traversal, CompStruct).

The most popular GraphBIG workload (10 of 21 use cases, Fig. 4(A)).
Level-synchronous queue-based BFS over framework primitives: the frontier
queue stays L1-resident while neighbour-list walks chase pointers across
the heap — the canonical CompStruct signature (Table 1).
"""

from __future__ import annotations

from typing import Any

from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from .base import TracedQueue, Workload


class BFS(Workload):
    """Breadth-first search from ``root``; labels ``level`` and ``parent``
    vertex properties and returns them."""

    NAME = "BFS"
    CTYPE = ComputationType.COMP_STRUCT
    CATEGORY = WorkloadCategory.TRAVERSAL
    HAS_GPU = True

    def kernel(self, g: PropertyGraph, t, *, root: int = 0,
               **_: Any) -> dict[str, Any]:
        site_visited = t.register_branch_site()
        src = g.find_vertex(root)
        g.vset(src, "level", 0)
        g.vset(src, "parent", root)
        q = TracedQueue(g, t)
        q.push(src)
        levels: dict[int, int] = {root: 0}
        parents: dict[int, int] = {root: root}
        visited = 1
        while q:
            v = q.pop()
            lvl = g.vget(v, "level")
            for dst, _node in g.neighbors(v):
                w = g.find_vertex(dst)
                t.i(4)
                unvisited = g.vget(w, "level") < 0
                t.br(site_visited, unvisited)
                if unvisited:
                    g.vset(w, "level", lvl + 1)
                    g.vset(w, "parent", v.vid)
                    levels[dst] = lvl + 1
                    parents[dst] = v.vid
                    visited += 1
                    q.push(w)
        return {"levels": levels, "parents": parents, "visited": visited}

    @staticmethod
    def reference(spec, root: int = 0) -> dict[int, int]:
        """networkx ground-truth levels for a :class:`GraphSpec`."""
        import networkx as nx
        return nx.single_source_shortest_path_length(spec.nx(), root)
