"""Tests for the characterization harness (repro.harness)."""

import pytest

from repro.arch.machine import TEST_MACHINE
from repro.datagen import ldbc
from repro.harness import (
    CPU_WORKLOADS,
    DATA_SENSITIVE_WORKLOADS,
    average_fraction,
    breakdown_table,
    by_ctype,
    characterize,
    clear_cache,
    cpu_table,
    fig8_table,
    format_table,
    framework_fractions,
    gpu_speedup,
    gpu_table,
    pivot,
    run_cpu_workload,
    sensitivity_rows,
    spread,
    to_csv_string,
    write_csv,
)
from repro.harness.runner import _dagify
from repro.bayes import munin_like


@pytest.fixture(scope="module")
def spec():
    return ldbc(250, avg_degree=6, seed=0)


@pytest.fixture(scope="module")
def tiny_bn():
    return munin_like(n_vertices=30, n_edges=40, target_params=300, seed=0)


class TestRunner:
    def test_run_cpu_every_workload(self, spec, tiny_bn):
        for name in CPU_WORKLOADS:
            result, metrics = run_cpu_workload(
                name, spec, machine=TEST_MACHINE, gibbs_bn=tiny_bn,
                params={"n_sweeps": 3, "burn_in": 1} if name == "Gibbs"
                else None)
            assert result.trace is not None
            assert metrics.n_instrs > 0
            assert metrics.cycles > 0

    def test_characterize_caches(self, spec):
        clear_cache()
        r1 = characterize("BFS", spec, machine=TEST_MACHINE)
        r2 = characterize("BFS", spec, machine=TEST_MACHINE)
        assert r1 is r2

    def test_characterize_with_gpu(self, spec):
        r = characterize("CComp", spec, machine=TEST_MACHINE,
                         with_gpu=True)
        assert r.gpu is not None
        assert r.cpu is not None

    def test_gpu_speedup_positive(self, spec):
        r = characterize("CComp", spec, machine=TEST_MACHINE,
                         with_gpu=True)
        assert gpu_speedup(r, machine=TEST_MACHINE) > 0

    def test_gpu_speedup_requires_both(self, spec):
        r = characterize("DFS", spec, machine=TEST_MACHINE)
        with pytest.raises(ValueError):
            gpu_speedup(r)

    def test_dagify_acyclic(self, spec):
        import networkx as nx
        dag = nx.DiGraph(_dagify(spec))
        assert nx.is_directed_acyclic_graph(dag)

    def test_data_sensitive_set_excludes_special_inputs(self):
        assert "Gibbs" not in DATA_SENSITIVE_WORKLOADS
        assert "GCons" not in DATA_SENSITIVE_WORKLOADS
        assert "TMorph" not in DATA_SENSITIVE_WORKLOADS


class TestTables:
    @pytest.fixture(scope="class")
    def rows(self, spec, tiny_bn):
        clear_cache()
        out = []
        for name in ("BFS", "DCentr", "GCons"):
            out.append(characterize(name, spec, machine=TEST_MACHINE))
        return out

    def test_cpu_table_shape(self, rows):
        table = cpu_table(rows)
        assert len(table) == 3
        assert table[0][0] == "BFS"

    def test_breakdown_table_fractions(self, rows):
        for row in breakdown_table(rows):
            assert sum(row[2:]) == pytest.approx(1.0)

    def test_by_ctype(self, rows):
        per = by_ctype(rows, "ipc")
        assert all(v > 0 for v in per.values())

    def test_fig8_table(self, rows):
        t = fig8_table(rows)
        assert [r[0] for r in t] == ["l2_mpki", "l3_mpki", "dtlb_penalty",
                                     "branch_miss_rate", "ipc"]

    def test_framework_fractions(self, rows):
        fr = framework_fractions(rows)
        assert set(fr) == {"BFS", "DCentr", "GCons"}
        assert 0 < average_fraction(rows) <= 1.0

    def test_gpu_table_empty_without_gpu(self, rows):
        assert gpu_table(rows) == []


class TestSensitivity:
    def test_rows_cover_matrix(self):
        clear_cache()
        rows = sensitivity_rows(("BFS", "DCentr"), scale=0.04,
                                machine=TEST_MACHINE)
        assert len(rows) == 2 * 5
        datasets = {r.dataset for r in rows}
        assert len(datasets) == 5

    def test_pivot_and_spread(self):
        rows = sensitivity_rows(("BFS",), scale=0.04,
                                machine=TEST_MACHINE)
        p = pivot(rows, "ipc")
        assert set(p) == {"BFS"}
        assert len(p["BFS"]) == 5
        assert spread(p["BFS"]) >= 1.0

    def test_spread_empty(self):
        assert spread({}) == 1.0


class TestReport:
    def test_format_table(self):
        s = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]],
                         title="T")
        lines = s.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "0.125" in s

    def test_csv_roundtrip(self, tmp_path):
        rows = [["x", 1], ["y", 2]]
        path = tmp_path / "out.csv"
        write_csv(["name", "v"], rows, path)
        text = path.read_text()
        assert "name,v" in text and "x,1" in text

    def test_csv_string(self):
        assert to_csv_string(["a"], [[1]]).strip() == "a\r\n1".strip()


class TestSharedGraphReuse:
    def test_fast_path_summaries_match_fresh_builds(self):
        """The fast path's cached-graph reuse (restore_state between
        property-only workloads) must leave every metric summary
        identical to a fresh per-cell build."""
        from repro.arch.machine import TEST_MACHINE
        from repro.datagen.registry import make
        from repro.harness import runner as R

        spec = make("ldbc", scale=0.02, seed=0)
        names = ("BFS", "CComp", "TC", "kCore", "GColor")
        R.clear_cache()
        shared = {}
        for n in names:
            _, cpu = R.run_cpu_workload(n, spec, machine=TEST_MACHINE,
                                        fast=True)
            shared[n] = cpu.summary()
        assert R._GRAPH_CACHE          # the path was actually exercised
        R.clear_cache()
        for n in names:
            _, cpu = R.run_cpu_workload(n, spec, machine=TEST_MACHINE,
                                        fast=False)
            assert cpu.summary() == shared[n], n

    def test_mutating_workload_bypasses_cache(self):
        from repro.arch.machine import TEST_MACHINE
        from repro.datagen.registry import make
        from repro.harness import runner as R

        assert "GUp" not in R._PROP_ONLY_WORKLOADS
        spec = make("ldbc", scale=0.02, seed=0)
        R.clear_cache()
        _, first = R.run_cpu_workload("GUp", spec, machine=TEST_MACHINE,
                                      fast=True)
        assert not R._GRAPH_CACHE
        _, again = R.run_cpu_workload("GUp", spec, machine=TEST_MACHINE,
                                      fast=True)
        assert first.summary() == again.summary()
