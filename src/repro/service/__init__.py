"""Graph-query service: serve the characterization machinery as traffic.

GraphBIG frames its workloads as the compute tier of industrial graph
services; this package is the serving path — a long-lived asyncio TCP
server that accepts JSON-lines requests over any registered workload x
dataset cell and answers with the same flat records the batch checkpoint
journal uses:

* :mod:`~repro.service.protocol` — versioned request/response framing
  with typed error payloads (the :mod:`repro.core.errors` taxonomy on
  the wire)
* :mod:`~repro.service.cache` — bounded LRU+TTL tiers for generated
  datasets and characterization rows (also the batch harness's memo)
* :mod:`~repro.service.pool` — bounded worker pool over the resilient
  subprocess executor: a hung or crashed worker fails its own request
  only
* :mod:`~repro.service.scheduler` — admission control (backpressure) and
  micro-batching (identical in-flight requests coalesce into one
  execution)
* :mod:`~repro.service.server` — the TCP front end and the threaded
  serving harness
* :mod:`~repro.service.client` — blocking client with typed remote
  errors
* :mod:`~repro.service.loadgen` — closed-loop load generator reporting
  throughput and p50/p95/p99 latency
"""

from ..core.errors import (
    AdmissionRejected,
    BadRequest,
    ProtocolError,
    RemoteError,
    ServiceError,
)
from .cache import CacheStats, CacheTiers, LRUCache, dataset_key, row_key
from .client import DEFAULT_PORT, ServiceClient
from .loadgen import (
    CONNECTION_FAILURE_KIND,
    LoadGenerator,
    LoadReport,
    Query,
    percentile,
    schedule,
    workload_mix,
)
from .pool import PoolConfig, PoolStats, WorkerPool
from .protocol import (
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    Request,
    decode_frame,
    encode_error,
    encode_request,
    encode_response,
    error_to_payload,
    parse_request,
    payload_to_error,
)
from .scheduler import Scheduler, SchedulerConfig, SchedulerStats
from .server import (
    GraphService,
    ServiceThread,
    cell_from_params,
    datasets_payload,
    workloads_payload,
)

__all__ = [
    "AdmissionRejected", "BadRequest", "CONNECTION_FAILURE_KIND",
    "CacheStats", "CacheTiers",
    "DEFAULT_PORT", "GraphService", "LRUCache", "LoadGenerator",
    "LoadReport", "MAX_FRAME_BYTES", "OPS", "PROTOCOL_VERSION",
    "PoolConfig", "PoolStats", "ProtocolError", "Query", "RemoteError",
    "Request", "Scheduler", "SchedulerConfig", "SchedulerStats",
    "ServiceClient", "ServiceError", "ServiceThread", "WorkerPool",
    "cell_from_params", "dataset_key", "datasets_payload", "decode_frame",
    "encode_error", "encode_request", "encode_response",
    "error_to_payload", "parse_request", "payload_to_error", "percentile",
    "row_key", "schedule", "workload_mix", "workloads_payload",
]
