"""Report rendering: ASCII tables, CSV export, paper-vs-measured views.

Every benchmark prints its figure's data as a table with the paper's
qualitative expectation alongside, so a run of ``pytest benchmarks/``
doubles as the EXPERIMENTS.md evidence log.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None, floatfmt: str = ".3f") -> str:
    """Render an ASCII table (monospace aligned)."""
    def fmt(x: Any) -> str:
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    srows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def write_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]],
              path: str | os.PathLike) -> None:
    """Write rows to a CSV file (for downstream plotting)."""
    with open(path, "w", newline="", encoding="ascii") as f:
        w = csv.writer(f)
        w.writerow(headers)
        w.writerows(rows)


def to_csv_string(headers: Sequence[str],
                  rows: Sequence[Sequence[Any]]) -> str:
    """CSV text of a table (stdout-friendly)."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(headers)
    w.writerows(rows)
    return buf.getvalue()


def bar(value: float, vmax: float, width: int = 40) -> str:
    """Unicode bar for quick visual comparison in terminal output."""
    if vmax <= 0:
        return ""
    n = int(round(width * min(value, vmax) / vmax))
    return "#" * n


def paper_note(text: str) -> str:
    """Standard 'paper reports ...' annotation line."""
    return f"  [paper: {text}]"


# -- partial-matrix rendering (resilient sweeps) ----------------------------

FAILURE_COLUMNS = ("workload", "dataset", "failure", "attempts", "detail")


def failure_table(failures: Sequence[Any]) -> list[list]:
    """Flatten CellFailure records into report rows.

    Accepts :class:`~repro.resilience.matrix.CellFailure` objects or the
    equivalent journal dicts, so both a live sweep and a loaded checkpoint
    render the same way.
    """
    out = []
    for f in failures:
        if isinstance(f, dict):
            out.append([f.get("workload", "?"), f.get("dataset", "?"),
                        f.get("failure_kind", "error"),
                        f.get("attempts", 1), f.get("message", "")])
        else:
            out.append([f.workload, f.dataset, f.kind, f.attempts,
                        f.message])
    return out


def matrix_table(rows: Sequence[Any], failures: Sequence[Any] = (), *,
                 metric: str = "ipc", floatfmt: str = ".3f") -> str:
    """Workload x dataset grid of one CPU metric, degrading gracefully:
    failed cells render as ``FAILED(kind)``, missing cells as ``-``.

    This is the partial-matrix view — a sweep with a permanently hanging
    cell still produces a complete, readable report.
    """
    failed: dict[tuple[str, str], str] = {}
    for f in failure_table(failures):
        failed[(f[0], f[1])] = f"FAILED({f[2]})"
    values: dict[tuple[str, str], float] = {}
    workloads: list[str] = []
    datasets: list[str] = []
    for r in rows:
        if r.workload not in workloads:
            workloads.append(r.workload)
        if r.dataset not in datasets:
            datasets.append(r.dataset)
        if r.cpu is not None:
            values[(r.workload, r.dataset)] = r.cpu.summary().get(
                metric, float("nan"))
    for w, d in failed:
        if w not in workloads:
            workloads.append(w)
        if d not in datasets:
            datasets.append(d)
    grid = []
    for w in workloads:
        line: list[Any] = [w]
        for d in datasets:
            if (w, d) in values:
                line.append(values[(w, d)])
            else:
                line.append(failed.get((w, d), "-"))
        grid.append(line)
    return format_table(["workload"] + datasets, grid,
                        title=f"{metric} (partial matrix)",
                        floatfmt=floatfmt)
