"""Workload registry — the paper's Table 4.

Maps workload names to classes with their computation type, category and
GPU availability; provides the ``run()`` convenience entry point and the
Table 4 summary rows used by the coverage bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType
from ..core.trace import Tracer
from .base import Workload, WorkloadResult
from .bcentr import BCentr
from .bfs import BFS
from .ccomp import CComp
from .dcentr import DCentr
from .dfs import DFS
from .gcolor import GColor
from .gcons import GCons
from .gibbs import Gibbs
from .gup import GUp
from .kcore import KCore
from .spath import SPath
from .tc import TC
from .tmorph import TMorph

#: All 13 GraphBIG workloads (12 CPU-characterized + DFS; 8 with GPU
#: kernels), keyed by the paper's names.
WORKLOADS: dict[str, type[Workload]] = {
    w.NAME: w for w in (BFS, DFS, GCons, GUp, TMorph, SPath, KCore,
                        CComp, GColor, TC, Gibbs, DCentr, BCentr)
}

#: Computation type per workload (feeds the Fig. 3 coverage check).
WORKLOAD_TYPES: dict[str, ComputationType] = {
    name: cls.CTYPE for name, cls in WORKLOADS.items()
}

#: Names of the workloads with GPU kernels (paper: 8 GPU workloads).
GPU_WORKLOADS: tuple[str, ...] = tuple(
    name for name, cls in WORKLOADS.items() if cls.HAS_GPU)


@dataclass(frozen=True)
class Table4Row:
    """One row of the paper's workload-summary table."""

    workload: str
    category: str
    computation_type: str
    gpu: bool
    algorithm: str


_ALGORITHMS = {
    "BFS": "level-synchronous queue BFS",
    "DFS": "iterative stack DFS",
    "GCons": "incremental vertex/edge insertion",
    "GUp": "random vertex deletion with edge unlink",
    "TMorph": "DAG moralization (construct+traverse+update)",
    "SPath": "Dijkstra with binary heap",
    "kCore": "Matula & Beck smallest-last peeling",
    "CComp": "BFS labelling (CPU) / Soman (GPU)",
    "GColor": "Luby-Jones independent sets",
    "TC": "Schank edge-iterator intersection",
    "Gibbs": "Gibbs sampling over CPTs",
    "DCentr": "degree scan",
    "BCentr": "Brandes dependency accumulation",
}


def table4() -> list[Table4Row]:
    """The Table 4 summary rows (all workloads, registry order)."""
    return [Table4Row(name, cls.CATEGORY.value, cls.CTYPE.value,
                      cls.HAS_GPU, _ALGORITHMS[name])
            for name, cls in WORKLOADS.items()]


def get(name: str) -> Workload:
    """Instantiate workload ``name`` (KeyError lists valid names)."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {sorted(WORKLOADS)}") from None


def run(name: str, g: PropertyGraph, tracer: Tracer | None = None,
        **params: Any) -> WorkloadResult:
    """Run workload ``name`` on ``g`` (see each workload's ``kernel`` for
    its parameters)."""
    return get(name).run(g, tracer=tracer, **params)
