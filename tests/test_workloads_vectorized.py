"""Vectorized-kernel equivalence: frozen-trace and output equality.

The tentpole guarantee of the vectorized BFS/CComp/kCore/TC kernels is
that they are *per-element identical* to the original loop kernels: the
same address stream, branch sites, instruction counts and region visits,
element for element — not statistically close, equal.  These tests
assert exactly that over hypothesis-generated graph shapes, plus output
equality, so any drift in the bulk-trace emission paths fails loudly.

Addresses are compared relative to each graph's arena base: every
:class:`SimAllocator` claims a disjoint arena, so two identical builds
differ by a constant aligned offset and nothing else.

The prebound accessor closures (``vertex_finder``/``prop_reader``/
``prop_writer``/``eprop_reader``) used by the DFS/SPath/GColor loop
kernels carry the same bar: identical event stream to the generic
primitives they memoize.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.trace import Tracer
from repro.datagen import GraphSpec
from repro.core.taxonomy import DataSource
from repro.workloads import WORKLOADS, common_edge_schema, common_vertex_schema
from repro.workloads._bulk import loop_reference_kernels

VEC_KERNELS = ("BFS", "TC", "CComp", "kCore")

TRACE_FIELDS = ("rw", "iat", "acc_region", "branch_sites", "branch_taken",
                "region_seq", "region_instrs")


@st.composite
def random_spec(draw, max_n=36, max_m=110):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=0, max_size=m))
    directed = draw(st.booleans())
    return GraphSpec("rand", DataSource.SYNTHETIC, n,
                     np.asarray(edges, dtype=np.int64).reshape(-1, 2),
                     directed=directed)


def _build(spec):
    return spec.build(vertex_schema=common_vertex_schema(),
                      edge_schema=common_edge_schema())


def _run_traced(name, spec, **params):
    g = _build(spec)
    res = WORKLOADS[name]().run(g, tracer=Tracer(), **params)
    return res.trace, res.outputs, g.alloc.base


def _outputs_equal(a, b):
    if a.keys() != b.keys():
        return False
    for k in a:
        x, y = a[k], b[k]
        if isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
            if not np.array_equal(np.asarray(x), np.asarray(y)):
                return False
        elif x != y:
            return False
    return True


def _assert_traces_identical(vec, vbase, loop, lbase):
    assert np.array_equal(vec.addrs - np.uint64(vbase),
                          loop.addrs - np.uint64(lbase))
    for f in TRACE_FIELDS:
        assert np.array_equal(getattr(vec, f), getattr(loop, f)), f
    assert vec.n_instrs == loop.n_instrs
    assert vec.fw_instrs == loop.fw_instrs
    assert vec.n_accesses == loop.n_accesses
    assert vec.fw_accesses == loop.fw_accesses
    assert {r: (v.name, v.code_bytes, v.framework)
            for r, v in vec.regions.items()} == \
           {r: (v.name, v.code_bytes, v.framework)
            for r, v in loop.regions.items()}


def _check_kernel(name, spec, **params):
    vec_trace, vec_out, vbase = _run_traced(name, spec, **params)
    with loop_reference_kernels():
        loop_trace, loop_out, lbase = _run_traced(name, spec, **params)
    _assert_traces_identical(vec_trace, vbase, loop_trace, lbase)
    assert _outputs_equal(vec_out, loop_out)


@given(random_spec())
@settings(max_examples=25, deadline=None)
def test_bfs_vectorized_trace_identical(spec):
    _check_kernel("BFS", spec, root=0)


@given(random_spec())
@settings(max_examples=25, deadline=None)
def test_tc_vectorized_trace_identical(spec):
    _check_kernel("TC", spec)


@given(random_spec())
@settings(max_examples=25, deadline=None)
def test_ccomp_vectorized_trace_identical(spec):
    _check_kernel("CComp", spec)


@given(random_spec())
@settings(max_examples=25, deadline=None)
def test_kcore_vectorized_trace_identical(spec):
    _check_kernel("kCore", spec)


def test_vectorized_trace_identical_fixed_shapes():
    """Deterministic worst-case shapes: singleton, edgeless, dense-ish,
    star, chain — cheap to keep outside hypothesis's budget."""
    rng = np.random.default_rng(5)
    cases = [
        (1, np.empty((0, 2), np.int64)),
        (5, np.empty((0, 2), np.int64)),
        (12, rng.integers(0, 12, (20, 2))),
        (30, rng.integers(0, 30, (80, 2))),
        (7, np.array([[0, i] for i in range(1, 7)])),
        (6, np.array([[i, i + 1] for i in range(5)])),
    ]
    for n, edges in cases:
        spec = GraphSpec("fixed", DataSource.SYNTHETIC, n, edges)
        for name in VEC_KERNELS:
            params = {"root": 0} if name == "BFS" else {}
            _check_kernel(name, spec, **params)


# -- prebound accessor closures --------------------------------------------

def _primitive_script(g, generic):
    """Drive the same find/get/set/eget sequence through either the
    generic primitives or the prebound closures."""
    if generic:
        find = g.find_vertex
        get_level = lambda v: g.vget(v, "level")
        set_level = lambda v, x: g.vset(v, "level", x)
        eget_w = lambda e: g.eget(e, "weight")
    else:
        find = g.vertex_finder()
        get_level = g.prop_reader("level")
        set_level = g.prop_writer("level")
        eget_w = g.eprop_reader("weight")
    total = 0.0
    for vid in sorted(g.vertex_ids()):
        v = find(vid)
        set_level(v, vid * 2)
        total += get_level(v)
        for _dst, node in g.neighbors(v):
            total += eget_w(node)
    return total


@given(random_spec(max_n=20, max_m=50))
@settings(max_examples=25, deadline=None)
def test_prebound_accessors_trace_identical(spec):
    g1 = _build(spec)
    t1 = Tracer()
    g1.attach_tracer(t1)
    r1 = _primitive_script(g1, generic=True)
    g2 = _build(spec)
    t2 = Tracer()
    g2.attach_tracer(t2)
    r2 = _primitive_script(g2, generic=False)
    assert r1 == r2
    f1, f2 = t1.freeze(), t2.freeze()
    _assert_traces_identical(f2, g2.alloc.base, f1, g1.alloc.base)
