"""The graph-query service: a long-lived asyncio TCP server.

Turns the batch characterization machinery into a traffic-serving system:
connections speak the JSON-lines protocol (:mod:`~repro.service.protocol`),
requests flow through the admission-controlled coalescing scheduler
(:mod:`~repro.service.scheduler`) into the isolated worker pool
(:mod:`~repro.service.pool`), and results come back as the same flat row
records the checkpoint journal uses.

Operations::

    ping          liveness + version handshake
    workloads     the Table 4 registry, machine-readable
    datasets      the Table 5/7 dataset registry, machine-readable
    run           execute a workload x dataset cell, return its outputs
    characterize  same execution, return the full metric record
    stats         cache / scheduler / pool / connection counters

A failure in one request — including a chaos-killed worker subprocess —
becomes a typed error frame on that request's connection; every other
in-flight request proceeds undisturbed.

:class:`ServiceThread` hosts the event loop on a background thread for
blocking callers (tests, the load generator, demos).
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any

from .. import __version__
from ..core.errors import BadRequest, ProtocolError
from ..obs.logs import get_logger
from ..obs.metrics import MetricsRegistry
from ..resilience.cell import MACHINES, Cell
from ..resilience.chaos import ChaosSpec
from .cache import CacheTiers
from .pool import PoolConfig, WorkerPool
from .protocol import (
    DYNAMIC_OPS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    QUERY_OPS,
    Request,
    decode_frame,
    encode_error,
    encode_response,
    parse_request,
)
from .scheduler import Scheduler, SchedulerConfig

log = get_logger("service.server")

#: Parameters a run/characterize request may carry (typo protection: an
#: unknown key is a bad request, not a silently-ignored knob).
_CELL_PARAMS = frozenset({"workload", "dataset", "scale", "seed",
                          "machine", "gpu"})


def workloads_payload() -> list[dict[str, Any]]:
    """The Table 4 registry as JSON-ready rows (shared with ``list
    --json``)."""
    from ..workloads import table4
    return [{"workload": r.workload, "category": r.category,
             "ctype": r.computation_type, "gpu": r.gpu,
             "algorithm": r.algorithm} for r in table4()]


def datasets_payload() -> list[dict[str, Any]]:
    """The dataset registry as JSON-ready rows (shared with ``datasets
    --json``)."""
    from ..datagen.registry import REGISTRY
    return [{"key": key, "name": e.name, "source": e.source.name,
             "paper_vertices": e.paper_vertices,
             "paper_edges": e.paper_edges,
             "default_vertices": e.default_vertices}
            for key, e in REGISTRY.items()]


def cell_from_params(params: dict[str, Any]) -> Cell:
    """Validate request params into a Cell; raise ``BadRequest`` on any
    name or value that can never execute."""
    from ..datagen.registry import REGISTRY
    from ..workloads import WORKLOADS

    unknown = sorted(set(params) - _CELL_PARAMS)
    if unknown:
        raise BadRequest(f"unknown parameter(s) {', '.join(unknown)}; "
                         f"choose from {', '.join(sorted(_CELL_PARAMS))}")
    workload = params.get("workload")
    if not isinstance(workload, str) or workload not in WORKLOADS:
        raise BadRequest(f"unknown workload {workload!r}; "
                         f"choose from {', '.join(sorted(WORKLOADS))}")
    dataset = params.get("dataset", "ldbc")
    if not isinstance(dataset, str) or dataset not in REGISTRY:
        raise BadRequest(f"unknown dataset {dataset!r}; "
                         f"choose from {', '.join(sorted(REGISTRY))}")
    machine = params.get("machine", "scaled")
    if machine not in MACHINES:
        raise BadRequest(f"unknown machine {machine!r}; "
                         f"choose from {', '.join(sorted(MACHINES))}")
    try:
        scale = float(params.get("scale", 0.25))
        seed = int(params.get("seed", 0))
        gpu = bool(params.get("gpu", False))
    except (TypeError, ValueError) as e:
        raise BadRequest(f"bad parameter value: {e}") from None
    if not scale > 0:
        raise BadRequest(f"scale must be > 0, got {scale!r}")
    return Cell(workload=workload, dataset=dataset, scale=scale,
                seed=seed, machine=machine, with_gpu=gpu)


class GraphService:
    """One serving instance: caches + pool + scheduler + TCP front end."""

    def __init__(self, *, pool_config: PoolConfig | None = None,
                 scheduler_config: SchedulerConfig | None = None,
                 caches: CacheTiers | None = None,
                 chaos: ChaosSpec | None = None,
                 registry: MetricsRegistry | None = None,
                 dynamic: "DynamicEngine | None" = None,
                 governor: "TenantGovernor | None" = None):
        from ..dynamic import DynamicEngine
        from ..query import QueryEngine
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.caches = caches if caches is not None else CacheTiers.build()
        self.dynamic = dynamic if dynamic is not None else DynamicEngine()
        self.query_engine = QueryEngine(self.dynamic)
        self.pool = WorkerPool(pool_config, chaos=chaos,
                               caches=self.caches,
                               memoize=self.scheduler_config.caching)
        # optional multi-tenant QoS: absent, the scheduler hot path is
        # the single-tenant one unchanged
        self.governor = governor
        self.scheduler = Scheduler(self.pool, self.caches,
                                   self.scheduler_config,
                                   governor=governor)
        self.op_counts: dict[str, int] = {}
        self.connections = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None
        # one registry per serving instance: every layer binds onto it,
        # and the `stats` op / Prometheus scrape read one snapshot
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self._m_err = reg.counter(
            "service_errors_total",
            "error responses, by op and taxonomy kind",
            labels=("op", "kind"))
        self._m_lat = reg.histogram(
            "service_request_latency_ms",
            "request handling latency (ms), by op", labels=("op",))
        # .labels() with no arguments resolves an unlabeled family to its
        # sole child, skipping the proxy indirection on every increment
        self._m_rx = reg.counter(
            "service_bytes_received_total",
            "request bytes read (flushed when a connection "
            "closes)").labels()
        self._m_tx = reg.counter(
            "service_bytes_sent_total",
            "response bytes written (flushed when a connection "
            "closes)").labels()
        self._m_conn = reg.counter(
            "service_connections_total", "connections accepted")
        self._m_conn_active = reg.gauge(
            "service_connections_active", "currently open connections")
        # resolved per-op histogram children, cached off the hot path
        # (the op set is bounded: the validated OPS plus "_frame")
        self._op_children: dict[str, Any] = {}
        # every request observes exactly one latency sample, so the
        # request counter is the histogram's per-op count — derived at
        # snapshot time instead of paying a second locked increment
        reg.register_collector(self._collect_requests)
        self.caches.bind_metrics(reg)
        self.scheduler.bind_metrics(reg)
        self.pool.bind_metrics(reg)
        if governor is not None:
            governor.bind_metrics(reg)

    def _op_latency(self, op: str):
        """The latency-histogram child for ``op``, cached."""
        child = self._op_children.get(op)
        if child is None:
            child = self._m_lat.labels(op=op)
            self._op_children[op] = child
        return child

    def _collect_requests(self) -> dict[str, Any]:
        samples = [{"labels": s["labels"], "value": float(s["count"])}
                   for s in self._m_lat.snapshot()["samples"]]
        return {"service_requests_total": {
            "type": "counter",
            "help": "requests received, by op (every request lands one "
                    "latency observation; unparseable frames count "
                    "under op=\"_frame\")",
            "samples": samples}}

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and listen; returns the bound port (``port=0`` picks one)."""
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_FRAME_BYTES)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        await self.scheduler.drain()
        self.pool.shutdown()

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        self._m_conn.inc()
        self._m_conn_active.inc()
        log.debug("connection opened (%d open)", self.connections)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        # byte counts accumulate in locals and flush to the registry once
        # at connection close: the counters stay exact without paying two
        # locked increments per request on the hot path
        rx = tx = 0

        def send(data: bytes) -> None:
            nonlocal tx
            writer.write(data)
            tx += len(data)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._m_err.labels(op="_frame",
                                       kind=ProtocolError.kind).inc()
                    send(encode_error(
                        None, ProtocolError("frame exceeds size limit")))
                    await writer.drain()
                    break
                if not line:
                    break                      # clean EOF between frames
                rx += len(line)
                if not line.endswith(b"\n"):
                    # EOF mid-frame: the peer died mid-write
                    self._m_err.labels(op="_frame",
                                       kind=ProtocolError.kind).inc()
                    send(encode_error(
                        None, ProtocolError("truncated frame at EOF")))
                    await writer.drain()
                    break
                req_id: str | None = None
                op = "_frame"                  # until the frame parses
                t0 = time.perf_counter()
                try:
                    req = parse_request(decode_frame(line))
                    req_id = req.id
                    op = req.op
                    result = await self._dispatch(req)
                    send(encode_response(req_id, result))
                except Exception as e:  # noqa: BLE001 — typed onto the wire
                    kind = getattr(e, "kind", None)
                    self._m_err.labels(
                        op=op,
                        kind=kind if isinstance(kind, str)
                        else "internal").inc()
                    send(encode_error(req_id, e))
                finally:
                    self._op_latency(op).observe(
                        (time.perf_counter() - t0) * 1e3)
                await writer.drain()
        except ConnectionError:
            pass                               # peer vanished mid-response
        except asyncio.CancelledError:
            # server shutdown cancels idle handlers; end the task cleanly
            # (3.11's stream callback logs tasks that die cancelled)
            pass
        finally:
            self._m_rx.inc(rx)
            self._m_tx.inc(tx)
            self._m_conn_active.dec()
            log.debug("connection closed")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass       # teardown path: the close already happened

    async def _dispatch(self, req: Request) -> Any:
        self.op_counts[req.op] = self.op_counts.get(req.op, 0) + 1
        if req.op == "ping":
            return {"pong": True, "protocol": PROTOCOL_VERSION,
                    "server": __version__}
        if req.op == "health":
            # the cluster liveness probe; a plain service is always
            # "up" while it can answer at all
            return {"ok": True, "protocol": PROTOCOL_VERSION,
                    "server": __version__}
        if req.op in ("shard_info", "batch", "admin"):
            raise BadRequest(f"operation {req.op!r} is served by the "
                             "cluster layer (a shard or router), not a "
                             "standalone service")
        if req.op in ("dyn_export", "dyn_import"):
            # migration state transfer: export/import run off the loop
            # like any other dynamic-engine op
            loop = asyncio.get_running_loop()
            handler = self.dynamic.export_dataset \
                if req.op == "dyn_export" else self.dynamic.import_dataset
            return await loop.run_in_executor(None, handler, req.params)
        if req.op == "workloads":
            return workloads_payload()
        if req.op == "datasets":
            return datasets_payload()
        if req.op == "stats":
            return self.stats()
        if req.op in QUERY_OPS:
            # pipeline-DSL queries run whole kernels — off the event
            # loop, with the same deadline shedding as dynamic ops
            if req.expired():
                from ..core.errors import DeadlineExceeded
                raise DeadlineExceeded("query-dispatch",
                                       -req.remaining(), 0.0)
            loop = asyncio.get_running_loop()
            handler = self.query_engine.query if req.op == "query" \
                else self.query_engine.explain
            return await loop.run_in_executor(None, handler, req.params)
        if req.op in DYNAMIC_OPS:
            # dynamic ops are dict-probe cheap except for a first-touch
            # base generation or an incremental refresh — run them on the
            # default executor so the event loop never stalls.  The wire
            # deadline sheds already-expired work before it runs.
            if req.expired():
                from ..core.errors import DeadlineExceeded
                raise DeadlineExceeded("dynamic-dispatch",
                                       -req.remaining(), 0.0)
            loop = asyncio.get_running_loop()
            if req.op == "mutate":
                return await loop.run_in_executor(
                    None, self.dynamic.mutate, req.params)
            if req.op == "dyn_query":
                return await loop.run_in_executor(
                    None, self.dynamic.query, req.params)
            return await loop.run_in_executor(
                None, self.dynamic.mutate_one, req.op, req.params)
        # run / characterize both execute the cell; they differ in how
        # much of the record goes back over the wire.  The wire deadline
        # rides into the scheduler, which sheds already-expired work.
        cell = cell_from_params(req.params)
        record = await self.scheduler.submit(cell, deadline=req.deadline,
                                             tenant=req.tenant)
        if req.op == "run":
            out = {"workload": record["workload"],
                   "dataset": record["dataset"],
                   "outputs": record.get("outputs", {}),
                   "elapsed_s": record.get("elapsed_s"),
                   "served": record.get("served"),
                   "attempts": record.get("attempts")}
            if record.get("degraded"):
                # the degraded-response field contract: degraded=true
                # always travels with the staleness age
                out["degraded"] = True
                out["staleness_s"] = record.get("staleness_s")
            return out
        return record

    def stats(self) -> dict[str, Any]:
        cache = self.caches.stats()
        # surface the harness trace store next to the row/service tiers so
        # one scrape shows every caching layer's efficacy
        from ..harness.runner import default_trace_store
        store = default_trace_store()
        if store is not None:
            cache = dict(cache, trace_store=store.stats.as_dict())
        payload = {"protocol": PROTOCOL_VERSION,
                   "server": __version__,
                   "connections": self.connections,
                   "ops": dict(self.op_counts),
                   "scheduler": dict(self.scheduler.stats.as_dict(),
                                     pending=self.scheduler.pending),
                   "pool": self.pool.stats.as_dict(),
                   "cache": cache,
                   "dynamic": self.dynamic.stats(),
                   "query": self.query_engine.stats(),
                   "metrics": self.registry.snapshot()}
        if self.governor is not None:
            payload["tenancy"] = self.governor.stats()
        return payload


class ServiceThread:
    """Host a :class:`GraphService` event loop on a daemon thread.

    Context-manager: entering starts the loop and binds the socket
    (``host``/``port`` attributes are then live); exiting stops the
    server, drains in-flight work, and joins the thread.  This is the
    serving harness for blocking callers — tests, the load generator,
    the throughput benchmark.
    """

    def __init__(self, service: GraphService | None = None, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service or GraphService()
        self._want_host = host
        self._want_port = port
        self.host: str | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as e:  # noqa: BLE001 — surfaced on __enter__
            self._error = e
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start(self._want_host, self._want_port)
        self.host, self.port = self.service.host, self.service.port
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
