"""Tests for the deterministic TCP chaos proxy: transparent
passthrough, black-hole partitions, mid-stream resets, payload
corruption surfacing as typed protocol errors, slow-loris stalls bounded
by the client's total-read deadline, runtime fault swaps, and the seeded
determinism of per-connection fault plans."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import DeadlineExceeded, ProtocolError
from repro.resilience import ChaosProxy, NetFaultSpec
from repro.resilience.netchaos import _ConnPlan
from repro.service import (
    GraphService,
    PoolConfig,
    ServiceClient,
    ServiceThread,
)


def _inline_service() -> GraphService:
    return GraphService(pool_config=PoolConfig(size=2,
                                               isolation="inline"))


def _proxy_client(st, faults=None, seed=0, timeout_s=30.0):
    proxy = ChaosProxy(st.host, st.port, faults=faults, seed=seed)
    host, port = proxy.start()
    return proxy, ServiceClient(host, port, timeout_s=timeout_s)


class TestNetFaultSpec:
    def test_zero_value_is_transparent(self):
        assert NetFaultSpec().transparent()
        assert not NetFaultSpec(latency_ms=1.0).transparent()

    def test_but_replaces_fields(self):
        spec = NetFaultSpec(latency_ms=5.0).but(blackhole=True)
        assert spec.latency_ms == 5.0 and spec.blackhole

    @pytest.mark.parametrize("bad", [
        dict(latency_ms=-1), dict(jitter_ms=-1),
        dict(bandwidth_bps=0), dict(reset_p=1.5),
        dict(corrupt_p=-0.1), dict(stall_after_bytes=-1),
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            NetFaultSpec(**bad)

    def test_conn_plans_are_seed_deterministic(self):
        spec = NetFaultSpec(reset_p=1.0, reset_after_bytes=1000,
                            corrupt_p=0.5)
        a = _ConnPlan(spec, random.Random("netchaos:7:3"))
        b = _ConnPlan(spec, random.Random("netchaos:7:3"))
        c = _ConnPlan(spec, random.Random("netchaos:7:4"))
        assert (a.reset_at, a.corrupt) == (b.reset_at, b.corrupt)
        # a different conn_id draws an independent plan (offsets differ
        # with overwhelming probability over a 1000-byte range)
        assert a.reset_at != c.reset_at or a.corrupt != c.corrupt


class TestChaosProxyLive:
    def test_transparent_passthrough(self):
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(st)
            with proxy, client:
                assert client.ping()["pong"] is True
                assert client.run("BFS", "ldbc", scale=0.02,
                                  machine="test")["served"] == "executed"
            snap = proxy.snapshot()
            assert snap["connections"] == 1
            assert snap["bytes_up"] > 0 and snap["bytes_down"] > 0
            assert snap["resets"] == snap["corrupted"] == 0

    def test_blackhole_hangs_until_the_deadline(self):
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(
                st, faults=NetFaultSpec(blackhole=True))
            with proxy, client:
                with pytest.raises(DeadlineExceeded):
                    client.request("ping", deadline_s=0.3)
            snap = proxy.snapshot()
            assert snap["blackholed_chunks"] >= 1
            assert snap["bytes_up"] == snap["bytes_down"] == 0

    def test_reset_mid_stream_is_a_transport_error(self):
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(
                st, faults=NetFaultSpec(reset_p=1.0,
                                        reset_after_bytes=8))
            with proxy, client:
                # the RST lands after the seeded byte offset — it may
                # race a fast response through first, but then kills the
                # connection, so within a couple of round trips the
                # client must see a transport error
                with pytest.raises((OSError, ProtocolError)):
                    for _ in range(5):
                        client.ping()
            assert proxy.snapshot()["resets"] >= 1

    def test_corruption_surfaces_as_a_typed_protocol_error(self):
        # one flipped byte in a JSON-lines frame must never pass as a
        # valid answer — either the server rejects the request frame or
        # the client rejects the response frame, both typed
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(
                st, faults=NetFaultSpec(corrupt_p=1.0))
            with proxy, client:
                with pytest.raises((ProtocolError, OSError)):
                    client.ping()
            assert proxy.snapshot()["corrupted"] == 1

    def test_slow_loris_stall_is_bounded_by_the_total_read_deadline(self):
        # the response starts arriving and then stalls: a per-recv
        # timeout would wait forever one byte at a time; the client's
        # whole-round-trip budget must end the wait
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(
                st, faults=NetFaultSpec(stall_after_bytes=10))
            with proxy, client:
                with pytest.raises(DeadlineExceeded):
                    client.request("ping", deadline_s=0.4)
            snap = proxy.snapshot()
            assert snap["stalled"] >= 1
            assert 0 < snap["bytes_down"] <= 10

    def test_runtime_fault_swap_hits_live_connections(self):
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(st)
            with proxy, client:
                assert client.ping()["pong"] is True
                proxy.set_faults(NetFaultSpec(blackhole=True))
                with pytest.raises(DeadlineExceeded):
                    client.request("ping", deadline_s=0.3)
                proxy.set_faults(NetFaultSpec())
                # healed: a fresh connection flows again
                with ServiceClient(proxy.host, proxy.port,
                                   timeout_s=10.0) as c2:
                    assert c2.ping()["pong"] is True

    def test_latency_injection_slows_the_round_trip(self):
        import time
        with ServiceThread(_inline_service()) as st:
            proxy, client = _proxy_client(
                st, faults=NetFaultSpec(latency_ms=80.0))
            with proxy, client:
                t0 = time.perf_counter()
                client.ping()
                dt = time.perf_counter() - t0
            assert dt >= 0.08                     # at least one delay

    def test_dead_upstream_is_an_immediate_transport_failure(self):
        with ServiceThread(_inline_service()) as st:
            dead_port = st.port
        # service stopped: the port refuses.  The proxy answers with an
        # abortive close, which may surface as early as the client's
        # connect — so the whole dial+request goes inside the raises
        proxy = ChaosProxy("127.0.0.1", dead_port)
        with proxy:
            client = ServiceClient(proxy.host, proxy.port, timeout_s=5.0)
            try:
                with pytest.raises((OSError, ProtocolError)):
                    client.ping()
            finally:
                client.close()
        assert proxy.snapshot()["upstream_refused"] == 1
