"""Multicore execution model: partitioners and the p-core time projection
used as Fig. 12's 16-core CPU baseline."""

from .multicore import (
    BARRIER_CYCLES,
    SERIAL_FRACTION,
    MulticoreResult,
    project_multicore,
)
from .trace_sim import (
    MulticoreCacheResult,
    llc_contention,
    simulate_multicore,
)
from .partition import (
    PARTITIONERS,
    Partition,
    block_partition,
    cyclic_partition,
    greedy_weighted_partition,
)

__all__ = [
    "BARRIER_CYCLES", "MulticoreCacheResult", "PARTITIONERS", "Partition",
    "MulticoreResult", "llc_contention", "simulate_multicore",
    "SERIAL_FRACTION", "block_partition", "cyclic_partition",
    "greedy_weighted_partition", "project_multicore",
]
