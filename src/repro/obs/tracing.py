"""Span tracing: nested timed regions exported as Chrome Trace Event JSON.

A :class:`SpanTracer` records context-manager spans — name, wall time,
thread, nesting depth, parent, free-form args — with an injectable
monotonic clock so tests assert exact durations without sleeping.  The
export is the Chrome Trace Event format (complete ``"X"`` events plus
thread-name metadata), loadable directly in ``about:tracing`` /
``chrome://tracing`` or Perfetto: drop the file produced by
``repro matrix --trace-out trace.json`` onto the UI and read where a
sweep's wall-time went, cell by cell, retry by retry.

Nesting is per-thread: each thread keeps its own span stack, so a span
opened on a load-generator worker nests under that worker's spans only.
Failed spans are tagged — a span whose body raises records the exception
type in its args (``error``) before re-raising, which is how a matrix
cell's failed attempts show up red-flagged in the trace.

A process-wide tracer can be installed with :func:`set_global_tracer`;
instrumented call sites use :func:`maybe_span`, which is a no-op when no
tracer is active — tracing off costs one ``None`` check.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Chrome Trace Event phase tags used by the exporter.
_PHASE_COMPLETE = "X"
_PHASE_METADATA = "M"


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    start_us: float              # microseconds since the tracer's epoch
    dur_us: float
    tid: int                     # dense per-tracer thread id
    depth: int                   # 0 = top-level on its thread
    parent: str | None
    args: dict[str, Any] = field(default_factory=dict)


class SpanTracer:
    """Collects spans; thread-safe; clock-injectable.

    ``clock`` must be monotonic and return seconds.  Spans are kept in
    completion order; Chrome's viewer orders by timestamp, so no sort is
    needed at export.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 process_name: str = "repro"):
        self._clock = clock
        self._epoch = clock()
        self.process_name = process_name
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: dict[int, int] = {}          # ident -> dense id
        self._thread_names: dict[int, str] = {}  # dense id -> name

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = len(self._tids)
                self._tids[ident] = tid
                self._thread_names[tid] = threading.current_thread().name
            return tid

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[dict[str, Any]]:
        """Time a region.  Yields the args dict — the body may annotate
        it (e.g. record how a request was served) before the span closes.
        A raising body tags the span with ``error=<exception type>``."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        span_args = dict(args)
        start = self._clock()
        try:
            yield span_args
        except BaseException as e:
            span_args["error"] = type(e).__name__
            raise
        finally:
            end = self._clock()
            stack.pop()
            record = SpanRecord(
                name=name,
                start_us=(start - self._epoch) * 1e6,
                dur_us=(end - start) * 1e6,
                tid=self._tid(),
                depth=depth,
                parent=parent,
                args=span_args)
            with self._lock:
                self.spans.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome Trace Event JSON object (``traceEvents`` array of
        complete events plus process/thread name metadata)."""
        with self._lock:
            spans = list(self.spans)
            thread_names = dict(self._thread_names)
        events: list[dict[str, Any]] = [{
            "ph": _PHASE_METADATA, "name": "process_name", "pid": 0,
            "tid": 0, "args": {"name": self.process_name}}]
        for tid, tname in sorted(thread_names.items()):
            events.append({"ph": _PHASE_METADATA, "name": "thread_name",
                           "pid": 0, "tid": tid, "args": {"name": tname}})
        for s in spans:
            args = dict(s.args)
            if s.parent is not None:
                args.setdefault("parent", s.parent)
            events.append({
                "ph": _PHASE_COMPLETE,
                "name": s.name,
                "cat": "repro",
                "pid": 0,
                "tid": s.tid,
                "ts": round(s.start_us, 3),
                "dur": round(s.dur_us, 3),
                "args": args})
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1, default=str)

    # -- queries (tests, reports) --------------------------------------------

    def find(self, prefix: str) -> list[SpanRecord]:
        """Spans whose name starts with ``prefix``, completion order."""
        with self._lock:
            return [s for s in self.spans if s.name.startswith(prefix)]

    def children_of(self, parent_name: str) -> list[SpanRecord]:
        with self._lock:
            return [s for s in self.spans if s.parent == parent_name]


# -- process-wide tracer -----------------------------------------------------

_global_tracer: SpanTracer | None = None
_global_lock = threading.Lock()


def set_global_tracer(tracer: SpanTracer | None) -> None:
    """Install (or clear, with ``None``) the process-wide tracer that
    :func:`maybe_span` call sites fall back to."""
    global _global_tracer
    with _global_lock:
        _global_tracer = tracer


def get_global_tracer() -> SpanTracer | None:
    return _global_tracer


@contextmanager
def maybe_span(tracer: SpanTracer | None, name: str,
               **args: Any) -> Iterator[dict[str, Any]]:
    """Span on ``tracer`` (or the global tracer if ``tracer`` is None);
    a cheap no-op when neither is active."""
    active = tracer if tracer is not None else _global_tracer
    if active is None:
        yield args
        return
    with active.span(name, **args) as span_args:
        yield span_args
