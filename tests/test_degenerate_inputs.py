"""Degenerate-input robustness: single vertices, empty adjacencies,
isolated graphs — the corners a downstream user will hit first."""

import numpy as np

from repro import workloads as W
from repro.core.graph import PropertyGraph
from repro.formats import CSRGraph, from_edge_arrays
from repro.workloads import common_edge_schema, common_vertex_schema


def single_vertex_graph():
    g = PropertyGraph(common_vertex_schema(), common_edge_schema())
    g.add_vertex(0)
    return g


def edgeless_graph(n=5):
    g = PropertyGraph(common_vertex_schema(), common_edge_schema())
    for i in range(n):
        g.add_vertex(i)
    return g


class TestSingleVertexWorkloads:
    def test_bfs(self):
        res = W.run("BFS", single_vertex_graph(), root=0)
        assert res.outputs["levels"] == {0: 0}

    def test_dfs(self):
        res = W.run("DFS", single_vertex_graph(), root=0)
        assert res.outputs["order"] == {0: 0}

    def test_spath(self):
        res = W.run("SPath", single_vertex_graph(), root=0)
        assert res.outputs["dists"] == {0: 0.0}

    def test_kcore(self):
        res = W.run("kCore", single_vertex_graph())
        assert res.outputs["core"] == {0: 0}

    def test_tc(self):
        assert W.run("TC", single_vertex_graph()).outputs["triangles"] == 0

    def test_ccomp(self):
        res = W.run("CComp", single_vertex_graph())
        assert res.outputs["n_components"] == 1

    def test_gcolor(self):
        res = W.run("GColor", single_vertex_graph())
        assert res.outputs["colors"] == {0: 0}

    def test_dcentr(self):
        assert W.run("DCentr",
                     single_vertex_graph()).outputs["dc"] == {0: 0.0}

    def test_bcentr(self):
        assert W.run("BCentr",
                     single_vertex_graph()).outputs["bc"] == {0: 0.0}

    def test_tmorph(self):
        res = W.run("TMorph", single_vertex_graph())
        assert res.outputs["moral_edges"] == set()


class TestEdgelessGraphs:
    def test_ccomp_all_singletons(self):
        res = W.run("CComp", edgeless_graph(7))
        assert res.outputs["n_components"] == 7

    def test_gcolor_one_color(self):
        res = W.run("GColor", edgeless_graph(7))
        assert res.outputs["n_colors"] == 1

    def test_kcore_all_zero(self):
        res = W.run("kCore", edgeless_graph(4))
        assert set(res.outputs["core"].values()) == {0}

    def test_gup_can_empty_the_graph(self):
        g = edgeless_graph(4)
        res = W.run("GUp", g, fraction=1.0, seed=0)
        assert res.outputs["remaining_vertices"] == 0


class TestDegenerateCSR:
    def test_empty_graph_csr(self):
        csr = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert csr.n == 0 and csr.m == 0

    def test_single_vertex_csr(self):
        csr = from_edge_arrays(1, [], [])
        assert csr.degree(0) == 0
        assert list(csr.neighbors(0)) == []

    def test_gpu_kernels_on_edgeless_spec(self):
        from repro.core.taxonomy import DataSource
        from repro.datagen import GraphSpec
        from repro.gpu import run_gpu_workload
        spec = GraphSpec("lonely", DataSource.SYNTHETIC, 40,
                         np.array([[0, 1]]))
        for name in ("BFS", "kCore", "CComp", "TC", "DCentr"):
            out, m = run_gpu_workload(name, spec)
            assert 0.0 <= m.bdr <= 1.0
        out, _ = run_gpu_workload("TC", spec)
        assert out["triangles"] == 0
