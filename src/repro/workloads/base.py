"""Workload infrastructure: base class, result container, traced helpers.

Every GraphBIG workload is a :class:`Workload` subclass tagged with its
computation type (Table 1) and category (Table 4).  Workloads touch the
graph only through framework primitives; their own algorithmic state
(frontier queues, DFS stacks, heaps) lives in :class:`TracedQueue` /
:class:`TracedStack` / :class:`TracedHeap` — small arrays allocated from
the same simulated heap, whose reuse is precisely the "task queues and
temporal local variables" the paper credits for graph computing's high
L1D hit rates (Section 5.2.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any

from ..core.graph import PropertyGraph
from ..core.properties import Field
from ..core.taxonomy import ComputationType, WorkloadCategory
from ..core.trace import FrozenTrace, Tracer


class NullTracer:
    """No-op tracer: lets workload code charge events unconditionally."""

    def r(self, addr: int) -> None: ...
    def w(self, addr: int) -> None: ...
    def i(self, count: int) -> None: ...
    def br(self, site: int, taken: bool) -> None: ...
    def enter(self, rid: int) -> None: ...
    def leave(self) -> None: ...
    def bulk_reads(self, addrs, instrs_per_access: int = 2) -> None: ...
    def bulk_writes(self, addrs, instrs_per_access: int = 2) -> None: ...
    def bulk_scan(self, addr_cols, instrs_per_step: int = 2) -> None: ...
    def bulk_branches(self, site, taken, count=None) -> None: ...
    def bulk_branch_events(self, sites, taken) -> None: ...

    def bulk_emit(self, addrs, rw, iat, regions, *, n_instrs, fw_instrs,
                  fw_accesses, head_instrs=0, region_seq=None,
                  region_instrs=None) -> None: ...

    def register_region(self, name: str, code_bytes: int = 256,
                        framework: bool = False) -> int:
        return 0

    def register_branch_site(self) -> int:
        return 0


NULL_TRACER = NullTracer()

#: Common vertex property schema shared by all workloads, mirroring a
#: deployed property graph whose struct layout doesn't change per query.
COMMON_VERTEX_FIELDS = [
    Field("level", default=-1),      # BFS level
    Field("parent", default=-1),     # BFS/DFS tree parent
    Field("order", default=-1),      # DFS discovery order
    Field("color", default=-1),      # graph coloring
    Field("rnd", default=0),         # Luby-Jones random priority
    Field("dist", default=float("inf")),  # shortest-path distance
    Field("core", default=-1),       # k-core number
    Field("comp", default=-1),       # connected-component label
    Field("dc", default=0),          # degree centrality
    Field("bc", default=0.0),        # betweenness centrality
    Field("state", default=0),       # Gibbs variable state
    Field("cpt", payload=0),         # Gibbs CPT payload pointer
]

#: Edge schema: a weight (SPath) — present on every edge as deployed
#: property graphs carry edge metadata.
COMMON_EDGE_FIELDS = [Field("weight", default=1.0)]


def common_vertex_schema():
    """Fresh :class:`Schema` of the shared vertex layout."""
    from ..core.properties import Schema
    return Schema(list(COMMON_VERTEX_FIELDS))


def common_edge_schema():
    """Fresh :class:`Schema` of the shared edge layout."""
    from ..core.properties import Schema
    return Schema(list(COMMON_EDGE_FIELDS))


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    outputs: dict[str, Any]
    trace: FrozenTrace | None = None
    params: dict[str, Any] = field(default_factory=dict)
    footprint_bytes: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        keys = ", ".join(self.outputs)
        return f"WorkloadResult({self.name!r}, outputs=[{keys}])"


class Workload(ABC):
    """One GraphBIG workload.

    Subclasses set the class attributes and implement :meth:`kernel`.
    :meth:`run` handles tracer attachment, user-region registration and
    trace freezing, so kernels only contain algorithm + charges.
    """

    NAME: str = ""
    CTYPE: ComputationType = ComputationType.COMP_STRUCT
    CATEGORY: WorkloadCategory = WorkloadCategory.ANALYTICS
    HAS_GPU: bool = False
    KERNEL_CODE_BYTES: int = 448     # user-kernel code footprint (flat stack)

    def run(self, g: PropertyGraph, tracer: Tracer | None = None,
            **params: Any) -> WorkloadResult:
        """Execute the workload kernel on ``g``.

        If ``tracer`` is given it is attached to ``g`` for the duration of
        the kernel and the frozen trace is returned in the result.
        """
        prev = g.t
        ut: Tracer | NullTracer
        if tracer is not None:
            g.attach_tracer(tracer)
            ut = tracer
        else:
            g.detach_tracer()
            ut = NULL_TRACER
        rid = ut.register_region(f"{self.NAME}_kernel",
                                 self.KERNEL_CODE_BYTES)
        ut.enter(rid)
        try:
            outputs = self.kernel(g, ut, **params)
        finally:
            ut.leave()
            g.t = prev
        trace = tracer.freeze() if tracer is not None else None
        return WorkloadResult(self.NAME, outputs, trace=trace, params=params,
                              footprint_bytes=g.alloc.footprint)

    @abstractmethod
    def kernel(self, g: PropertyGraph, t: Tracer | NullTracer,
               **params: Any) -> dict[str, Any]:
        """Algorithm body: returns the outputs dict."""


# -- traced algorithmic containers ------------------------------------------
ENTRY = 8  # bytes per queue/stack/heap slot


class TracedQueue:
    """FIFO frontier queue backed by a circular buffer on the sim heap."""

    def __init__(self, g: PropertyGraph, t: Tracer | NullTracer,
                 capacity: int = 1024, tag: str = "queue"):
        self._items: list[Any] = []
        self._head = 0
        self.cap = capacity
        self.base = g.alloc.alloc_array(capacity, ENTRY, tag=tag)
        self.t = t
        self._tail_idx = 0
        self._head_idx = 0

    def push(self, item: Any) -> None:
        self.t.i(3)
        self.t.w(self.base + (self._tail_idx % self.cap) * ENTRY)
        self._tail_idx += 1
        self._items.append(item)

    def pop(self) -> Any:
        if self._head >= len(self._items):
            raise IndexError("pop from empty TracedQueue")
        self.t.i(3)
        self.t.r(self.base + (self._head_idx % self.cap) * ENTRY)
        self._head_idx += 1
        item = self._items[self._head]
        self._head += 1
        # periodically compact the backing list
        if self._head > 4096 and self._head * 2 > len(self._items):
            del self._items[:self._head]
            self._head = 0
        return item

    def __len__(self) -> int:
        return len(self._items) - self._head

    def __bool__(self) -> bool:
        return len(self) > 0


class TracedStack:
    """LIFO stack on the sim heap (DFS)."""

    def __init__(self, g: PropertyGraph, t: Tracer | NullTracer,
                 capacity: int = 4096, tag: str = "stack"):
        self._items: list[Any] = []
        self.cap = capacity
        self.base = g.alloc.alloc_array(capacity, ENTRY, tag=tag)
        self.t = t

    def push(self, item: Any) -> None:
        self.t.i(3)
        self.t.w(self.base + (len(self._items) % self.cap) * ENTRY)
        self._items.append(item)

    def pop(self) -> Any:
        if not self._items:
            raise IndexError("pop from empty TracedStack")
        self.t.i(3)
        item = self._items.pop()
        self.t.r(self.base + (len(self._items) % self.cap) * ENTRY)
        return item

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class TracedHeap:
    """Binary min-heap on the sim heap (Dijkstra's priority queue).

    Charges ~log(n) slot touches per operation — the sift path of a real
    array heap — against a contiguous allocation that stays cache-hot.
    """

    def __init__(self, g: PropertyGraph, t: Tracer | NullTracer,
                 capacity: int = 4096, tag: str = "heap"):
        self._heap: list[Any] = []
        self.cap = capacity
        self.base = g.alloc.alloc_array(capacity, 2 * ENTRY, tag=tag)
        self.t = t

    def _touch_path(self, pos: int, write: bool) -> None:
        # sift path from pos to root
        while True:
            a = self.base + (pos % self.cap) * 2 * ENTRY
            if write:
                self.t.w(a)
            else:
                self.t.r(a)
            self.t.i(4)
            if pos == 0:
                break
            pos = (pos - 1) // 2

    def push(self, item: Any) -> None:
        self._touch_path(len(self._heap), write=True)
        heappush(self._heap, item)

    def pop(self) -> Any:
        if not self._heap:
            raise IndexError("pop from empty TracedHeap")
        item = heappop(self._heap)
        # sift-down after removing root: touches a root-to-leaf path
        self._touch_path(max(len(self._heap) - 1, 0), write=True)
        self.t.r(self.base)
        return item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
