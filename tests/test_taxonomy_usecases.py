"""Tests for the taxonomy metadata (Tables 1-2) and use-case catalogue
(Figs. 3-4)."""

import pytest

from repro.core.taxonomy import (
    COMPUTATION_PROFILES,
    DATA_SOURCE_PROFILES,
    ComputationType,
    DataSource,
    WorkloadCategory,
)
from repro.core.usecases import (
    CATEGORIES,
    USE_CASES,
    category_distribution,
    coverage_check,
    select_workloads,
    workload_usecase_counts,
)
from repro.workloads import WORKLOAD_TYPES


class TestTaxonomy:
    def test_three_computation_types(self):
        assert len(ComputationType) == 3
        assert set(COMPUTATION_PROFILES) == set(ComputationType)

    def test_profiles_match_table1(self):
        p = COMPUTATION_PROFILES[ComputationType.COMP_STRUCT]
        assert p.read_intensity == "high"
        assert "BFS" in p.example
        p = COMPUTATION_PROFILES[ComputationType.COMP_PROP]
        assert p.numeric_intensity == "high"
        p = COMPUTATION_PROFILES[ComputationType.COMP_DYN]
        assert p.write_intensity == "high"

    def test_four_real_sources_plus_synthetic(self):
        assert len(DataSource) == 5
        assert set(DATA_SOURCE_PROFILES) == set(DataSource)

    def test_source_examples_match_table2(self):
        assert "Twitter" in DATA_SOURCE_PROFILES[DataSource.SOCIAL].example
        assert "Road" in DATA_SOURCE_PROFILES[DataSource.TECHNOLOGY].example

    def test_categories(self):
        assert len(WorkloadCategory) == 4


class TestUseCases:
    def test_twentyone_use_cases(self):
        assert len(USE_CASES) == 21

    def test_bfs_most_popular_fig4(self):
        counts = workload_usecase_counts()
        assert counts["BFS"] == 10
        assert counts["TC"] == 4
        assert max(counts.values()) == counts["BFS"]
        assert min(counts.values()) >= 2

    def test_six_categories(self):
        cats = {uc.category for uc in USE_CASES}
        assert cats == set(CATEGORIES)

    def test_distribution_sums_to_one(self):
        dist = category_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_distribution_matches_fig4b(self):
        dist = category_distribution()
        for cat, frac in CATEGORIES.items():
            assert dist[cat] == pytest.approx(frac, abs=0.01)

    def test_select_by_popularity(self):
        sel = select_workloads(min_usecases=4)
        assert sel[0] == "BFS"
        assert "TC" in sel

    def test_coverage_check_full(self):
        assert coverage_check(list(WORKLOAD_TYPES), WORKLOAD_TYPES) == set()

    def test_coverage_check_missing(self):
        missing = coverage_check(["BFS", "DFS"], WORKLOAD_TYPES)
        assert ComputationType.COMP_PROP in missing
        assert ComputationType.COMP_DYN in missing

    def test_every_workload_has_a_use_case(self):
        counts = workload_usecase_counts()
        assert set(counts) == set(WORKLOAD_TYPES)
