"""Unit tests for the multicore model (repro.parallel)."""

import numpy as np
import pytest

from repro.parallel import (
    MulticoreResult,
    block_partition,
    cyclic_partition,
    greedy_weighted_partition,
    project_multicore,
)


class TestPartitioners:
    def test_block_covers_everything(self):
        p = block_partition(100, 7)
        assert len(p.owner) == 100
        assert set(p.owner) == set(range(7))

    def test_block_is_contiguous(self):
        p = block_partition(100, 4)
        assert (np.diff(p.owner) >= 0).all()

    def test_cyclic(self):
        p = cyclic_partition(10, 3)
        assert p.owner.tolist() == [0, 1, 2] * 3 + [0]

    def test_loads_unit_weights(self):
        p = block_partition(100, 4)
        assert p.loads().sum() == 100

    def test_imbalance_uniform(self):
        p = block_partition(100, 4)
        assert p.imbalance() == pytest.approx(1.0)

    def test_greedy_beats_block_on_skew(self):
        rng = np.random.default_rng(0)
        w = rng.zipf(1.8, 200).astype(float)
        w.sort()                            # correlated runs hurt block
        b = block_partition(len(w), 8).imbalance(w)
        g = greedy_weighted_partition(w, 8).imbalance(w)
        assert g <= b

    def test_greedy_imbalance_bounded(self):
        rng = np.random.default_rng(1)
        w = rng.zipf(2.0, 300).astype(float)
        p = greedy_weighted_partition(w, 4)
        # LPT guarantee: 4/3 OPT; OPT >= mean, so max/mean <= ~4/3 + max item
        assert p.imbalance(w) <= max(4 / 3 + 0.01,
                                     w.max() / (w.sum() / 4))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            block_partition(10, 0)
        with pytest.raises(ValueError):
            cyclic_partition(10, -1)


class TestMulticoreProjection:
    def test_amdahl_limits_speedup(self):
        r = project_multicore(1e9, p=16, serial_fraction=0.5)
        assert r.speedup < 2.0

    def test_fully_parallel_near_linear(self):
        r = project_multicore(1e9, p=16, serial_fraction=0.001)
        assert r.speedup > 12

    def test_more_cores_never_slower_without_barriers(self):
        base = 1e8
        t8 = project_multicore(base, p=8, serial_fraction=0.1)
        t16 = project_multicore(base, p=16, serial_fraction=0.1)
        assert t16.parallel_cycles <= t8.parallel_cycles

    def test_barriers_add_cost(self):
        a = project_multicore(1e6, p=4, serial_fraction=0.0, barriers=0)
        b = project_multicore(1e6, p=4, serial_fraction=0.0, barriers=100)
        assert b.parallel_cycles > a.parallel_cycles

    def test_imbalance_from_weights(self):
        w = np.zeros(64)
        w[0] = 1000.0                     # one giant item
        w[1:] = 1.0
        r = project_multicore(1e6, p=8, weights=w, serial_fraction=0.0)
        assert r.imbalance > 4.0
        assert r.speedup < 4.0

    def test_workload_default_serial_fraction(self):
        dfs = project_multicore(1e6, p=16, workload="DFS")
        dc = project_multicore(1e6, p=16, workload="DCentr")
        assert dfs.speedup < dc.speedup

    def test_efficiency(self):
        r = project_multicore(1e6, p=4, serial_fraction=0.0)
        assert r.efficiency == pytest.approx(r.speedup / 4)

    def test_time_seconds(self):
        r = project_multicore(2.6e9, p=1, serial_fraction=0.0)
        assert r.time_seconds(2.6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_multicore(1e6, p=0)
        with pytest.raises(ValueError):
            project_multicore(1e6, p=2, serial_fraction=1.5)

    def test_p1_identity(self):
        r = project_multicore(1e6, p=1, serial_fraction=0.3)
        assert r.parallel_cycles == pytest.approx(1e6)
        assert isinstance(r, MulticoreResult)
