"""Process worker pool: bounded concurrent cell execution with isolation.

The pool turns the PR-1 resilient executor into a serving-side resource:
``size`` concurrent slots, each running one characterization cell through
:func:`~repro.resilience.executor.run_cell_resilient` — so a hung worker
is SIGKILLed at its deadline and a crashed one surfaces as a typed
:class:`~repro.core.errors.CellExecutionError`, without disturbing the
other in-flight slots.

Isolation modes mirror the executor's:

``process``  every cell gets a fresh worker subprocess (real containment;
             the production mode)
``inline``   cells run on the pool thread itself — no subprocess, so the
             dataset spec tier can be shared across requests; chaos faults
             map onto the same typed errors (tests, benchmarks, demos)
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.errors import CellExecutionError, CellOOM, CellCrash, CellTimeout
from ..obs.logs import get_logger
from ..resilience.cell import Cell, row_to_record
from ..resilience.chaos import ChaosSpec, corrupt_payload
from ..resilience.executor import ExecutorConfig, run_cell_resilient
from ..resilience.retry import RetryPolicy, run_with_retries
from .cache import CacheTiers, dataset_key

log = get_logger("service.pool")

#: Failure kinds that mean the worker process itself died (or was
#: killed) and the next request pays a fresh-worker spawn — the
#: "worker restart" signal a capacity planner watches.
_RESTART_KINDS = frozenset({"crash", "timeout", "oom",
                            "retries-exhausted"})


@dataclass(frozen=True)
class PoolConfig:
    """Knobs for the serving-side worker pool."""

    size: int = 4                    # concurrent execution slots
    isolation: str = "process"       # "process" | "inline"
    timeout_s: float = 300.0
    retries: int = 0                 # service default: fail fast, the
    #                                  client decides whether to retry
    mp_start_method: str = "fork"

    def __post_init__(self):
        if self.size < 1:
            raise ValueError("pool size must be >= 1")
        if self.isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation {self.isolation!r}")


@dataclass
class PoolStats:
    """Execution counters, including failures by taxonomy kind."""

    executed: int = 0
    failed: int = 0
    worker_restarts: int = 0     # failures that killed the worker itself
    failures_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"executed": self.executed, "failed": self.failed,
                "worker_restarts": self.worker_restarts,
                "failures_by_kind": dict(self.failures_by_kind)}


class WorkerPool:
    """Bounded pool of isolated cell executors.

    ``run_record`` is the async entry: it parks the awaiting coroutine
    while one of ``size`` pool threads drives the (blocking, possibly
    subprocess-spawning) resilient executor, and returns the flat row
    record — the exact JSON shape the wire and the checkpoint journal
    share.
    """

    def __init__(self, config: PoolConfig | None = None, *,
                 chaos: ChaosSpec | None = None,
                 caches: CacheTiers | None = None,
                 memoize: bool = True):
        self.config = config or PoolConfig()
        self.chaos = chaos
        self.caches = caches
        self.memoize = memoize
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._m_wall = None          # bound by bind_metrics()
        self._tpe = ThreadPoolExecutor(
            max_workers=self.config.size,
            thread_name_prefix="repro-pool")

    # -- observability -------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Expose execution counters (collector over :class:`PoolStats`)
        and a subprocess wall-time histogram on a registry."""
        self._m_wall = registry.histogram(
            "pool_exec_wall_time_ms",
            "wall-clock time one cell spent on a pool slot (ms), "
            "by outcome", labels=("outcome",))
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> dict:
        with self._lock:
            executed = self.stats.executed
            restarts = self.stats.worker_restarts
            by_kind = dict(self.stats.failures_by_kind)
        return {
            "pool_executions_total": {
                "type": "counter",
                "help": "cells executed to completion on the pool",
                "samples": [{"labels": {}, "value": float(executed)}]},
            "pool_worker_restarts_total": {
                "type": "counter",
                "help": "failures that killed the worker "
                        "(crash/timeout/oom): next request pays a spawn",
                "samples": [{"labels": {}, "value": float(restarts)}]},
            "pool_failures_total": {
                "type": "counter",
                "help": "failed executions by taxonomy kind",
                "samples": [{"labels": {"kind": k}, "value": float(v)}
                            for k, v in sorted(by_kind.items())]},
        }

    async def run_record(self, cell: Cell) -> dict:
        """Execute one cell on a pool slot; raise typed errors on failure."""
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        try:
            record = await loop.run_in_executor(
                self._tpe, self._run_sync, cell)
        except CellExecutionError as e:
            last = getattr(e, "last", e)
            with self._lock:
                self.stats.failed += 1
                if last.kind in _RESTART_KINDS or e.kind in _RESTART_KINDS:
                    self.stats.worker_restarts += 1
                self.stats.failures_by_kind[last.kind] = \
                    self.stats.failures_by_kind.get(last.kind, 0) + 1
            if self._m_wall is not None:
                self._m_wall.labels(outcome="failed").observe(
                    (time.perf_counter() - t0) * 1e3)
            log.warning("cell %s failed on pool slot: %s: %s",
                        cell.cell_id, last.kind, last,
                        extra={"cell": cell.cell_id, "kind": last.kind})
            raise
        with self._lock:
            self.stats.executed += 1
        if self._m_wall is not None:
            self._m_wall.labels(outcome="ok").observe(
                (time.perf_counter() - t0) * 1e3)
        return record

    def shutdown(self) -> None:
        self._tpe.shutdown(wait=True, cancel_futures=True)

    # -- blocking paths (pool thread) ---------------------------------------

    def _run_sync(self, cell: Cell) -> dict:
        if self.config.isolation == "inline":
            policy = RetryPolicy(max_retries=self.config.retries)
            record, attempts = run_with_retries(
                lambda attempt: self._run_inline(cell, attempt),
                policy, cell.cell_id)
            record["attempts"] = attempts
            return record
        config = ExecutorConfig(
            timeout_s=self.config.timeout_s,
            policy=RetryPolicy(max_retries=self.config.retries),
            isolation="process",
            mp_start_method=self.config.mp_start_method)
        record, _ = run_cell_resilient(cell, config=config,
                                       chaos=self.chaos)
        return record

    def _run_inline(self, cell: Cell, attempt: int) -> dict:
        """In-process attempt sharing the dataset spec tier.

        Mirrors :func:`~repro.resilience.executor.run_cell_inline` but
        materializes the dataset through the cache (a subprocess cannot
        share specs; a pool thread can) and honours ``memoize=False`` so
        the cache-off baseline really recomputes.
        """
        from ..datagen.registry import make as make_dataset
        from ..harness.runner import characterize

        fault = (self.chaos.fault_for(cell.cell_id, attempt)
                 if self.chaos is not None else None)
        if fault is not None:
            if fault.kind == "hang":
                raise CellTimeout(cell.cell_id, self.config.timeout_s)
            if fault.kind in ("crash", "raise"):
                raise CellCrash(cell.cell_id,
                                f"chaos: injected {fault.kind}")
            if fault.kind == "oom":
                raise CellOOM(cell.cell_id,
                              "chaos: simulated allocator OOM")
        try:
            spec = None
            dkey = dataset_key(cell.dataset, cell.scale, cell.seed)
            if self.caches is not None:
                spec = self.caches.datasets.get(dkey)
            if spec is None:
                spec = make_dataset(cell.dataset, scale=cell.scale,
                                    seed=cell.seed)
                if self.caches is not None:
                    self.caches.datasets.put(dkey, spec)
            row = characterize(cell.workload, spec,
                               machine=cell.machine_config(),
                               with_gpu=cell.with_gpu,
                               memo=self.memoize)
        except MemoryError as e:
            raise CellOOM(cell.cell_id, str(e) or "MemoryError") from e
        except CellExecutionError:
            raise
        except Exception as e:
            raise CellCrash(cell.cell_id,
                            f"{type(e).__name__}: {e}") from e
        payload = row_to_record(row, cell, attempts=attempt)
        payload = corrupt_payload(fault, payload, cell.cell_id)
        if not isinstance(payload, dict):
            raise CellCrash(cell.cell_id,
                            f"corrupt result payload "
                            f"({type(payload).__name__})")
        return payload
