"""Pipeline query language: DSL -> AST -> plan -> local/distributed
execution.

The smallest language that multiplies scenario coverage: a ``|``-chained
pipeline in the Storm mold, composing the existing graph kernels with
relational stages over one shared vertex table::

    from twitter | bfs root=42 depth<=3 | topk degree 10

* :mod:`~repro.query.parse` — hand-written lexer + recursive-descent
  parser producing the typed AST of :mod:`~repro.query.ast`
  (``parse -> unparse -> parse`` is the identity, property-tested);
* :mod:`~repro.query.plan` — logical validation + the cost-aware
  physical planner (implicit column materialization, filter fusion,
  graph/table phase split, per-stage cost estimates for ``explain``);
* :mod:`~repro.query.exec` — the executor: numpy/python kernels over a
  graph image, relational table ops shared verbatim by the single-node
  tail and the router's distributed merge;
* :mod:`~repro.query.engine` — the per-service facade: content-addressed
  plan cache (version-keyed, so dynamic-graph commits invalidate),
  graph/kernel caches, wire-param validation;
* :mod:`~repro.query.dist` — per-shard subplan partitioning and the
  scatter-gather merge (topk merge, count sum, component relabel);
* :mod:`~repro.query.templates` — the loadgen's query-template pool.
"""

from .ast import Arg, Pipeline, Stage
from .dist import merge_partials, partition_params
from .engine import PLANNER_VERSION, QueryEngine
from .parse import parse, unparse
from .plan import PhysicalPlan, plan_pipeline, source_info
from .templates import query_template_pool

__all__ = [
    "Arg", "PLANNER_VERSION", "PhysicalPlan", "Pipeline", "QueryEngine",
    "Stage", "merge_partials", "parse", "partition_params",
    "plan_pipeline", "query_template_pool", "source_info", "unparse",
]
