"""Unit tests for the SIMT accounting engine (repro.gpu.simt)."""

import numpy as np
import pytest

from repro.gpu.simt import (
    SEGMENT,
    KernelAccum,
    KernelStats,
    slots_for_loop,
    warp_of,
)


class TestWarpOf:
    def test_grouping(self):
        assert warp_of(np.array([0, 31, 32, 63, 64])).tolist() == \
            [0, 0, 1, 1, 2]


class TestSlotsForLoop:
    def test_counts(self):
        trips = np.array([2, 0, 1])
        threads, steps, slots = slots_for_loop(trips)
        assert threads.tolist() == [0, 0, 2]
        assert steps.tolist() == [0, 1, 0]

    def test_same_warp_same_step_share_slot(self):
        trips = np.zeros(64, dtype=np.int64)
        trips[0] = 2
        trips[1] = 2
        trips[32] = 1
        threads, steps, slots = slots_for_loop(trips)
        by = {(t, s): sl for t, s, sl in zip(threads, steps, slots)}
        assert by[(0, 0)] == by[(1, 0)]       # same warp, same step
        assert by[(0, 0)] != by[(0, 1)]       # different step
        assert by[(0, 0)] != by[(32, 0)]      # different warp

    def test_empty(self):
        threads, steps, slots = slots_for_loop(np.zeros(5, dtype=np.int64))
        assert len(threads) == 0


class TestComputeAccounting:
    def test_uniform_full_warps_no_divergence(self):
        acc = KernelAccum()
        acc.uniform_op(np.ones(64, dtype=bool), 3.0)
        st = acc.stats
        assert st.warp_issues == 6.0          # 2 warps x 3 instrs
        assert st.lane_issues == 192.0
        assert st.bdr == pytest.approx(0.0)

    def test_sparse_active_high_divergence(self):
        active = np.zeros(64, dtype=bool)
        active[0] = True
        active[32] = True
        acc = KernelAccum()
        acc.uniform_op(active, 1.0)
        assert acc.stats.bdr == pytest.approx(31 / 32)

    def test_loop_charges_warp_max(self):
        trips = np.zeros(32, dtype=np.int64)
        trips[0] = 10
        trips[1] = 2
        acc = KernelAccum()
        acc.loop(trips, 1.0)
        st = acc.stats
        assert st.warp_issues == 10.0
        assert st.lane_issues == 12.0
        assert st.bdr == pytest.approx(1 - 12 / 320)

    def test_balanced_loop_low_divergence(self):
        acc = KernelAccum()
        acc.loop(np.full(32, 5, dtype=np.int64), 1.0)
        assert acc.stats.bdr == pytest.approx(0.0)

    def test_inactive_warps_free(self):
        active = np.zeros(96, dtype=bool)
        active[:32] = True
        acc = KernelAccum()
        acc.uniform_op(active, 1.0)
        assert acc.stats.warp_issues == 1.0


class TestMemoryAccounting:
    def test_fully_coalesced_no_replay(self):
        acc = KernelAccum()
        # 32 lanes, 4-byte elements, one 128 B segment
        slots = np.zeros(32, dtype=np.int64)
        addrs = np.arange(32) * 4
        acc.mem_op(slots, addrs)
        st = acc.stats
        assert st.mem_base_issues == 1
        assert st.mem_replays == 0
        assert st.mdr == 0.0

    def test_fully_scattered_replays(self):
        acc = KernelAccum()
        slots = np.zeros(32, dtype=np.int64)
        addrs = np.arange(32) * SEGMENT * 7
        acc.mem_op(slots, addrs)
        st = acc.stats
        assert st.mem_replays == 31
        assert st.mdr == pytest.approx(31 / 32)

    def test_two_segments_one_replay(self):
        acc = KernelAccum()
        slots = np.zeros(32, dtype=np.int64)
        addrs = np.arange(32) * 8    # 8-byte stride spans 2 segments
        acc.mem_op(slots, addrs)
        assert acc.stats.mem_replays == 1

    def test_distinct_calls_do_not_merge_slots(self):
        acc = KernelAccum()
        acc.mem_op(np.zeros(2, dtype=np.int64), np.array([0, 4]))
        acc.mem_op(np.zeros(2, dtype=np.int64), np.array([0, 4]))
        assert acc.stats.mem_base_issues == 2

    def test_l2_absorbs_rereads(self):
        acc = KernelAccum(l2_bytes=64 * SEGMENT)
        addrs = np.arange(32) * 4
        acc.mem_op(np.zeros(32, dtype=np.int64), addrs)
        first = acc.stats.bytes_read
        acc.mem_op(np.zeros(32, dtype=np.int64), addrs)
        assert acc.stats.bytes_read == first     # second read hits L2

    def test_l2_capacity_eviction(self):
        acc = KernelAccum(l2_bytes=2 * SEGMENT)
        stream = (np.arange(8) * SEGMENT).astype(np.int64)
        for a in stream:
            acc.mem_op(np.zeros(1, dtype=np.int64), np.array([a]))
        before = acc.stats.dram_transactions
        acc.mem_op(np.zeros(1, dtype=np.int64), np.array([0]))
        assert acc.stats.dram_transactions == before + 1   # evicted

    def test_write_bytes_separated(self):
        acc = KernelAccum()
        acc.mem_op(np.zeros(1, dtype=np.int64), np.array([0]),
                   is_write=True)
        assert acc.stats.bytes_written == SEGMENT
        assert acc.stats.bytes_read == 0

    def test_mismatched_shapes(self):
        acc = KernelAccum()
        with pytest.raises(ValueError):
            acc.mem_op(np.zeros(2, dtype=np.int64), np.array([1]))


class TestAtomics:
    def test_intra_warp_conflicts(self):
        acc = KernelAccum()
        slots = np.zeros(4, dtype=np.int64)
        acc.atomic_op(slots, np.array([128, 128, 128, 256]))
        assert acc.stats.atomic_ops == 4
        assert acc.stats.atomic_conflicts == 2   # three lanes on addr 128

    def test_cross_slot_no_conflict(self):
        acc = KernelAccum()
        acc.atomic_op(np.array([0, 1]), np.array([128, 128]))
        assert acc.stats.atomic_conflicts == 0

    def test_atomic_rmw_reads_on_miss(self):
        acc = KernelAccum(l2_bytes=SEGMENT)
        acc.atomic_op(np.zeros(1, dtype=np.int64),
                      np.array([10 * SEGMENT]))
        assert acc.stats.bytes_written == SEGMENT
        assert acc.stats.bytes_read == SEGMENT


class TestStatsAggregation:
    def test_merge(self):
        a = KernelStats(warp_issues=1, lane_issues=32, launches=1)
        b = KernelStats(warp_issues=2, lane_issues=32, mem_replays=3,
                        mem_base_issues=1)
        a.merge(b)
        assert a.warp_issues == 3
        assert a.mem_issued == 4
        assert a.launches == 1

    def test_empty_rates(self):
        st = KernelStats()
        assert st.bdr == 0.0
        assert st.mdr == 0.0

    def test_launch_counter(self):
        acc = KernelAccum()
        acc.launch()
        acc.launch()
        assert acc.stats.launches == 2


class TestFusedVsReference:
    """Deferred (fused) L2 accounting against the inline reference: the
    same op sequence driven through both modes must produce identical
    KernelStats — including DRAM/byte attribution per mem_op flags."""

    @staticmethod
    def _drive(acc, seed):
        rng = np.random.default_rng(seed)
        acc.launch()
        for _ in range(6):
            n = int(rng.integers(1, 200))
            threads = np.sort(rng.integers(0, 1 << 12, n))
            slots = warp_of(threads)
            addrs = rng.integers(0, 1 << 22, n).astype(np.int64) & ~3
            kind = int(rng.integers(0, 4))
            if kind == 0:
                acc.mem_op(slots, addrs)
            elif kind == 1:
                acc.mem_op(slots, addrs, is_write=True)
            elif kind == 2:
                acc.atomic_op(slots, addrs)
            else:
                acc.uniform_op(rng.integers(0, 2, 64).astype(bool),
                               float(rng.integers(1, 5)))
        return acc.stats

    def test_random_streams_identical(self):
        import dataclasses
        for seed in range(8):
            fused = self._drive(KernelAccum(fused=True), seed)
            ref = self._drive(KernelAccum(fused=False), seed)
            assert dataclasses.asdict(fused) == dataclasses.asdict(ref), seed

    def test_interleaved_stats_reads(self):
        """Reading .stats mid-kernel flushes pending chunks; the carried
        MRU segment across flushes must keep results identical."""
        import dataclasses
        rng = np.random.default_rng(3)
        accs = (KernelAccum(fused=True), KernelAccum(fused=False))
        for step in range(12):
            n = int(rng.integers(1, 80))
            threads = np.sort(rng.integers(0, 1 << 10, n))
            addrs = rng.integers(0, 1 << 18, n).astype(np.int64) & ~3
            for acc in accs:
                acc.mem_op(warp_of(threads), addrs,
                           is_write=bool(step % 3 == 0))
            if step % 4 == 1:
                accs[0].stats       # mid-kernel flush on the fused side
        assert dataclasses.asdict(accs[0].stats) == \
            dataclasses.asdict(accs[1].stats)

    def test_all_gpu_kernels_identical(self):
        import dataclasses
        from repro.datagen.registry import make
        from repro.gpu.device import K40
        from repro.gpu.runner import GPU_KERNELS, UNDIRECTED_KERNELS, \
            csr_to_coo
        spec = make("ldbc", scale=0.02, seed=0)
        for name, cls in sorted(GPU_KERNELS.items()):
            csr = spec.csr()
            if name in UNDIRECTED_KERNELS:
                csr = csr.undirected()
            coo = csr_to_coo(csr)
            _, fused = cls().run(csr, coo, l2_bytes=K40.l2_bytes,
                                 fused=True)
            _, ref = cls().run(csr, coo, l2_bytes=K40.l2_bytes,
                               fused=False)
            assert dataclasses.asdict(fused) == dataclasses.asdict(ref), \
                name
