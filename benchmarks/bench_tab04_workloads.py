"""Tables 1, 2, 4 and Figures 3-4 — taxonomy, selection flow, workload
summary.

Paper: 21 use cases across six categories are summarized into computation
types and data types; workloads are selected by popularity (BFS: 10 use
cases ... TC: 4) and reselected so all computation types are covered.
Measured: the registry reproduces the counts, the distribution, and full
coverage.
"""

from benchmarks.conftest import show
from repro.core.taxonomy import ComputationType
from repro.core.usecases import (
    CATEGORIES,
    category_distribution,
    coverage_check,
    select_workloads,
    workload_usecase_counts,
)
from repro.core.related import TABLE3, coverage_gap
from repro.harness import format_table, paper_note
from repro.workloads import WORKLOAD_TYPES, table4


def test_tab04_workload_selection(benchmark):
    def run_selection_flow():
        counts = workload_usecase_counts()
        selected = select_workloads(min_usecases=4)
        missing = coverage_check(selected, WORKLOAD_TYPES)
        return counts, selected, missing

    counts, selected, missing = benchmark(run_selection_flow)

    rows = [[r.workload, r.category, r.computation_type,
             "yes" if r.gpu else "no", counts.get(r.workload, 0),
             r.algorithm] for r in table4()]
    show(format_table(
        ["workload", "category", "ctype", "gpu", "use_cases", "algorithm"],
        rows, title="Table 4 — GraphBIG workload summary")
        + paper_note("12 CPU + 8 GPU workloads; BFS used by 10 use cases, "
                     "TC by 4; all computation types covered"))
    dist = category_distribution()
    show(format_table(["category", "share", "paper"],
                      [[c, dist[c], CATEGORIES[c]] for c in CATEGORIES],
                      title="Fig. 4(B) — use-case category distribution"))
    show(format_table(
        ["benchmark", "framework", "representation", "ctypes"],
        [[b.name, b.framework, b.data_representation,
          "+".join(ct.value for ct in b.computation_types)]
         for b in TABLE3],
        title="Table 3 — prior benchmarks vs GraphBIG"))
    gaps = coverage_gap()
    assert gaps["GraphBIG"] == set()
    assert all(gaps[b.name] for b in TABLE3[:-1])
    assert counts["BFS"] == 10 and counts["TC"] == 4
    assert missing == set()
    assert selected[0] == "BFS"
    gpu_count = sum(1 for r in table4() if r.gpu)
    assert gpu_count == 8 and len(table4()) == 13
    assert {r.computation_type for r in table4()} == \
        {ct.value for ct in ComputationType}
