"""Tests for the workload registry (Table 4) and workload metadata."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import workloads as W
from repro.core.taxonomy import ComputationType, WorkloadCategory
from repro.core.usecases import coverage_check
from repro.workloads import (
    GPU_WORKLOADS,
    WORKLOAD_TYPES,
    WORKLOADS,
    table4,
)


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(WORKLOADS) == 13

    def test_paper_names_present(self):
        for name in ("BFS", "DFS", "GCons", "GUp", "TMorph", "SPath",
                     "kCore", "CComp", "GColor", "TC", "Gibbs", "DCentr",
                     "BCentr"):
            assert name in WORKLOADS

    def test_eight_gpu_workloads(self):
        assert len(GPU_WORKLOADS) == 8
        assert set(GPU_WORKLOADS) == {"BFS", "SPath", "kCore", "CComp",
                                      "GColor", "TC", "DCentr", "BCentr"}

    def test_all_computation_types_covered(self):
        missing = coverage_check(list(WORKLOADS), WORKLOAD_TYPES)
        assert missing == set()

    def test_type_assignments_match_paper(self):
        assert WORKLOAD_TYPES["BFS"] == ComputationType.COMP_STRUCT
        assert WORKLOAD_TYPES["Gibbs"] == ComputationType.COMP_PROP
        for w in ("GCons", "GUp", "TMorph"):
            assert WORKLOAD_TYPES[w] == ComputationType.COMP_DYN

    def test_categories_match_paper(self):
        assert WORKLOADS["BFS"].CATEGORY == WorkloadCategory.TRAVERSAL
        assert WORKLOADS["GUp"].CATEGORY == WorkloadCategory.UPDATE
        assert WORKLOADS["kCore"].CATEGORY == WorkloadCategory.ANALYTICS
        assert WORKLOADS["DCentr"].CATEGORY == WorkloadCategory.SOCIAL
        assert WORKLOADS["BCentr"].CATEGORY == WorkloadCategory.SOCIAL

    def test_get_and_run(self, tiny_graph):
        wl = W.get("BFS")
        assert wl.NAME == "BFS"
        with pytest.raises(KeyError):
            W.get("PageRank")

    def test_table4_rows(self):
        rows = table4()
        assert len(rows) == 13
        byname = {r.workload: r for r in rows}
        assert byname["TC"].algorithm.startswith("Schank")
        assert byname["kCore"].algorithm.startswith("Matula")
        assert byname["BCentr"].algorithm.startswith("Brandes")
        assert byname["GColor"].algorithm.startswith("Luby")
        assert byname["SPath"].algorithm.startswith("Dijkstra")
        assert byname["CComp"].gpu and not byname["DFS"].gpu


class TestWorkloadRunContract:
    def test_result_fields(self, tiny_graph):
        from repro.core.trace import Tracer
        res = W.run("BFS", tiny_graph, tracer=Tracer(), root=0)
        assert res.name == "BFS"
        assert res.trace is not None
        assert res.footprint_bytes > 0
        assert res.params == {"root": 0}

    def test_no_tracer_no_trace(self, tiny_graph):
        res = W.run("DCentr", tiny_graph)
        assert res.trace is None

    def test_tracer_detached_after_run(self, tiny_graph):
        from repro.core.trace import Tracer
        t = Tracer()
        W.run("DCentr", tiny_graph, tracer=t)
        assert tiny_graph.t is None

    def test_kernel_region_registered(self, tiny_graph):
        from repro.core.trace import Tracer
        t = Tracer()
        W.run("BFS", tiny_graph, tracer=t, root=0)
        names = [r.name for r in t.regions.values()]
        assert "BFS_kernel" in names


@given(st.integers(0, 11))
@settings(max_examples=12, deadline=None)
def test_every_workload_instantiable(i):
    name = sorted(WORKLOADS)[i]
    wl = W.get(name)
    assert wl.NAME == name
    assert wl.CTYPE in ComputationType
