"""Unit tests for TLB, branch predictors, and the ICache model."""

import numpy as np
import pytest

from repro.arch import (
    TLB,
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    ICache,
    TLBConfig,
    code_footprint,
    deep_stack_regions,
    simulate_branches,
)
from repro.arch.cache import CacheConfig
from repro.arch.icache import expand_visits, layout_code
from repro.core import trace as T
from repro.core.memmodel import PAGE_SIZE
from repro.core.trace import Tracer


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB(TLBConfig(entries=8, assoc=8))
        miss = tlb.simulate(np.array([0, 100, PAGE_SIZE - 1, PAGE_SIZE],
                                     dtype=np.uint64))
        assert miss.tolist() == [True, False, False, True]

    def test_capacity_eviction(self):
        tlb = TLB(TLBConfig(entries=4, assoc=4))
        pages = np.arange(8, dtype=np.uint64) * PAGE_SIZE
        tlb.simulate(pages)
        miss2 = tlb.simulate(pages[:1])
        assert miss2[0]     # page 0 evicted by pages 4..7

    def test_stats_and_penalty(self):
        tlb = TLB(TLBConfig(entries=4, assoc=4, walk_latency=30))
        tlb.simulate(np.array([0, 0, PAGE_SIZE], dtype=np.uint64))
        st = tlb.stats()
        assert st.accesses == 3
        assert st.misses == 2
        assert st.walk_cycles == 60
        assert st.penalty_fraction(600) == pytest.approx(0.1)
        assert st.mpki(2000) == pytest.approx(1.0)

    def test_reset(self):
        tlb = TLB(TLBConfig(entries=4, assoc=4))
        tlb.simulate(np.array([0], dtype=np.uint64))
        tlb.reset()
        assert tlb.stats().accesses == 0


class TestBranchPredictors:
    def test_bimodal_learns_bias(self):
        sites = np.full(1000, 7, dtype=np.uint32)
        taken = np.ones(1000, dtype=np.uint8)
        st = BimodalPredictor().simulate(sites, taken)
        assert st.miss_rate < 0.01

    def test_bimodal_random_is_bad(self):
        rng = np.random.default_rng(0)
        sites = np.full(2000, 7, dtype=np.uint32)
        taken = rng.integers(0, 2, 2000).astype(np.uint8)
        st = BimodalPredictor().simulate(sites, taken)
        assert st.miss_rate > 0.3

    def test_gshare_learns_alternation(self):
        sites = np.full(2000, 3, dtype=np.uint32)
        taken = np.tile([1, 0], 1000).astype(np.uint8)
        st = GSharePredictor().simulate(sites, taken)
        # history predictor nails a strict alternation; bimodal cannot
        st_b = BimodalPredictor().simulate(sites, taken)
        assert st.miss_rate < 0.05
        assert st_b.miss_rate > 0.3

    def test_gshare_loop_pattern(self):
        # loop of 4 iterations: T T T N repeated
        sites = np.full(4000, 5, dtype=np.uint32)
        taken = np.tile([1, 1, 1, 0], 1000).astype(np.uint8)
        st = GSharePredictor().simulate(sites, taken)
        assert st.miss_rate < 0.05

    def test_always_taken(self):
        sites = np.zeros(10, dtype=np.uint32)
        taken = np.array([1] * 7 + [0] * 3, dtype=np.uint8)
        st = AlwaysTakenPredictor().simulate(sites, taken)
        assert st.mispredicts == 3

    def test_dispatcher(self):
        st = simulate_branches(np.zeros(4, dtype=np.uint32),
                               np.ones(4, dtype=np.uint8), kind="bimodal")
        assert st.branches == 4
        with pytest.raises(ValueError):
            simulate_branches([], [], kind="oracle")

    def test_empty_stream(self):
        st = simulate_branches(np.array([], dtype=np.uint32),
                               np.array([], dtype=np.uint8))
        assert st.branches == 0
        assert st.miss_rate == 0.0


class TestBranchFastPath:
    """The vectorized clamp-tuple scan (``fast=True``, the default)
    against the sequential predictor classes: exact, not approximate."""

    def _assert_match(self, sites, taken, kind, **kwargs):
        fast = simulate_branches(sites, taken, kind=kind, fast=True,
                                 **kwargs)
        loop = simulate_branches(sites, taken, kind=kind, fast=False,
                                 **kwargs)
        assert fast == loop, (kind, kwargs, fast, loop)

    def test_random_streams(self):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 4000))
            n_sites = int(rng.integers(1, 40))
            sites = rng.integers(0, n_sites, n).astype(np.uint32)
            taken = rng.integers(0, 2, n).astype(np.uint8)
            for kind in ("bimodal", "gshare"):
                self._assert_match(sites, taken, kind)

    def test_biased_and_periodic_patterns(self):
        n = 3000
        sites = np.zeros(n, dtype=np.uint32)
        for taken in (
                np.ones(n, dtype=np.uint8),                  # saturates up
                np.zeros(n, dtype=np.uint8),                 # saturates down
                (np.arange(n) % 2).astype(np.uint8),         # alternation
                (np.arange(n) % 7 != 0).astype(np.uint8)):   # loop exits
            for kind in ("bimodal", "gshare"):
                self._assert_match(sites, taken, kind)

    def test_table_sizes(self):
        rng = np.random.default_rng(10)
        sites = rng.integers(0, 1 << 14, 2000).astype(np.uint32)
        taken = rng.integers(0, 2, 2000).astype(np.uint8)
        for bits in (2, 6, 12):
            self._assert_match(sites, taken, "gshare", table_bits=bits)
            self._assert_match(sites, taken, "bimodal", table_bits=bits)

    def test_single_event(self):
        self._assert_match(np.array([5], np.uint32),
                           np.array([1], np.uint8), "gshare")


def _toy_trace(n_calls=200):
    t = Tracer()
    for _ in range(n_calls):
        t.enter(T.R_FIND_VERTEX)
        t.i(10)
        t.leave()
        t.enter(T.R_NEIGHBORS)
        t.i(10)
        t.leave()
    return t.freeze()


class TestICache:
    def cfg(self, size=8 * 1024):
        return CacheConfig("L1I", size=size, assoc=4, line=64)

    def test_flat_stack_low_misses(self):
        ft = _toy_trace()
        st = ICache(self.cfg()).simulate(ft)
        # all regions fit: only compulsory misses
        assert st.misses <= code_footprint(ft.regions) // 64 + 2
        assert st.mpki(ft.n_instrs) < 5

    def test_deep_stack_increases_misses(self):
        ft = _toy_trace()
        flat = ICache(self.cfg(size=1024)).simulate(ft)
        deep = ICache(self.cfg(size=1024)).simulate(ft, stack_depth=6)
        assert deep.misses > flat.misses

    def test_layout_disjoint(self):
        ft = _toy_trace(2)
        layout = layout_code(ft.regions)
        spans = sorted((base, base + n * 64) for base, n in layout.values())
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_deep_stack_regions(self):
        ft = _toy_trace(1)
        deep = deep_stack_regions(ft.regions, depth=3)
        assert len(deep) == len(ft.regions) * 4
        assert code_footprint(deep) > code_footprint(ft.regions)

    def test_expand_visits_depth_zero_identity(self):
        ft = _toy_trace(1)
        seq, regions = expand_visits(ft.region_seq, ft.regions, 0)
        assert seq is ft.region_seq
        assert regions is ft.regions

    def test_expand_visits_interleaves_wrappers(self):
        ft = _toy_trace(1)
        seq, regions = expand_visits(ft.region_seq, ft.regions, 2)
        assert len(seq) == 3 * len(ft.region_seq)

    def test_empty_trace(self):
        # only the top-level region's compulsory line touches
        st = ICache(self.cfg()).simulate(Tracer().freeze())
        assert st.misses <= 4
