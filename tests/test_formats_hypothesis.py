"""Property-based tests on the format conversions."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.graph import PropertyGraph
from repro.formats import (
    coo_to_csr,
    csr_to_coo,
    from_csr,
    from_edge_arrays,
    to_csr,
)


@st.composite
def edge_set(draw, max_n=24):
    n = draw(st.integers(2, max_n))
    edges = draw(st.sets(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=60))
    return n, sorted(edges)


@given(edge_set())
@settings(max_examples=60, deadline=None)
def test_csr_coo_roundtrip_preserves_edges(data):
    n, edges = data
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    csr = from_edge_arrays(n, src, dst)
    back = coo_to_csr(csr_to_coo(csr))
    got = sorted((int(v), int(d)) for v in range(n)
                 for d in back.neighbors(v))
    assert got == edges


@given(edge_set())
@settings(max_examples=40, deadline=None)
def test_propertygraph_csr_roundtrip(data):
    n, edges = data
    g = PropertyGraph()
    for v in range(n):
        g.add_vertex(v)
    for s, d in edges:
        g.add_edge(s, d)
    csr, ids = to_csr(g)
    g2 = from_csr(csr)
    got = sorted((v, d) for v in g2.vertex_ids()
                 for d in g2.find_vertex(v).out)
    assert got == edges


@given(edge_set())
@settings(max_examples=40, deadline=None)
def test_reverse_is_involution(data):
    n, edges = data
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    csr = from_edge_arrays(n, src, dst)
    twice = csr.reverse().reverse()
    for v in range(n):
        assert sorted(twice.neighbors(v)) == sorted(csr.neighbors(v))


@given(edge_set())
@settings(max_examples=40, deadline=None)
def test_undirected_is_symmetric_superset(data):
    n, edges = data
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    und = from_edge_arrays(n, src, dst).undirected()
    pairs = {(int(v), int(d)) for v in range(n)
             for d in und.neighbors(v)}
    for s, d in edges:
        assert (s, d) in pairs and (d, s) in pairs
    for s, d in pairs:
        assert (d, s) in pairs
