"""In-framework execution time analysis (Fig. 1).

The paper profiles System G workloads and finds 76 % of execution time is
spent inside framework primitives on average, highest for traversal-based
workloads.  Here the tracer's per-region instruction attribution provides
the same split, weighted into time by the cycle model's IPC being roughly
uniform across a run's regions (documented approximation).
"""

from __future__ import annotations

from .runner import Row

PAPER_AVG_FRAMEWORK_FRACTION = 0.76


def framework_fractions(rows: list[Row]) -> dict[str, float]:
    """Per-workload in-framework instruction fraction."""
    out = {}
    for r in rows:
        if r.result is not None and r.result.trace is not None:
            out[r.workload] = r.result.trace.framework_fraction()
    return out


def average_fraction(rows: list[Row]) -> float:
    fr = framework_fractions(rows)
    return sum(fr.values()) / len(fr) if fr else 0.0
