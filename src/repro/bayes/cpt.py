"""Conditional probability tables (CPTs) for Bayesian networks.

A CPT for variable X with parents P1..Pk stores, for every combination of
parent states, a categorical distribution over X's states.  These are the
"complex probability tables" the paper names as an example of rich vertex
properties (Section 2, "Framework"): the Gibbs workload's numeric intensity
comes from reading/normalizing CPT rows.
"""

from __future__ import annotations

import numpy as np


class CPT:
    """CPT as a dense ``(n_parent_combos, arity)`` row-stochastic matrix.

    Parent state combinations are linearized in mixed radix with the *last*
    parent varying fastest (C-order), via :meth:`row_index`.
    """

    __slots__ = ("table", "parent_arities", "arity", "_strides")

    def __init__(self, table: np.ndarray, parent_arities: tuple[int, ...]):
        table = np.ascontiguousarray(table, dtype=np.float64)
        if table.ndim != 2:
            raise ValueError("CPT table must be 2-D")
        expected = int(np.prod(parent_arities)) if parent_arities else 1
        if table.shape[0] != expected:
            raise ValueError(
                f"CPT has {table.shape[0]} rows, parents imply {expected}")
        if np.any(table < 0):
            raise ValueError("CPT entries must be non-negative")
        sums = table.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError("CPT rows must sum to 1")
        self.table = table
        self.parent_arities = tuple(int(a) for a in parent_arities)
        self.arity = table.shape[1]
        strides = []
        acc = 1
        for a in reversed(self.parent_arities):
            strides.append(acc)
            acc *= a
        self._strides = tuple(reversed(strides))

    @property
    def n_params(self) -> int:
        """Number of free-ish parameters (all table entries, as MUNIN's
        80592-parameter count is reported)."""
        return self.table.size

    def row_index(self, parent_states: tuple[int, ...]) -> int:
        """Linear row index of a parent-state combination."""
        if len(parent_states) != len(self.parent_arities):
            raise ValueError("wrong number of parent states")
        idx = 0
        for s, a, st in zip(parent_states, self.parent_arities,
                            self._strides):
            if not 0 <= s < a:
                raise ValueError(f"parent state {s} out of range 0..{a - 1}")
            idx += s * st
        return idx

    def row(self, parent_states: tuple[int, ...]) -> np.ndarray:
        """Distribution over X given parent states (a view)."""
        return self.table[self.row_index(parent_states)]

    def prob(self, x: int, parent_states: tuple[int, ...]) -> float:
        """P(X = x | parents)."""
        return float(self.row(parent_states)[x])


def random_cpt(arity: int, parent_arities: tuple[int, ...],
               rng: np.random.Generator, concentration: float = 1.0) -> CPT:
    """Dirichlet-random CPT (each row an independent Dirichlet draw)."""
    rows = int(np.prod(parent_arities)) if parent_arities else 1
    table = rng.dirichlet(np.full(arity, concentration), size=rows)
    return CPT(table, tuple(parent_arities))


def deterministic_cpt(arity: int, parent_arities: tuple[int, ...],
                      rng: np.random.Generator, noise: float = 0.05) -> CPT:
    """Near-deterministic CPT (one dominant outcome per row), as appears in
    diagnostic networks like MUNIN."""
    rows = int(np.prod(parent_arities)) if parent_arities else 1
    table = np.full((rows, arity), noise / max(arity - 1, 1))
    winners = rng.integers(0, arity, rows)
    table[np.arange(rows), winners] = 1.0 - noise
    if arity == 1:
        table[:] = 1.0
    return CPT(table, tuple(parent_arities))
