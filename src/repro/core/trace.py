"""Execution tracer: the bridge between workloads and the architecture model.

GraphBIG measures hardware events (cache misses, DTLB walks, branch
mispredictions, cycle breakdown) with perf counters while workloads run on
the System G framework.  Here, the framework primitives emit the equivalent
event stream into a :class:`Tracer`:

* **memory accesses** — virtual addresses from :mod:`repro.core.memmodel`,
  consumed by the cache/TLB simulators (:mod:`repro.arch`),
* **retired instruction counts** — charged per primitive with realistic
  per-operation costs, giving the MPKI denominator and the cycle model input,
* **conditional branch outcomes** — consumed by the branch predictor model,
* **code-region transitions** — consumed by the ICache model; framework
  regions vs user regions also give the in-framework time split (Fig. 1).

The tracer is deliberately dumb and append-only; all analysis happens in
:mod:`repro.arch` over the frozen numpy views returned by :meth:`Tracer.freeze`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import TraceError


@dataclass(frozen=True)
class Region:
    """A static code region (≈ one framework primitive or user kernel).

    ``code_bytes`` is the footprint of the region's instructions; the ICache
    model touches ``code_bytes / 64`` lines when execution enters the region.
    GraphBIG's framework has a *flat* hierarchy — few small regions — which
    is why its ICache MPKI is low (paper Section 5.2.1 "Core analysis").
    """

    rid: int
    name: str
    code_bytes: int
    framework: bool


# ---------------------------------------------------------------------------
# Framework region ids.  User regions are registered at runtime from rid 64.
# ---------------------------------------------------------------------------
R_IDLE = 0            # top-level user code outside any primitive
R_FIND_VERTEX = 1
R_ADD_VERTEX = 2
R_DELETE_VERTEX = 3
R_ADD_EDGE = 4
R_FIND_EDGE = 5
R_DELETE_EDGE = 6
R_NEIGHBORS = 7
R_PROP_GET = 8
R_PROP_SET = 9
R_VERTEX_SCAN = 10
R_PAYLOAD = 11
R_BUILD = 12          # bulk build/populate helpers

USER_REGION_BASE = 64

_FRAMEWORK_REGIONS = [
    Region(R_IDLE, "user_top", 256, False),
    Region(R_FIND_VERTEX, "find_vertex", 224, True),
    Region(R_ADD_VERTEX, "add_vertex", 512, True),
    Region(R_DELETE_VERTEX, "delete_vertex", 576, True),
    Region(R_ADD_EDGE, "add_edge", 448, True),
    Region(R_FIND_EDGE, "find_edge", 288, True),
    Region(R_DELETE_EDGE, "delete_edge", 512, True),
    Region(R_NEIGHBORS, "traverse_neighbors", 320, True),
    Region(R_PROP_GET, "property_get", 128, True),
    Region(R_PROP_SET, "property_set", 160, True),
    Region(R_VERTEX_SCAN, "vertex_scan", 192, True),
    Region(R_PAYLOAD, "payload_access", 192, True),
    Region(R_BUILD, "graph_build", 640, True),
]

# ---------------------------------------------------------------------------
# Static branch-site ids (for the branch predictor's per-site history).
# ---------------------------------------------------------------------------
B_EDGE_LOOP = 1        # "more edges?" loop back-branch in traverse_neighbors
B_VERTEX_SCAN = 2      # vertex-scan loop back-branch
B_FIND_HIT = 3         # "found?" test in find_vertex / find_edge
B_DELETE_MATCH = 4     # "is this the edge to unlink?" in delete_edge
B_DUP_CHECK = 5        # "does this edge already exist?" in add_edge
USER_BRANCH_BASE = 64


@dataclass
class FrozenTrace:
    """Immutable numpy view of a finished trace (input to the arch model)."""

    addrs: np.ndarray       # uint64 byte addresses, program order
    rw: np.ndarray          # uint8: 0 = load, 1 = store
    iat: np.ndarray         # uint64 instruction index at each access
    acc_region: np.ndarray  # uint32 region id active at each access
    branch_sites: np.ndarray  # uint32 static site ids, program order
    branch_taken: np.ndarray  # uint8 outcomes
    region_seq: np.ndarray    # uint32 region ids, in visit order
    region_instrs: np.ndarray  # uint64 instructions retired per visit
    regions: dict[int, Region]
    n_instrs: int
    fw_instrs: int
    fw_accesses: int
    n_accesses: int

    @property
    def n_branches(self) -> int:
        return len(self.branch_sites)

    @property
    def user_instrs(self) -> int:
        return self.n_instrs - self.fw_instrs

    def framework_fraction(self) -> float:
        """Fraction of retired instructions spent inside framework
        primitives — the proxy for the paper's in-framework execution time
        (Fig. 1, avg ≈ 76 %)."""
        if self.n_instrs == 0:
            return 0.0
        return self.fw_instrs / self.n_instrs


class Tracer:
    """Append-only event recorder attached to a :class:`PropertyGraph`.

    Hot-path methods are single-letter (:meth:`r`, :meth:`w`, :meth:`i`,
    :meth:`br`) because they are called per memory access / branch; the
    descriptive aliases (``read``/``write``/...) delegate to them.
    """

    def __init__(self):
        self._addrs: list[int] = []
        self._rw: list[int] = []
        self._iat: list[int] = []
        self._acc_region: list[int] = []
        self._bsites: list[int] = []
        self._btaken: list[int] = []
        self._rseq: list[int] = [R_IDLE]
        self._rcnt: list[int] = [0]
        self._rstack: list[int] = [R_IDLE]
        self.regions: dict[int, Region] = {r.rid: r for r in _FRAMEWORK_REGIONS}
        self._next_user_rid = USER_REGION_BASE
        self._next_user_bsite = USER_BRANCH_BASE
        self.n = 0              # retired instruction counter
        self.fw_instrs = 0
        self.fw_accesses = 0
        self._cur_rid = R_IDLE
        self._cur_fw = False    # region R_IDLE is user code

    # -- region management --------------------------------------------------
    def register_region(self, name: str, code_bytes: int = 256,
                        framework: bool = False) -> int:
        """Register a user code region (a workload kernel); returns its id."""
        rid = self._next_user_rid
        self._next_user_rid += 1
        self.regions[rid] = Region(rid, name, code_bytes, framework)
        return rid

    def register_branch_site(self) -> int:
        """Reserve a static branch-site id for a user (workload) branch."""
        site = self._next_user_bsite
        self._next_user_bsite += 1
        return site

    def enter(self, rid: int) -> None:
        """Enter a code region (primitive call / kernel start)."""
        self._rstack.append(rid)
        self._rseq.append(rid)
        self._rcnt.append(0)
        self._cur_rid = rid
        self._cur_fw = self.regions[rid].framework

    def leave(self) -> None:
        """Leave the current region, resuming its caller."""
        if len(self._rstack) <= 1:
            raise TraceError("unbalanced Tracer.leave()")
        self._rstack.pop()
        rid = self._rstack[-1]
        self._rseq.append(rid)
        self._rcnt.append(0)
        self._cur_rid = rid
        self._cur_fw = self.regions[rid].framework

    # -- hot-path event recording -------------------------------------------
    def r(self, addr: int) -> None:
        """Record a load of ``addr``."""
        self._addrs.append(addr)
        self._rw.append(0)
        self._iat.append(self.n)
        self._acc_region.append(self._cur_rid)
        if self._cur_fw:
            self.fw_accesses += 1

    def w(self, addr: int) -> None:
        """Record a store to ``addr``."""
        self._addrs.append(addr)
        self._rw.append(1)
        self._iat.append(self.n)
        self._acc_region.append(self._cur_rid)
        if self._cur_fw:
            self.fw_accesses += 1

    def i(self, count: int) -> None:
        """Charge ``count`` retired instructions to the current region."""
        self.n += count
        self._rcnt[-1] += count
        if self._cur_fw:
            self.fw_instrs += count

    def br(self, site: int, taken: bool) -> None:
        """Record a conditional branch outcome at static ``site``."""
        self._bsites.append(site)
        self._btaken.append(1 if taken else 0)

    # descriptive aliases
    read = r
    write = w
    instr = i
    branch = br

    # -- bulk recording (vectorized producers, e.g. format converters) ------
    def bulk_reads(self, addrs, instrs_per_access: int = 2) -> None:
        """Record a batch of loads at ``addrs`` (iterable of ints),
        charging ``instrs_per_access`` instructions around each."""
        for a in addrs:
            self.i(instrs_per_access)
            self.r(a)

    def bulk_writes(self, addrs, instrs_per_access: int = 2) -> None:
        """Record a batch of stores (see :meth:`bulk_reads`)."""
        for a in addrs:
            self.i(instrs_per_access)
            self.w(a)

    # -- finishing -----------------------------------------------------------
    @property
    def n_accesses(self) -> int:
        return len(self._addrs)

    def freeze(self) -> FrozenTrace:
        """Convert the accumulated events into a :class:`FrozenTrace`."""
        return FrozenTrace(
            addrs=np.asarray(self._addrs, dtype=np.uint64),
            rw=np.asarray(self._rw, dtype=np.uint8),
            iat=np.asarray(self._iat, dtype=np.uint64),
            acc_region=np.asarray(self._acc_region, dtype=np.uint32),
            branch_sites=np.asarray(self._bsites, dtype=np.uint32),
            branch_taken=np.asarray(self._btaken, dtype=np.uint8),
            region_seq=np.asarray(self._rseq, dtype=np.uint32),
            region_instrs=np.asarray(self._rcnt, dtype=np.uint64),
            regions=dict(self.regions),
            n_instrs=self.n,
            fw_instrs=self.fw_instrs,
            fw_accesses=self.fw_accesses,
            n_accesses=len(self._addrs),
        )

    def reset(self) -> None:
        """Drop all recorded events (keeps registered regions/sites)."""
        self._addrs.clear()
        self._rw.clear()
        self._iat.clear()
        self._acc_region.clear()
        self._bsites.clear()
        self._btaken.clear()
        self._rseq = [R_IDLE]
        self._rcnt = [0]
        self._rstack = [R_IDLE]
        self.n = 0
        self.fw_instrs = 0
        self.fw_accesses = 0
        self._cur_rid = R_IDLE
        self._cur_fw = False
