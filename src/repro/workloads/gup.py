"""GUp — graph update (CompDyn).

"Deletes a given list of vertices and related edges from an existing
graph" (Section 4.2).  Deletions hit vertices in random order, unlinking
edge nodes scattered across the aged heap — high write intensity with poor
locality, the opposite end of CompDyn from GCons (Fig. 7 discussion:
"GUp mostly deletes them in a random manner").
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from .base import Workload


class GUp(Workload):
    """Delete ``victims`` (or a random ``fraction`` of vertices drawn with
    ``seed``) from ``g``, including all incident edges."""

    NAME = "GUp"
    CTYPE = ComputationType.COMP_DYN
    CATEGORY = WorkloadCategory.UPDATE
    HAS_GPU = False

    def kernel(self, g: PropertyGraph, t, *,
               victims: list[int] | None = None,
               fraction: float = 0.1, seed: int = 0,
               **_: Any) -> dict[str, Any]:
        if victims is None:
            if not 0.0 < fraction <= 1.0:
                raise ValueError("fraction must be in (0, 1]")
            rng = np.random.default_rng(seed)
            ids = np.asarray(sorted(g.vertex_ids()))
            k = max(1, int(len(ids) * fraction))
            victims = rng.choice(ids, size=k, replace=False).tolist()
        edges_before = g.num_edges
        deleted = 0
        for vid in victims:
            t.i(4)
            if g.has_vertex(int(vid)):
                g.delete_vertex(int(vid))
                deleted += 1
        return {"deleted_vertices": deleted,
                "deleted_edges": edges_before - g.num_edges,
                "remaining_vertices": g.num_vertices}
