"""Distributed execution: subplan partitioning + scatter-gather merge.

The router fans a query out as ``N`` part-requests — the same DSL text
plus ``part=[i, N]`` — and each shard answers with a *partial* table
(its vertex partition's rows, with the first aggregate applied in its
partial form).  :func:`merge_partials` reassembles the exact single-node
answer:

* ``count``  — partial counts sum;
* ``topk``   — local top-k lists union, then the final top-k re-ranks
  (value descending, id ascending): a global winner is a winner in its
  own partition, so the union always contains the true top-k;
* ``sample`` — the bottom-k-by-splitmix64-hash union re-ranks by the
  same hash, recomputed from the ids alone;
* ``limit``  — partials ship their first ``k`` id-ascending rows; the
  merged, id-sorted union's first ``k`` equal the single-node answer;
* component labels pass through a union-find relabel that is the
  identity on canonical (min-id) labels but repairs any partial that
  labeled a component by a non-minimal member.

Partials may overlap when a failed part was reassigned to a surviving
shard and the original answer arrived late — merge dedupes by vertex
id, so reassignment is idempotent.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import QueryError
from .exec import MAX_RESULT_ROWS, apply_table_op, run_table_phase
from .plan import PhysicalPlan


def partition_params(params: dict[str, Any], index: int,
                     n_parts: int) -> dict[str, Any]:
    """The shard-side params for partition ``index`` of ``n_parts``."""
    if not (0 <= index < n_parts):
        raise QueryError(f"partition {index} outside [0, {n_parts})")
    out = dict(params)
    out["part"] = [index, n_parts]
    return out


def relabel_components(table: dict[str, Any]) -> dict[str, Any]:
    """Canonicalize ``comp`` labels across merged partials.

    Union-find over ``(id, comp)`` pairs with min-root union: every
    union class maps to its smallest member.  On canonical input (labels
    already the component-wide min id) this is the identity — the label
    is <= every visible id of its component — so single-node equivalence
    is preserved; on drifted input it restores one label per component.
    """
    try:
        ci = table["columns"].index("comp")
    except ValueError:
        return table
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:        # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        lo, hi = (ra, rb) if ra < rb else (rb, ra)
        parent[hi] = lo

    for row in table["rows"]:
        union(row[0], row[ci])
    rows = []
    for row in table["rows"]:
        new = list(row)
        new[ci] = find(row[ci])
        rows.append(new)
    return {"columns": table["columns"], "rows": rows}


def merge_partials(plan: PhysicalPlan,
                   partials: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-shard partial tables into the final answer.

    Raises :class:`~repro.core.errors.QueryError` on structurally
    inconsistent partials (mismatched columns, nothing to merge) — that
    is a coordination bug surfaced typed, never a silent wrong answer.
    """
    partials = [p for p in partials if p]
    if not partials:
        raise QueryError("no partial results to merge")
    first_op = plan.table_ops[0] if plan.table_ops else None

    if first_op is not None and first_op["kind"] == "count":
        total = 0
        for p in partials:
            try:
                total += int(p["rows"][0][0])
            except (KeyError, IndexError, TypeError, ValueError):
                raise QueryError(
                    f"malformed partial count {p!r}") from None
        return {"columns": ["count"], "rows": [[total]]}

    columns = partials[0].get("columns")
    if not columns:
        raise QueryError(f"malformed partial table {partials[0]!r}")
    for p in partials[1:]:
        if p.get("columns") != columns:
            raise QueryError(
                f"shards returned mismatched columns: {columns} vs "
                f"{p.get('columns')}")

    # concat, dedupe by vertex id (reassignment overlap), restore the
    # global id-ascending materialization order
    seen: set[int] = set()
    rows: list[list[Any]] = []
    merged = sorted((r for p in partials for r in p["rows"]),
                    key=lambda r: r[0])
    for r in merged:
        if r[0] in seen:
            continue
        seen.add(r[0])
        rows.append(r)
    table = {"columns": columns, "rows": rows}
    if "comp" in columns:
        table = relabel_components(table)
    if first_op is not None:
        table = apply_table_op(table, first_op)        # final form
        table = run_table_phase(table, plan.table_ops[1:])
    if len(table["rows"]) > MAX_RESULT_ROWS:
        raise QueryError(
            f"merged result of {len(table['rows'])} rows exceeds "
            f"{MAX_RESULT_ROWS}; add a topk/limit/sample/count stage")
    return table
