"""The cluster front door: one socket, N shards behind it.

The router speaks the exact JSON-lines protocol the single-node service
does — a :class:`~repro.service.client.ServiceClient` pointed at a
router cannot tell it is talking to a cluster — and translates each op
into shard traffic:

* **single-dataset ops** (``run``/``characterize``) hash the dataset key
  onto the ring, walk the replica chain healthy-first, and fail over to
  the next replica on any *transport* failure (refused/reset/EOF/
  timeout/garbage).  Typed errors a shard answers with are forwarded,
  never retried — a bad request is bad on every replica.
* **scatter-gather ops** (``datasets``/``stats``/``shard_info``/
  ``batch``) fan out to every healthy shard concurrently under a
  per-shard timeout and aggregate what arrives; a missing shard makes
  the result *partial*, not an error.
* **local ops** (``ping``/``health``) answer from the router's own
  state — health is the tracker's live shard map.

On top of the failover walk sits the request-reliability layer
(:class:`ReliabilityConfig`), on by default:

* **deadline propagation** — a request's absolute wire deadline derives
  every per-attempt timeout (the remaining budget split across the
  replicas still untried), is copied onto downstream shard frames, and
  sheds the request with a typed
  :class:`~repro.core.errors.DeadlineExceeded` the moment the budget is
  spent;
* **per-shard circuit breakers** with half-open probing
  (:class:`~repro.cluster.replica.CircuitBreaker`) refuse to dial a
  shard whose recent transport history says the dial would only burn
  the deadline;
* **budgeted retries** — a token-bucket
  :class:`~repro.cluster.replica.RetryBudget` caps cluster-wide retry
  amplification (failover and hedges both spend from it), so a brownout
  cannot snowball into a retry storm;
* **hedged requests** — for idempotent single-dataset reads, once the
  first attempt has been in flight past the observed latency quantile
  (``hedge_quantile``), a second attempt fires at the next replica and
  the first answer wins;
* **degraded serving** — when every replica is unreachable, breaker-
  blocked, budget-blocked, or the deadline is spent, the router's
  last-good response cache serves the most recent answer for the same
  request, marked ``degraded: true`` with its staleness age, under a
  hard staleness cap.

Failed shards are ejected by the :class:`~repro.cluster.replica.
ReplicaTracker` after consecutive transport failures and readmitted by a
background health-probe loop whose pacing is the resilience layer's
deterministic :class:`~repro.resilience.retry.RetryPolicy` backoff.

Observability: ``cluster_route_total{shard,outcome}`` counts every
shard exchange (ok / failover / hedge / error / unreachable / skipped),
``cluster_breaker_transitions_total{shard,state}`` counts breaker flips,
``cluster_hedges_total{outcome}`` counts hedge launches and wins,
``cluster_deadline_shed_total{stage}`` counts router-side sheds,
``cluster_degraded_total{reason}`` counts stale serves by trigger kind,
``cluster_fanout_latency_ms{op}`` times scatter-gather fans,
``router_request_latency_ms{op}`` times the front door, and each request
runs under a ``route:<op>`` span when a tracer is attached.

Duck-compatible with :class:`~repro.service.server.ServiceThread`
(``start``/``serve_forever``/``stop``/``host``/``port``), so the same
threaded harness hosts a router or a service.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Sequence

from .. import __version__
from ..core.errors import (
    BadRequest,
    CircuitOpen,
    DeadlineExceeded,
    ProtocolError,
    RetryBudgetExhausted,
    ShardUnavailable,
)
from ..obs.logs import get_logger
from ..obs.metrics import MetricsRegistry, percentile
from ..obs.tracing import SpanTracer, maybe_span
from ..query import merge_partials, parse as parse_query, source_info, \
    unparse
from ..query.engine import plan_digest
from ..query.plan import plan_pipeline
from ..resilience.retry import RetryPolicy
from ..service.cache import LRUCache
from ..service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WRITE_OPS,
    Request,
    decode_frame,
    encode_error,
    encode_request,
    encode_response,
    parse_request,
    payload_to_error,
)
from .replica import (
    BREAKER_OPEN,
    DEFAULT_EJECT_AFTER,
    CircuitBreaker,
    ReplicaTracker,
    RetryBudget,
)
from .ring import DEFAULT_VNODES, HashRing

log = get_logger("cluster.router")

#: Default TCP port for the cluster router (the single-node service
#: listens on 7421; keeping them distinct lets both run side by side).
ROUTER_PORT = 7430

#: Hard cap on one ``batch`` op's entry list.
MAX_BATCH_ENTRIES = 128

#: Floor on any deadline-derived attempt timeout: below this a dial
#: cannot realistically complete, so the budget math never starves an
#: attempt into instant failure.
MIN_ATTEMPT_TIMEOUT_S = 0.05

#: Slice of the remaining budget the router keeps for itself when
#: splitting it across attempts.  Without it, a walk that exhausts every
#: replica spends the *entire* deadline dialing and the degraded (stale)
#: answer loses the race with the client's own timer — the headroom is
#: what makes "serve stale at deadline" observable rather than
#: theoretical.
DEADLINE_HEADROOM_S = 0.05

#: Transport-level failures that trigger replica failover.  Typed error
#: *frames* a shard answers with are not in this set — they forwarded,
#: not retried.
_TRANSPORT_ERRORS = (OSError, asyncio.TimeoutError, ProtocolError)


def _failure_reason(exc: BaseException) -> str:
    """Stable label for a transport failure (metrics/log cardinality:
    a handful of values, never the exception text)."""
    if isinstance(exc, asyncio.TimeoutError):
        return "timeout"
    if isinstance(exc, ConnectionRefusedError):
        return "refused"
    if isinstance(exc, ConnectionResetError):
        return "reset"
    if isinstance(exc, ProtocolError):
        return "protocol"
    return "transport"


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs for the router's request-reliability layer.

    ``enabled=False`` reverts the router to the plain failover walk with
    fixed timeouts — the with/without contrast the chaos-availability
    benchmark measures.
    """

    enabled: bool = True
    # circuit breakers
    breaker_failure_threshold: int = 3
    breaker_reset_timeout_s: float = 1.0
    breaker_backoff_factor: float = 2.0
    breaker_max_reset_timeout_s: float = 30.0
    # retry budget (failover + hedges)
    retry_budget_ratio: float = 0.1
    retry_budget_max_tokens: float = 10.0
    # hedging: fire a second replica attempt once the first has been in
    # flight past this observed-latency quantile (None disables)
    hedge_quantile: float | None = None
    hedge_min_delay_s: float = 0.01
    hedge_min_samples: int = 20
    # degraded serving: last-good response cache
    serve_stale: bool = True
    stale_capacity: int = 512
    stale_cap_s: float = 60.0

    def __post_init__(self):
        if self.hedge_quantile is not None \
                and not 0 < self.hedge_quantile <= 100:
            raise ValueError("hedge_quantile must be in (0, 100]")
        if self.stale_cap_s <= 0:
            raise ValueError("stale_cap_s must be positive")

    @classmethod
    def disabled(cls) -> "ReliabilityConfig":
        return cls(enabled=False, serve_stale=False)


@dataclass(frozen=True)
class ShardAddress:
    """Where one shard listens."""

    name: str
    host: str
    port: int


class _ShardLink:
    """A small pool of persistent connections to one shard.

    Checkout pops an idle connection or dials a fresh one; check-in
    returns it unless the pool is full.  Any failure closes the
    connection — a poisoned stream never goes back in the pool.
    """

    def __init__(self, addr: ShardAddress, limit: int = 4):
        self.addr = addr
        self.limit = limit
        self._idle: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []
        self._seq = 0

    async def _checkout(self):
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing():
                writer.close()
                continue
            return reader, writer
        return await asyncio.open_connection(
            self.addr.host, self.addr.port, limit=MAX_FRAME_BYTES)

    def _checkin(self, reader, writer) -> None:
        if len(self._idle) < self.limit and not writer.is_closing():
            self._idle.append((reader, writer))
        else:
            writer.close()

    async def call(self, op: str, params: dict[str, Any],
                   deadline: float | None = None,
                   tenant: str | None = None) -> dict:
        """One request/response exchange; returns the decoded frame.

        The wire deadline and tenant (if any) propagate onto the
        downstream frame so the shard's scheduler can shed expired work
        and charge the right quota.  Raises
        ``OSError``/``ProtocolError`` on transport trouble — the
        router's failover boundary.
        """
        reader, writer = await self._checkout()
        try:
            self._seq += 1
            writer.write(encode_request(op, f"{self.addr.name}-{self._seq}",
                                        params, deadline=deadline,
                                        tenant=tenant))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ProtocolError(
                    f"shard {self.addr.name} closed the connection")
            if not line.endswith(b"\n"):
                raise ProtocolError(
                    f"truncated frame from shard {self.addr.name}")
            frame = decode_frame(line)
        except BaseException:
            writer.close()
            raise
        self._checkin(reader, writer)
        return frame

    def close(self) -> None:
        for _, writer in self._idle:
            writer.close()
        self._idle.clear()


class Router:
    """Hash-ring router over a static shard topology."""

    def __init__(self, shards: Sequence[ShardAddress], *,
                 replication: int = 1, vnodes: int = DEFAULT_VNODES,
                 attempt_timeout_s: float = 60.0,
                 fanout_timeout_s: float = 30.0,
                 eject_after: int = DEFAULT_EJECT_AFTER,
                 probe_interval_s: float = 0.5,
                 failover_policy: RetryPolicy | None = None,
                 reliability: ReliabilityConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer: SpanTracer | None = None,
                 pool_per_shard: int = 8):
        if not shards:
            raise ValueError("router needs at least one shard")
        names = [s.name for s in shards]
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        self.shards = {s.name: s for s in shards}
        self.ring = HashRing(names, vnodes=vnodes)
        self.replication = min(max(replication, 1), len(names))
        self.attempt_timeout_s = attempt_timeout_s
        self.fanout_timeout_s = fanout_timeout_s
        self.probe_interval_s = probe_interval_s
        # backoff between replica attempts: tiny, deterministic — a
        # failover should be fast, but two routers hammering the same
        # wounded shard should not do it in lockstep
        self.failover_policy = failover_policy or RetryPolicy(
            max_retries=0, base_delay=0.01, factor=2.0, max_delay=0.25)
        self.tracker = ReplicaTracker(names, eject_after=eject_after)
        self.tracer = tracer
        self.pool_per_shard = pool_per_shard
        self._links = {name: _ShardLink(self.shards[name],
                                        limit=pool_per_shard)
                       for name in names}
        # -- live-rebalance state (mutated by the migration driver) ----------
        # per-key keyed-read counts: the hotspot detector's attribution
        # signal, and the rotation counter that spreads promoted reads
        self.key_route_counts: dict[str, int] = {}
        # key -> extra read-replica shard names beyond the ring owners
        self._extra_replicas: dict[str, tuple[str, ...]] = {}
        # keys whose writes are held while their state is being copied
        self._paused_writes: set[str] = set()
        # hard cap on how long one write waits on a pause — a wedged
        # migration degrades to normal routing, never a hung client
        self.pause_max_s = 10.0
        self.connections = 0
        self.op_counts: dict[str, int] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._probe_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None

        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self._m_route = reg.counter(
            "cluster_route_total",
            "shard exchanges by outcome (ok/failover/hedge/error/"
            "unreachable/skipped)",
            labels=("shard", "outcome"))
        self._m_fan = reg.histogram(
            "cluster_fanout_latency_ms",
            "scatter-gather fan-out wall time (ms), by op",
            labels=("op",))
        self._m_lat = reg.histogram(
            "router_request_latency_ms",
            "router front-door latency (ms), by op", labels=("op",))
        self._m_err = reg.counter(
            "router_errors_total",
            "error responses, by op and taxonomy kind",
            labels=("op", "kind"))
        reg.gauge("cluster_shards_healthy",
                  "shards the tracker currently considers up",
                  callback=lambda: float(len(self.tracker.healthy_shards())))
        reg.gauge("cluster_shards_total", "shards in the topology",
                  callback=lambda: float(len(self.shards)))
        self.tracker.bind_metrics(reg)

        # -- reliability layer ------------------------------------------------
        self.reliability = reliability if reliability is not None \
            else ReliabilityConfig()
        rel = self.reliability
        self._m_breaker = reg.counter(
            "cluster_breaker_transitions_total",
            "circuit-breaker state entries, by shard and new state",
            labels=("shard", "state"))
        self._m_hedge = reg.counter(
            "cluster_hedges_total",
            "hedged second attempts (launched/won/lost)",
            labels=("outcome",))
        self._m_shed = reg.counter(
            "cluster_deadline_shed_total",
            "requests shed for a spent deadline, by stage",
            labels=("stage",))
        self._m_degraded = reg.counter(
            "cluster_degraded_total",
            "degraded (stale) responses served, by triggering kind",
            labels=("reason",))
        self.breakers: dict[str, CircuitBreaker] = {}
        self.retry_budget: RetryBudget | None = None
        self._stale: LRUCache | None = None
        if rel.enabled:
            self.breakers = {
                name: CircuitBreaker(
                    name,
                    failure_threshold=rel.breaker_failure_threshold,
                    reset_timeout_s=rel.breaker_reset_timeout_s,
                    backoff_factor=rel.breaker_backoff_factor,
                    max_reset_timeout_s=rel.breaker_max_reset_timeout_s,
                    on_transition=self._on_breaker_transition)
                for name in names}
            self.retry_budget = RetryBudget(
                ratio=rel.retry_budget_ratio,
                max_tokens=rel.retry_budget_max_tokens)
            reg.gauge(
                "cluster_breakers_open",
                "shards currently behind an open circuit breaker",
                callback=lambda: float(sum(
                    1 for b in self.breakers.values()
                    if b.state == BREAKER_OPEN)))
            reg.gauge(
                "cluster_retry_budget_tokens",
                "retry-budget tokens currently available",
                callback=lambda: float(self.retry_budget.tokens))
        if rel.enabled and rel.serve_stale:
            self._stale = LRUCache(rel.stale_capacity)
        # router-side plan cache for static-source DSL queries (version
        # 0 — a generated graph never changes under a fixed seed);
        # dynamic queries route to their owner, whose engine holds the
        # version-keyed cache
        self._plan_cache = LRUCache(128)
        # rolling successful-attempt latencies (seconds) feeding the
        # hedge-delay quantile
        self._lat_samples: list[float] = []
        self._lat_cursor = 0

    # -- reliability callbacks -----------------------------------------------

    def _on_breaker_transition(self, name: str, old: str,
                               new: str) -> None:
        self._m_breaker.labels(shard=name, state=new).inc()
        level = log.warning if new == BREAKER_OPEN else log.info
        level("breaker for shard %s: %s -> %s", name, old, new,
              extra={"shard": name, "old": old, "new": new})

    def _note_latency(self, elapsed_s: float) -> None:
        """Feed the hedge-delay reservoir (bounded ring, newest wins)."""
        if len(self._lat_samples) < 512:
            self._lat_samples.append(elapsed_s)
        else:
            self._lat_samples[self._lat_cursor] = elapsed_s
            self._lat_cursor = (self._lat_cursor + 1) % 512

    def hedge_delay(self) -> float | None:
        """Seconds to wait before hedging, from the observed latency
        quantile; None until enough samples exist (or hedging is off)."""
        rel = self.reliability
        if not rel.enabled or rel.hedge_quantile is None:
            return None
        if len(self._lat_samples) < rel.hedge_min_samples:
            return None
        delay = percentile(sorted(self._lat_samples), rel.hedge_quantile)
        return max(rel.hedge_min_delay_s, delay)

    # -- lifecycle (ServiceThread-compatible) --------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_FRAME_BYTES)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop())
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        for link in self._links.values():
            link.close()

    # -- background health probing -------------------------------------------

    async def _probe_loop(self) -> None:
        """Readmission path: periodically ``health``-probe down shards.

        Healthy shards are validated by live traffic; only ejected ones
        cost probes, and each shard's probe cadence follows the
        deterministic retry-backoff schedule.
        """
        try:
            while True:
                await asyncio.sleep(self.probe_interval_s)
                for name in self.tracker.down_shards():
                    self.tracker.record_probe(name)
                    try:
                        frame = await asyncio.wait_for(
                            self._links[name].call("health", {}),
                            self.fanout_timeout_s)
                    except _TRANSPORT_ERRORS:
                        await asyncio.sleep(
                            min(self.tracker.probe_delay(name), 1.0))
                        continue
                    if frame.get("ok") and (frame.get("result") or {}) \
                            .get("ok"):
                        self.tracker.record_success(name, reason="probe")
                        breaker = self.breakers.get(name)
                        if breaker is not None:
                            breaker.record_success()
        except asyncio.CancelledError:
            raise
    # -- live topology (rebalance support) ------------------------------------

    def add_shard(self, addr: ShardAddress) -> None:
        """Join a shard to the live topology: link pool, tracker entry,
        breaker.  The new shard serves nothing until a ring naming it is
        installed — joining is the prerequisite, not the cutover.

        Called from the migration driver's thread; each step is one
        dict/attribute assignment, so in-flight dispatches see either
        the old or the new membership, never a torn state.
        """
        if addr.name in self.shards:
            return
        self._links[addr.name] = _ShardLink(addr,
                                            limit=self.pool_per_shard)
        self.tracker.add_shard(addr.name)
        rel = self.reliability
        if rel.enabled:
            self.breakers[addr.name] = CircuitBreaker(
                addr.name,
                failure_threshold=rel.breaker_failure_threshold,
                reset_timeout_s=rel.breaker_reset_timeout_s,
                backoff_factor=rel.breaker_backoff_factor,
                max_reset_timeout_s=rel.breaker_max_reset_timeout_s,
                on_transition=self._on_breaker_transition)
        self.shards[addr.name] = addr
        log.info("shard %s joined the topology (%d shards)", addr.name,
                 len(self.shards), extra={"shard": addr.name})

    def install_ring(self, ring: HashRing) -> None:
        """Atomically swap the ownership ring — the rebalance cutover.

        One attribute assignment: every dispatch after it routes on the
        new ownership, every dispatch before it routed on the old.  All
        shards the new ring names must already have joined via
        :meth:`add_shard`.
        """
        missing = sorted(set(ring.nodes) - set(self.shards))
        if missing:
            raise ValueError(f"ring names unjoined shard(s): "
                             f"{', '.join(missing)}")
        self.ring = ring
        log.info("installed new ring over %d shards", len(ring.nodes))

    def pause_writes(self, keys) -> None:
        """Hold writes for ``keys`` (the copy phase of a migration);
        paused writes wait rather than fail, up to ``pause_max_s``."""
        self._paused_writes.update(keys)

    def resume_writes(self, keys) -> None:
        self._paused_writes.difference_update(keys)

    def promote_replicas(self, key: str, shards: Sequence[str]) -> None:
        """Serve ``key``'s keyed reads from extra replicas beyond the
        ring owners (hot-shard relief); reads rotate across the widened
        chain and writes fan to the extras so they stay fresh."""
        self._extra_replicas[key] = tuple(shards)

    def demote_replicas(self, key: str) -> None:
        self._extra_replicas.pop(key, None)

    # -- shard exchanges -----------------------------------------------------

    async def _call(self, name: str, op: str,
                    params: dict[str, Any],
                    timeout_s: float | None = None,
                    deadline: float | None = None,
                    tenant: str | None = None) -> dict:
        frame = await asyncio.wait_for(
            self._links[name].call(op, params, deadline=deadline,
                                   tenant=tenant),
            timeout_s or self.attempt_timeout_s)
        return frame

    # -- single-key routing with the reliability walk ------------------------

    def _note_success(self, shard: str) -> None:
        self.tracker.record_success(shard)
        breaker = self.breakers.get(shard)
        if breaker is not None:
            breaker.record_success()

    def _note_transport_failure(self, shard: str, key: str,
                                exc: BaseException) -> None:
        reason = _failure_reason(exc)
        self.tracker.record_failure(shard, reason=reason)
        breaker = self.breakers.get(shard)
        if breaker is not None:
            breaker.record_failure()
        self._m_route.labels(shard=shard, outcome="unreachable").inc()
        log.warning("shard %s unreachable for %s: %s", shard, key,
                    str(exc) or reason,
                    extra={"shard": shard, "key": key, "reason": reason})

    def _attempt_timeout(self, remaining: float | None,
                         candidates_left: int) -> float:
        """Per-attempt timeout: the remaining deadline budget (minus the
        router's response headroom) split across the replicas still
        untried, never above the configured ceiling and never below the
        dial floor."""
        if remaining is None:
            return self.attempt_timeout_s
        share = max(0.0, remaining - DEADLINE_HEADROOM_S) \
            / max(1, candidates_left)
        return max(MIN_ATTEMPT_TIMEOUT_S,
                   min(self.attempt_timeout_s, share))

    def _remaining(self, req: Request) -> float | None:
        """Deadline budget left, or None when reliability is off (the
        legacy router ignored deadlines entirely)."""
        if not self.reliability.enabled:
            return None
        return req.remaining()

    def _shed(self, key: str, span_args: dict,
              overshoot: float) -> None:
        self._m_shed.labels(stage="router").inc()
        span_args["outcome"] = "deadline"
        log.warning("shed %s at router (%.1fms past deadline)", key,
                    overshoot * 1e3, extra={"key": key})
        raise DeadlineExceeded("router", overshoot, 0.0)

    def _finish_frame(self, req: Request, key: str, shard: str,
                      frame: dict, outcome: str, span_args: dict) -> Any:
        """Common tail for an answered attempt: bookkeeping + unwrap."""
        self._note_success(shard)
        if frame.get("ok"):
            self._m_route.labels(shard=shard, outcome=outcome).inc()
            span_args["shard"] = shard
            span_args["outcome"] = outcome
            result = frame.get("result")
            if isinstance(result, dict):
                result.setdefault("shard", shard)
            return result
        self._m_route.labels(shard=shard, outcome="error").inc()
        span_args["shard"] = shard
        span_args["outcome"] = "error"
        error = frame.get("error")
        if not isinstance(error, dict):
            raise ProtocolError(f"malformed failure frame from "
                                f"{shard}: {frame!r}")
        # every forwarded typed error names its originating shard (a
        # shard that already stamped itself — e.g. WrongShard — wins)
        error.setdefault("shard", shard)
        raise payload_to_error(error)

    async def _route_single(self, req: Request, key: str,
                            replicas: Sequence[str],
                            span_args: dict) -> Any:
        """Walk a replica chain for one request.

        Transport failures fail over (budgeted), typed shard errors
        forward, open breakers skip, a spent deadline sheds, and an
        idle-past-the-quantile first attempt hedges.
        """
        order = self.tracker.order(replicas)
        span_args["replicas"] = list(order)
        if self.retry_budget is not None:
            self.retry_budget.on_request()
        pending = list(order)
        tried: list[str] = []
        dialed_any = False
        while pending:
            remaining = self._remaining(req)
            if remaining is not None and remaining <= 0:
                self._shed(key, span_args, -remaining)
            shard = pending.pop(0)
            breaker = self.breakers.get(shard)
            if breaker is not None and not breaker.allow():
                self._m_route.labels(shard=shard,
                                     outcome="skipped").inc()
                continue
            if dialed_any:
                # a failover attempt: pay the retry budget, then the
                # tiny de-correlating backoff
                if self.retry_budget is not None \
                        and not self.retry_budget.try_spend():
                    span_args["outcome"] = "retry-budget"
                    raise RetryBudgetExhausted(key, tuple(tried))
                await asyncio.sleep(
                    self.failover_policy.delay(len(tried), key))
                remaining = self._remaining(req)
                if remaining is not None and remaining <= 0:
                    self._shed(key, span_args, -remaining)
            timeout = self._attempt_timeout(remaining, 1 + len(pending))
            hedge_delay = self.hedge_delay() if not dialed_any else None
            dialed_any = True
            tried.append(shard)
            if hedge_delay is not None and pending \
                    and req.op in ("run", "characterize"):
                result = await self._attempt_hedged(
                    req, key, shard, pending, timeout, hedge_delay,
                    tried, span_args)
            else:
                result = await self._attempt_plain(
                    req, key, shard, timeout, len(tried), span_args)
            if result is not None:
                return result.unwrap(self, req, key, span_args)
        if not dialed_any:
            # every replica sat behind an open breaker: nothing was even
            # dialed — a distinct, typed condition
            span_args["outcome"] = "circuit-open"
            raise CircuitOpen(key, tuple(order))
        span_args["outcome"] = "unavailable"
        raise ShardUnavailable(key, tried=tuple(tried))

    async def _attempt_plain(self, req: Request, key: str, shard: str,
                             timeout: float, attempt_no: int,
                             span_args: dict) -> "_Answered | None":
        t0 = time.perf_counter()
        try:
            frame = await self._call(shard, req.op, req.params, timeout,
                                     deadline=req.deadline,
                                     tenant=req.tenant)
        except _TRANSPORT_ERRORS as e:
            self._note_transport_failure(shard, key, e)
            return None
        self._note_latency(time.perf_counter() - t0)
        outcome = "ok" if attempt_no == 1 else "failover"
        return _Answered(shard, frame, outcome)

    async def _attempt_hedged(self, req: Request, key: str,
                              primary: str, pending: list[str],
                              timeout: float, hedge_delay: float,
                              tried: list[str],
                              span_args: dict) -> "_Answered | None":
        """First attempt with a latency hedge.

        Dial ``primary``; once it has been in flight for ``hedge_delay``
        without answering, spend a retry-budget token and dial the next
        breaker-admitted replica concurrently.  First answer wins; the
        loser is cancelled (its breaker slot released, its connection
        closed by the link's failure path, never pooled).
        """
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        tasks: dict[asyncio.Task, str] = {
            loop.create_task(self._call(primary, req.op, req.params,
                                        timeout,
                                        deadline=req.deadline,
                                        tenant=req.tenant)): primary}
        hedge_armed = True
        winner: _Answered | None = None
        while tasks:
            wait_for = hedge_delay if hedge_armed else None
            done, _ = await asyncio.wait(
                set(tasks), timeout=wait_for,
                return_when=asyncio.FIRST_COMPLETED)
            if not done and hedge_armed:
                hedge_armed = False
                backup = self._hedge_backup(pending)
                if backup is None:
                    continue
                if self.retry_budget is not None \
                        and not self.retry_budget.try_spend():
                    continue       # no token: ride out the first attempt
                self._m_hedge.labels(outcome="launched").inc()
                span_args["hedged"] = backup
                pending.remove(backup)
                tried.append(backup)
                remaining = self._remaining(req)
                tasks[loop.create_task(self._call(
                    backup, req.op, req.params,
                    self._attempt_timeout(remaining, 1 + len(pending)),
                    deadline=req.deadline,
                    tenant=req.tenant))] = backup
                continue
            for task in done:
                shard = tasks.pop(task)
                exc = task.exception()
                if exc is not None:
                    if isinstance(exc, _TRANSPORT_ERRORS):
                        self._note_transport_failure(shard, key, exc)
                        continue
                    raise exc
                self._note_latency(time.perf_counter() - t0)
                was_hedge = shard != primary
                if was_hedge:
                    self._m_hedge.labels(outcome="won").inc()
                elif "hedged" in span_args:
                    self._m_hedge.labels(outcome="lost").inc()
                winner = _Answered(shard, task.result(),
                                   "hedge" if was_hedge else "ok")
                break
            if winner is not None:
                break
        # cancel the loser (if any) and release its breaker probe slot
        for task, shard in tasks.items():
            task.cancel()
            breaker = self.breakers.get(shard)
            if breaker is not None:
                breaker.record_abandoned()
        return winner

    def _hedge_backup(self, pending: Sequence[str]) -> str | None:
        """The next breaker-admitted replica to hedge onto."""
        for shard in pending:
            breaker = self.breakers.get(shard)
            if breaker is None or breaker.allow():
                return shard
        return None

    # -- write routing ---------------------------------------------------------

    async def _route_write(self, req: Request, key: str,
                           replicas: Sequence[str],
                           span_args: dict) -> Any:
        """Route a mutation: primary-required, then best-effort replica
        fan-out.

        Writes never fail over and never hedge — a mutation applied on a
        replica while the primary missed it would fork the version
        history, and the next read could see versions go *backwards*
        after a failover.  The ring's first owner is the single write
        point; if it is breaker-blocked, unreachable, or the deadline is
        spent, the write fails with the typed error (the client retries
        against an unchanged version history — every mutation is
        observable via the version it returns).

        Under ``replication > 1`` the committed write is then applied to
        the surviving replicas best-effort, and the response discloses
        the per-shard outcome (``replicated`` / ``replica_failures``) —
        a lagging replica serves *older* versions, never wrong ones,
        and the disclosure is what the staleness bound is measured from.
        """
        await self._await_writable(req, key, span_args)
        primary = replicas[0]
        span_args["replicas"] = list(replicas)
        span_args["primary"] = primary
        if self.retry_budget is not None:
            self.retry_budget.on_request()
        remaining = self._remaining(req)
        if remaining is not None and remaining <= 0:
            self._shed(key, span_args, -remaining)
        breaker = self.breakers.get(primary)
        if breaker is not None and not breaker.allow():
            self._m_route.labels(shard=primary, outcome="skipped").inc()
            span_args["outcome"] = "circuit-open"
            raise CircuitOpen(key, (primary,))
        timeout = self._attempt_timeout(remaining, 1)
        try:
            frame = await self._call(primary, req.op, req.params,
                                     timeout, deadline=req.deadline,
                                     tenant=req.tenant)
        except _TRANSPORT_ERRORS as e:
            self._note_transport_failure(primary, key, e)
            span_args["outcome"] = "unavailable"
            raise ShardUnavailable(key, tried=(primary,)) from e
        result = self._finish_frame(req, key, primary, frame, "ok",
                                    span_args)
        if len(replicas) > 1 and isinstance(result, dict):
            replicated, failures = await self._replicate_write(
                req, key, [s for s in replicas if s != primary])
            result["replicated"] = replicated
            result["replica_failures"] = failures
            span_args["replicated"] = len(replicated)
        return result

    async def _await_writable(self, req: Request, key: str,
                              span_args: dict) -> None:
        """Hold a write while its key's state is being copied (the
        migration's pause window); bounded by ``pause_max_s`` so a
        wedged migration degrades to normal routing."""
        if key not in self._paused_writes:
            return
        span_args["write_paused"] = True
        t0 = time.monotonic()
        while key in self._paused_writes:
            if time.monotonic() - t0 > self.pause_max_s:
                log.warning("write pause for %s exceeded %.1fs; "
                            "proceeding", key, self.pause_max_s,
                            extra={"key": key})
                break
            remaining = self._remaining(req)
            if remaining is not None and remaining <= 0:
                self._shed(key, span_args, -remaining)
            await asyncio.sleep(0.01)

    async def _replicate_write(self, req: Request, key: str,
                               backups: Sequence[str]
                               ) -> tuple[list[str], list[str]]:
        """Apply a primary-committed write to the backup replicas
        concurrently; per-shard outcomes, never an exception."""

        async def one(shard: str) -> tuple[str, bool]:
            breaker = self.breakers.get(shard)
            if breaker is not None and not breaker.allow():
                self._m_route.labels(shard=shard,
                                     outcome="skipped").inc()
                return shard, False
            try:
                frame = await self._call(shard, req.op, req.params,
                                         self.fanout_timeout_s,
                                         deadline=req.deadline,
                                         tenant=req.tenant)
            except _TRANSPORT_ERRORS as e:
                self._note_transport_failure(shard, key, e)
                return shard, False
            self._note_success(shard)
            ok = bool(frame.get("ok"))
            self._m_route.labels(
                shard=shard, outcome="ok" if ok else "error").inc()
            return shard, ok

        outcomes = await asyncio.gather(*(one(s) for s in backups))
        replicated = sorted(s for s, ok in outcomes if ok)
        failures = sorted(s for s, ok in outcomes if not ok)
        return replicated, failures

    # -- degraded serving ------------------------------------------------------

    @staticmethod
    def _stale_key(req: Request) -> str:
        return req.op + ":" + json.dumps(req.params, sort_keys=True,
                                         separators=(",", ":"))

    def _remember(self, req: Request, result: Any) -> None:
        if self._stale is None or not isinstance(result, dict) \
                or result.get("degraded"):
            return
        self._stale.put(self._stale_key(req), result)

    def _serve_stale(self, req: Request, cause: Exception,
                     span_args: dict) -> dict | None:
        """Last-good fallback: the most recent answer for this exact
        request, under the staleness cap, marked degraded."""
        if self._stale is None:
            return None
        hit = self._stale.get_stale(self._stale_key(req),
                                    self.reliability.stale_cap_s)
        if hit is None:
            return None
        result, age = hit
        kind = getattr(cause, "kind", "internal")
        self._m_degraded.labels(reason=kind).inc()
        span_args["outcome"] = "degraded"
        span_args["degraded_reason"] = kind
        log.info("serving stale response (age %.3fs) after %s",
                 age, kind, extra={"age_s": age, "reason": kind})
        return dict(result, degraded=True, staleness_s=round(age, 3),
                    served="stale")

    # -- scatter-gather --------------------------------------------------------

    async def _scatter(self, op: str, params: dict[str, Any],
                       targets: Sequence[str] | None = None
                       ) -> tuple[dict[str, Any], list[str]]:
        """Fan ``op`` to ``targets`` (default: healthy shards, or all
        when the tracker has ejected everything) concurrently.

        Returns ``(results, missing)``: per-shard results for those that
        answered ok, and the shards that failed or timed out.  Callers
        that forward failure detail use :meth:`_scatter_full`, which
        also returns the shard-stamped error payloads.
        """
        results, missing, _ = await self._scatter_full(op, params,
                                                       targets)
        return results, missing

    async def _scatter_full(self, op: str, params: dict[str, Any],
                            targets: Sequence[str] | None = None
                            ) -> tuple[dict[str, Any], list[str],
                                       dict[str, dict]]:
        """:meth:`_scatter` plus the per-shard error payloads.

        Every payload — typed shard answers *and* transport failures —
        carries a ``shard`` key naming where it came from, so a partial
        aggregation can say which shard failed and why, not just that
        one did.
        """
        if targets is None:
            targets = self.tracker.healthy_shards() or tuple(self.shards)
        t0 = time.perf_counter()

        async def one(name: str):
            try:
                frame = await self._call(name, op, params,
                                         self.fanout_timeout_s)
            except _TRANSPORT_ERRORS as e:
                self._note_transport_failure(name, f"_{op}", e)
                return name, None, {
                    "kind": "unavailable", "type": type(e).__name__,
                    "message": str(e) or _failure_reason(e),
                    "shard": name}
            self._note_success(name)
            if frame.get("ok"):
                self._m_route.labels(shard=name, outcome="ok").inc()
                return name, frame.get("result"), None
            self._m_route.labels(shard=name, outcome="error").inc()
            err = frame.get("error")
            if not isinstance(err, dict):
                err = {"kind": "internal", "type": "ProtocolError",
                       "message": "malformed failure frame"}
            err.setdefault("shard", name)
            return name, None, err

        outcomes = await asyncio.gather(*(one(n) for n in targets))
        self._m_fan.labels(op=op).observe(
            (time.perf_counter() - t0) * 1e3)
        results = {name: result for name, result, err in outcomes
                   if err is None}
        missing = sorted(name for name, _, err in outcomes
                         if err is not None)
        errors = {name: err for name, _, err in outcomes
                  if err is not None}
        return results, missing, errors

    # -- op dispatch ---------------------------------------------------------

    def _routing_key(self, params: dict[str, Any]) -> str:
        dataset = params.get("dataset", "ldbc")
        if not isinstance(dataset, str) or not dataset:
            raise BadRequest(f"dataset must be a non-empty string, "
                             f"got {dataset!r}")
        return dataset

    def _read_replicas(self, key: str) -> list[str]:
        """The keyed-read chain: ring owners, widened by any promoted
        extras and rotated so promoted reads spread instead of still
        landing on the hot primary.  Also ticks the per-key route count
        the hotspot detector attributes load with."""
        replicas = list(self.ring.owners(key, self.replication))
        n = self.key_route_counts.get(key, 0) + 1
        self.key_route_counts[key] = n
        extra = self._extra_replicas.get(key)
        if extra:
            replicas += [s for s in extra
                         if s not in replicas and s in self.shards]
            i = n % len(replicas)
            replicas = replicas[i:] + replicas[:i]
        return replicas

    def _write_replicas(self, key: str) -> list[str]:
        """The write chain: the ring primary leads (promotion never
        moves the write point), extras ride the replica fan-out so a
        promoted read replica keeps receiving the mutation stream."""
        replicas = list(self.ring.owners(key, self.replication))
        replicas += [s for s in self._extra_replicas.get(key, ())
                     if s not in replicas and s in self.shards]
        return replicas

    async def _dispatch(self, req: Request) -> Any:
        self.op_counts[req.op] = self.op_counts.get(req.op, 0) + 1
        with maybe_span(self.tracer, f"route:{req.op}") as span_args:
            return await self._dispatch_traced(req, span_args)

    async def _route_keyed(self, req: Request, key: str,
                           replicas: Sequence[str],
                           span_args: dict) -> Any:
        """The single-key walk wrapped in degraded serving: when the
        whole chain fails *unavailably* (not a typed shard answer), a
        fresh-enough last-good response beats the error."""
        try:
            result = await self._route_single(req, key, replicas,
                                              span_args)
        except (ShardUnavailable, CircuitOpen, RetryBudgetExhausted,
                DeadlineExceeded) as e:
            stale = self._serve_stale(req, e, span_args)
            if stale is not None:
                return stale
            raise
        self._remember(req, result)
        return result

    async def _dispatch_traced(self, req: Request,
                               span_args: dict) -> Any:
        if req.op == "ping":
            return {"pong": True, "protocol": PROTOCOL_VERSION,
                    "server": __version__, "role": "router",
                    "shards": len(self.shards),
                    "replication": self.replication}
        if req.op == "health":
            healthy = self.tracker.healthy_shards()
            return {"ok": bool(healthy), "role": "router",
                    "shards": {name: name in healthy
                               for name in sorted(self.shards)}}
        if req.op in ("run", "characterize", "dyn_query"):
            # dyn_query rides the keyed read path (failover + degraded
            # serving) but is excluded from hedging: a hedged read could
            # land on a replica whose mutation stream lags, and the
            # first-answer-wins race would hide which version answered
            key = self._routing_key(req.params)
            replicas = self._read_replicas(key)
            return await self._route_keyed(req, key, replicas,
                                           span_args)
        if req.op in WRITE_OPS:
            key = self._routing_key(req.params)
            replicas = self._write_replicas(key)
            return await self._route_write(req, key, replicas,
                                           span_args)
        if req.op in ("query", "explain"):
            return await self._route_query(req, span_args)
        if req.op == "workloads":
            # identical on every shard: any healthy one will do, with
            # the same transport-failover walk a keyed op gets
            order = self.tracker.order(tuple(self.shards))
            return await self._route_single(req, "_workloads", order,
                                            span_args)
        if req.op == "datasets":
            return await self._gather_datasets(span_args)
        if req.op == "shard_info":
            results, missing, errors = await self._scatter_full(
                "shard_info", req.params)
            span_args["missing"] = missing
            return {"role": "router", "shards": results,
                    "partial": bool(missing), "missing": missing,
                    "errors": errors}
        if req.op == "stats":
            return await self._gather_stats(span_args)
        if req.op == "batch":
            return await self._gather_batch(req, span_args)
        raise BadRequest(f"router does not serve op {req.op!r}")

    async def _gather_datasets(self, span_args: dict) -> list[dict]:
        """Union of every shard's owned slice, annotated with the shards
        currently serving each dataset."""
        results, missing = await self._scatter("datasets", {})
        span_args["missing"] = missing
        merged: dict[str, dict] = {}
        for shard, rows in sorted(results.items()):
            for row in rows or []:
                entry = merged.setdefault(row["key"], dict(row,
                                                           shards=[]))
                entry["shards"].append(shard)
        return [merged[k] for k in sorted(merged)]

    def reliability_snapshot(self) -> dict[str, Any]:
        """The reliability layer's live state (the ``stats`` op's
        ``reliability`` section — every breaker/budget/hedge/degraded
        signal in one machine-readable place)."""
        rel = self.reliability
        out: dict[str, Any] = {"enabled": rel.enabled}
        if not rel.enabled:
            return out
        out["breakers"] = {name: b.snapshot()
                           for name, b in sorted(self.breakers.items())}
        out["retry_budget"] = self.retry_budget.snapshot()
        delay = self.hedge_delay()
        out["hedge"] = {"quantile": rel.hedge_quantile,
                        "delay_s": (round(delay, 6)
                                    if delay is not None else None),
                        "samples": len(self._lat_samples)}
        if self._stale is not None:
            out["stale"] = dict(self._stale.stats.as_dict(),
                                entries=len(self._stale),
                                cap_s=rel.stale_cap_s)
        return out

    async def _gather_stats(self, span_args: dict) -> dict[str, Any]:
        results, missing, errors = await self._scatter_full("stats", {})
        span_args["missing"] = missing
        return {"protocol": PROTOCOL_VERSION, "server": __version__,
                "role": "router",
                "connections": self.connections,
                "ops": dict(self.op_counts),
                "ring": {"shards": list(self.ring.nodes),
                         "vnodes": self.ring.vnodes,
                         "replication": self.replication},
                "rebalance": {
                    "paused_writes": sorted(self._paused_writes),
                    "extra_replicas": {k: list(v) for k, v in
                                       sorted(self._extra_replicas
                                              .items())},
                    "key_routes": dict(sorted(
                        self.key_route_counts.items()))},
                "health": self.tracker.snapshot(),
                "reliability": self.reliability_snapshot(),
                "query": {"plan_cache":
                          self._plan_cache.stats.as_dict()},
                "metrics": self.registry.snapshot(),
                "shards": results,
                "partial": bool(missing), "missing": missing,
                "errors": errors}

    async def _gather_batch(self, req: Request,
                            span_args: dict) -> dict[str, Any]:
        """Multi-cell scatter: route every entry independently (each
        with its own replica failover), aggregate partial results."""
        entries = req.params.get("entries")
        if not isinstance(entries, list) or not entries:
            raise BadRequest("batch requires a non-empty 'entries' list")
        if len(entries) > MAX_BATCH_ENTRIES:
            raise BadRequest(f"batch of {len(entries)} entries exceeds "
                             f"{MAX_BATCH_ENTRIES}")

        async def one(entry) -> dict[str, Any]:
            if not isinstance(entry, dict):
                return {"ok": False,
                        "error": {"kind": BadRequest.kind,
                                  "type": "BadRequest",
                                  "message": "batch entry must be an "
                                             "object"}}
            op = entry.get("op", "run")
            if op not in ("run", "characterize"):
                return {"ok": False,
                        "error": {"kind": BadRequest.kind,
                                  "type": "BadRequest",
                                  "message": f"batch entries must be "
                                             f"run/characterize, got "
                                             f"{op!r}"}}
            params = entry.get("params") or {}
            sub = Request(op=op, id=req.id, params=params,
                          deadline=req.deadline, tenant=req.tenant)
            sub_span: dict[str, Any] = {}
            try:
                key = self._routing_key(params)
                replicas = self._read_replicas(key)
                result = await self._route_keyed(sub, key, replicas,
                                                 sub_span)
            except Exception as e:  # noqa: BLE001 — per-entry, in-band
                from ..service.protocol import error_to_payload
                return {"ok": False, "error": error_to_payload(e)}
            return {"ok": True, "result": result}

        results = await asyncio.gather(*(one(e) for e in entries))
        failed = sum(1 for r in results if not r["ok"])
        span_args["entries"] = len(entries)
        span_args["failed"] = failed
        return {"results": list(results), "entries": len(entries),
                "failed": failed, "partial": failed > 0}

    # -- pipeline-DSL queries --------------------------------------------------

    def _static_plan(self, canonical: str, digest: str):
        """Plan a static-source query through the router's
        content-addressed plan cache (version 0: a generated graph
        never changes under a fixed seed)."""
        key = ("plan", digest)
        plan = self._plan_cache.get(key, version=0)
        if plan is not None:
            return plan, True
        plan = plan_pipeline(parse_query(canonical))
        self._plan_cache.put(key, plan, version=0)
        return plan, False

    async def _route_query(self, req: Request, span_args: dict) -> Any:
        """Route a pipeline-DSL ``query``/``explain``.

        Static sources scatter: the planner splits the vertex table into
        one partition per healthy shard, every shard runs the full
        kernels over its deterministically-generated copy of the graph
        and answers with its partition's partial table, and the merge
        (:func:`repro.query.dist.merge_partials`) reassembles the exact
        single-node answer at the front door.  Dynamic sources route
        keyed to the dataset's owner chain — only owners hold the
        mutation history, so a scattered dynamic query could mix
        versions.

        Garbage text fails router-side with a typed
        :class:`~repro.core.errors.QueryError` before any shard traffic.
        """
        if "part" in req.params:
            raise BadRequest("'part' is the router's internal scatter "
                             "parameter; send the bare query")
        pipeline = parse_query(req.params.get("q"))
        canonical = unparse(pipeline)
        source = source_info(pipeline)
        if source.dynamic:
            span_args["mode"] = "keyed"
            replicas = self._read_replicas(source.dataset)
            return await self._route_keyed(req, source.dataset,
                                           replicas, span_args)
        digest = plan_digest(canonical)
        plan, cached = self._static_plan(canonical, digest)
        if req.op == "explain":
            # deterministic for a fixed plan-cache state: the part count
            # is the topology size, never the live healthy count
            span_args["mode"] = "explain"
            return {"plan": plan.to_dict(), "merge": plan.merge_ops(),
                    "digest": digest[:16], "canonical": canonical,
                    "version": None, "plan_cached": cached,
                    "role": "router", "parts": len(self.shards)}
        span_args["mode"] = "scatter"
        return await self._scatter_query(req, plan, digest, canonical,
                                         span_args)

    async def _scatter_query(self, req: Request, plan, digest: str,
                             canonical: str, span_args: dict) -> Any:
        """Fan one partition per healthy shard; reassign failed parts.

        A *typed* shard answer (QueryError/PlanError/...) forwards
        immediately with shard attribution — the query is equally wrong
        on every shard.  A *transport* failure puts the part back in the
        pool: any shard can compute any partition, so the parts of a
        dead shard rerun on the survivors and the answer stays whole.
        """
        targets = list(self.tracker.healthy_shards()
                       or tuple(self.shards))
        n = len(targets)
        t0 = time.perf_counter()

        async def one(index: int, shard: str):
            params = dict(req.params)
            params["part"] = [index, n]
            try:
                frame = await self._call(shard, "query", params,
                                         self.fanout_timeout_s,
                                         deadline=req.deadline,
                                         tenant=req.tenant)
            except _TRANSPORT_ERRORS as e:
                self._note_transport_failure(shard, f"_query:{index}", e)
                return index, shard, None, None
            self._note_success(shard)
            if frame.get("ok"):
                self._m_route.labels(shard=shard, outcome="ok").inc()
                return index, shard, frame.get("result"), None
            self._m_route.labels(shard=shard, outcome="error").inc()
            error = frame.get("error")
            if not isinstance(error, dict):
                error = {"kind": "internal", "type": "ProtocolError",
                         "message": f"malformed failure frame from "
                                    f"{shard}"}
            error.setdefault("shard", shard)
            return index, shard, None, error

        tables: dict[int, dict] = {}
        assigned: dict[int, str] = {}
        survivors: list[str] = []
        pending = list(enumerate(targets))
        rounds = 0
        while pending:
            outcomes = await asyncio.gather(
                *(one(i, s) for i, s in pending))
            failed: list[int] = []
            for index, shard, result, error in outcomes:
                if error is not None:
                    span_args["outcome"] = "error"
                    span_args["shard"] = error.get("shard", shard)
                    raise payload_to_error(error)
                table = result.get("table") \
                    if isinstance(result, dict) else None
                if not isinstance(table, dict):
                    failed.append(index)
                    continue
                if shard not in survivors:
                    survivors.append(shard)
                tables[index] = table
                assigned[index] = shard
            if not failed:
                break
            rounds += 1
            if not survivors or rounds > len(targets):
                span_args["outcome"] = "unavailable"
                raise ShardUnavailable(
                    f"query:{digest[:16]}",
                    tried=tuple(dict.fromkeys(s for _, s in pending)))
            # any shard can compute any part: round-robin the failed
            # parts over the shards that have already answered
            pending = [(index, survivors[j % len(survivors)])
                       for j, index in enumerate(failed)]
        self._m_fan.labels(op="query").observe(
            (time.perf_counter() - t0) * 1e3)
        merged = merge_partials(plan, [tables[i] for i in range(n)])
        span_args["parts"] = n
        span_args["outcome"] = "ok"
        return {"table": merged, "rows": len(merged["rows"]),
                "plan": digest[:16], "canonical": canonical,
                "version": None, "distributed": True, "parts": n,
                "served": "scatter",
                "assignments": {str(i): assigned[i] for i in range(n)}}

    # -- connection handling (JSON-lines loop, as the service speaks) --------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._m_err.labels(op="_frame",
                                       kind=ProtocolError.kind).inc()
                    writer.write(encode_error(
                        None, ProtocolError("frame exceeds size limit")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    self._m_err.labels(op="_frame",
                                       kind=ProtocolError.kind).inc()
                    writer.write(encode_error(
                        None, ProtocolError("truncated frame at EOF")))
                    await writer.drain()
                    break
                req_id: str | None = None
                op = "_frame"
                t0 = time.perf_counter()
                try:
                    req = parse_request(decode_frame(line))
                    req_id = req.id
                    op = req.op
                    result = await self._dispatch(req)
                    writer.write(encode_response(req_id, result))
                except Exception as e:  # noqa: BLE001 — typed on the wire
                    kind = getattr(e, "kind", None)
                    self._m_err.labels(
                        op=op,
                        kind=kind if isinstance(kind, str)
                        else "internal").inc()
                    writer.write(encode_error(req_id, e))
                finally:
                    self._m_lat.labels(op=op).observe(
                        (time.perf_counter() - t0) * 1e3)
                await writer.drain()
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass


class _Answered:
    """One answered shard attempt, pending unwrap."""

    __slots__ = ("shard", "frame", "outcome")

    def __init__(self, shard: str, frame: dict, outcome: str):
        self.shard = shard
        self.frame = frame
        self.outcome = outcome

    def unwrap(self, router: Router, req: Request, key: str,
               span_args: dict) -> Any:
        return router._finish_frame(req, key, self.shard, self.frame,
                                    self.outcome, span_args)
