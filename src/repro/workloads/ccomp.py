"""CComp — connected components (topological analytics, CompStruct).

The paper implements the CPU side "with BFS traversals" (Section 4.2):
repeatedly seed a BFS from every unlabelled vertex over the undirected
view, labelling the ``comp`` property.  Scanning all vertices plus
traversing every edge with no single hot frontier is what drives CComp's
very high L3 MPKI (101.3) and DTLB penalty (21.1 %) in Figs. 6–7.
(The GPU side uses Soman's algorithm — see ``repro.gpu.kernels.ccomp``.)
"""

from __future__ import annotations

from typing import Any

from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from .base import TracedQueue, Workload


class CComp(Workload):
    """Connected-component label per vertex (undirected view), in the
    ``comp`` property; labels are the smallest vertex id per component."""

    NAME = "CComp"
    CTYPE = ComputationType.COMP_STRUCT
    CATEGORY = WorkloadCategory.ANALYTICS
    HAS_GPU = True

    def kernel(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_fresh = t.register_branch_site()
        comp: dict[int, int] = {}
        n_components = 0
        q = TracedQueue(g, t)
        for v in g.vertices():
            t.i(3)
            unlabelled = g.vget(v, "comp") < 0
            t.br(site_fresh, unlabelled)
            if not unlabelled:
                continue
            n_components += 1
            label = v.vid
            g.vset(v, "comp", label)
            comp[v.vid] = label
            q.push(v)
            while q:
                u = q.pop()
                nbrs = [dst for dst, _ in g.neighbors(u)]
                nbrs.extend(g.in_neighbors(u))
                for dst in nbrs:
                    w = g.find_vertex(dst)
                    t.i(3)
                    if g.vget(w, "comp") < 0:
                        g.vset(w, "comp", label)
                        comp[dst] = label
                        q.push(w)
        return {"comp": comp, "n_components": n_components}

    @staticmethod
    def reference(spec) -> int:
        """networkx number of connected components (undirected view)."""
        import networkx as nx
        import networkx.algorithms.components as comps
        und = nx.Graph(spec.nx())
        return comps.number_connected_components(und)
