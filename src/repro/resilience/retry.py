"""Bounded retries with exponential backoff and deterministic jitter.

Backoff delays are derived from ``(policy.seed, cell_id, attempt)`` via a
string-seeded :class:`random.Random`, so a schedule is reproducible across
processes and runs (string seeding hashes the bytes, independent of
``PYTHONHASHSEED``) while still de-correlating cells — two cells that fail
together do not retry in lockstep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from ..core.errors import CellExecutionError, RetriesExhausted


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a failing cell, and how long to wait."""

    max_retries: int = 2         # re-runs after the first attempt
    base_delay: float = 0.1      # seconds before the first retry
    factor: float = 2.0          # exponential growth per retry
    max_delay: float = 30.0      # cap on any single delay
    jitter: float = 0.5          # +/- fraction of the delay randomized
    seed: int = 0                # jitter RNG seed (determinism)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int, cell_id: str = "") -> float:
        """Delay after failed ``attempt`` (1-based), jittered, in seconds."""
        base = min(self.base_delay * self.factor ** (attempt - 1),
                   self.max_delay)
        if not self.jitter:
            return base
        rng = random.Random(f"{self.seed}:{cell_id}:{attempt}")
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def backoff_schedule(policy: RetryPolicy, cell_id: str = "") -> list[float]:
    """The full delay sequence a cell would sleep through (one entry per
    retry).  Pure function of (policy, cell_id) — tests assert against it."""
    return [policy.delay(a, cell_id)
            for a in range(1, policy.max_retries + 1)]


def run_with_retries(attempt_fn: Callable[[int], object],
                     policy: RetryPolicy, cell_id: str, *,
                     sleep: Callable[[float], None] = time.sleep):
    """Call ``attempt_fn(attempt)`` until it succeeds or attempts run out.

    Only :class:`CellExecutionError` subclasses are retried — anything else
    is a harness bug and propagates immediately.  Returns
    ``(result, attempts)``; raises :class:`RetriesExhausted` (carrying the
    last failure) when the budget is spent.  ``sleep`` is injectable so
    tests can record the backoff schedule instead of waiting it out.
    """
    last: CellExecutionError | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return attempt_fn(attempt), attempt
        except RetriesExhausted:
            raise
        except CellExecutionError as e:
            last = e
            if attempt < policy.max_attempts:
                sleep(policy.delay(attempt, cell_id))
    assert last is not None
    raise RetriesExhausted(cell_id, policy.max_attempts, last)
