"""Structured logging: per-subsystem loggers, optional JSON lines.

Every runtime layer logs through ``repro.<subsystem>`` loggers obtained
from :func:`get_logger`; :func:`setup_logging` configures the shared
``repro`` root once (idempotently — re-running replaces the handler it
installed, never stacks duplicates and never touches handlers installed
by embedding applications).

Two output modes, selected by the CLI's ``--log-json`` flag:

* human: ``2026-08-07 09:01:02 W repro.service.server: worker crashed``
* JSON lines: one object per record with ``ts``/``level``/``logger``/
  ``msg`` plus any ``extra={...}`` fields the call site attached —
  machine-parseable the same way the checkpoint journal and the wire
  protocol are.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

#: LogRecord attributes that are plumbing, not payload — anything else
#: on a record (i.e. ``extra=`` fields) is emitted as structured data.
_RESERVED = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None))) | {"message", "asctime", "taskName"}

_LEVELS = ("debug", "info", "warning", "error", "critical")


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for one subsystem (``service.server``, ``resilience``,
    ``harness`` ...) under the shared ``repro`` root."""
    return logging.getLogger(f"repro.{subsystem}")


def setup_logging(level: str = "warning", *, json_mode: bool = False,
                  stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``repro`` logging root; returns it.

    Idempotent: the handler this function installed previously (tagged)
    is replaced, so calling twice — or once per test — never duplicates
    output.  Handlers installed by anyone else are left alone.
    """
    if level.lower() not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {', '.join(_LEVELS)}")
    root = logging.getLogger("repro")
    root.setLevel(level.upper())
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True                       # type: ignore[attr-defined]
    if json_mode:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname).1s %(name)s: %(message)s",
            datefmt="%Y-%m-%d %H:%M:%S"))
    root.addHandler(handler)
    root.propagate = False
    return root
