"""Metric exposition: Prometheus text format and JSON, from snapshots.

Both renderers consume the JSON-safe snapshot dict produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` — which is also
exactly what the service's ``stats`` wire op ships — so a remote scraper
(``repro stats --format prom``) renders the same text a local process
would, without the registry objects ever crossing the socket.

The text format follows the Prometheus exposition format 0.0.4:
``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` line per
sample, histograms as cumulative ``_bucket{le=...}`` series plus
``_sum`` / ``_count``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .metrics import format_number

#: Characters needing escape inside a label value, per the exposition
#: format: backslash, double-quote, newline.
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _label_str(labels: Mapping[str, str],
               extra: tuple[str, str] | None = None) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """The full exposition text for one registry snapshot."""
    lines: list[str] = []
    for name in sorted(snapshot):
        fam = snapshot[name]
        if fam.get("help"):
            lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for sample in fam.get("samples", []):
            labels = sample.get("labels", {})
            if fam["type"] == "histogram":
                for bound, cumulative in sample.get("buckets", ()):
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(labels, ('le', str(bound)))} "
                        f"{format_number(float(cumulative))}")
                lines.append(f"{name}_sum{_label_str(labels)} "
                             f"{format_number(float(sample['sum']))}")
                lines.append(f"{name}_count{_label_str(labels)} "
                             f"{format_number(float(sample['count']))}")
            else:
                lines.append(f"{name}{_label_str(labels)} "
                             f"{format_number(float(sample['value']))}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: Mapping[str, Any], *, indent: int = 2) -> str:
    """The snapshot as stable, sorted JSON text."""
    return json.dumps(snapshot, indent=indent, sort_keys=True,
                      default=str)
