"""Correctness tests for the analytics and social workloads."""

import pytest

from repro import workloads as W
from repro.datagen import ca_road, watson_gene
from tests.conftest import build


class TestKCore:
    def test_matches_networkx(self, small_spec, small_graph):
        res = W.run("kCore", small_graph)
        assert res.outputs["core"] == W.KCore.reference(small_spec)

    def test_max_core_consistent(self, small_graph):
        res = W.run("kCore", small_graph)
        assert res.outputs["max_core"] == max(res.outputs["core"].values())

    def test_road_network(self):
        spec = ca_road(400, seed=1)
        g = build(spec)
        res = W.run("kCore", g)
        assert res.outputs["core"] == W.KCore.reference(spec)

    def test_writes_core_property(self, small_graph):
        res = W.run("kCore", small_graph)
        for vid, k in list(res.outputs["core"].items())[:20]:
            assert small_graph.vget(vid, "core") == k


class TestCComp:
    def test_component_count(self, small_spec, small_graph):
        res = W.run("CComp", small_graph)
        assert res.outputs["n_components"] == W.CComp.reference(small_spec)

    def test_labels_partition_correctly(self, small_spec, small_graph):
        import networkx as nx
        res = W.run("CComp", small_graph)
        comp = res.outputs["comp"]
        und = nx.Graph(small_spec.nx())
        for cset in nx.connected_components(und):
            labels = {comp[v] for v in cset}
            assert len(labels) == 1

    def test_disconnected_graph(self):
        spec = watson_gene(800, module_size=40, bridge_fraction=0.0,
                           seed=4)
        g = build(spec)
        res = W.run("CComp", g)
        assert res.outputs["n_components"] == W.CComp.reference(spec)
        assert res.outputs["n_components"] > 1


class TestGColor:
    def test_proper_coloring(self, small_spec, small_graph):
        res = W.run("GColor", small_graph, seed=1)
        assert W.GColor.is_proper(small_spec, res.outputs["colors"])

    def test_all_vertices_colored(self, small_graph):
        res = W.run("GColor", small_graph, seed=2)
        assert len(res.outputs["colors"]) == small_graph.num_vertices
        assert min(res.outputs["colors"].values()) >= 0

    def test_color_count_bounded_by_max_degree(self, tiny_spec):
        g = build(tiny_spec)
        res = W.run("GColor", g, seed=0)
        maxdeg = int(tiny_spec.degrees_undirected().max())
        assert res.outputs["n_colors"] <= maxdeg + 1

    def test_different_seeds_both_proper(self, small_spec):
        for seed in (3, 4):
            g = build(small_spec)
            res = W.run("GColor", g, seed=seed)
            assert W.GColor.is_proper(small_spec, res.outputs["colors"])


class TestTC:
    def test_matches_networkx(self, small_spec, small_graph):
        res = W.run("TC", small_graph)
        assert res.outputs["triangles"] == W.TC.reference(small_spec)

    def test_per_vertex_sums_to_three_times_total(self, small_graph):
        res = W.run("TC", small_graph)
        assert (sum(res.outputs["per_vertex"].values())
                == 3 * res.outputs["triangles"])

    def test_triangle_free_graph(self):
        spec = ca_road(200, diagonal_fraction=0.0, seed=0)
        g = build(spec)
        res = W.run("TC", g)
        assert res.outputs["triangles"] == W.TC.reference(spec)

    def test_known_triangle(self):
        from repro.core.graph import PropertyGraph
        from repro.workloads import common_vertex_schema
        g = PropertyGraph(common_vertex_schema())
        for i in range(4):
            g.add_vertex(i)
        for s, d in [(0, 1), (1, 2), (2, 0), (0, 3)]:
            g.add_edge(s, d)
        assert W.run("TC", g).outputs["triangles"] == 1


class TestDCentr:
    def test_matches_degree_sums(self, small_spec, small_graph):
        res = W.run("DCentr", small_graph)
        ref = W.DCentr.reference(small_spec)
        assert all(res.outputs["dc"][v] == ref[v] for v in ref)

    def test_normalized(self, tiny_spec):
        g = build(tiny_spec)
        res = W.run("DCentr", g, normalize=True)
        n = tiny_spec.n
        ref = W.DCentr.reference(tiny_spec)
        for v, d in ref.items():
            assert res.outputs["dc"][v] == pytest.approx(d / (n - 1))

    def test_final_property_value(self, small_graph):
        res = W.run("DCentr", small_graph)
        for vid in list(res.outputs["dc"])[:20]:
            assert small_graph.vget(vid, "dc") == res.outputs["dc"][vid]


class TestBCentr:
    def test_exact_matches_networkx(self, tiny_spec):
        g = build(tiny_spec)
        res = W.run("BCentr", g)          # all sources
        ref = W.BCentr.reference(tiny_spec)
        for v, b in ref.items():
            assert res.outputs["bc"][v] == pytest.approx(b, abs=1e-6)

    def test_sampled_is_scaled_estimate(self, tiny_spec):
        g = build(tiny_spec)
        res = W.run("BCentr", g, n_sources=30, seed=1)
        ref = W.BCentr.reference(tiny_spec)
        top_ref = max(ref, key=ref.get)
        got = res.outputs["bc"]
        # the top exact vertex should rank highly in the estimate
        rank = sorted(got, key=got.get, reverse=True).index(top_ref)
        assert rank < max(5, len(got) // 10)

    def test_star_graph_center(self):
        from repro.core.graph import PropertyGraph
        from repro.workloads import common_vertex_schema
        g = PropertyGraph(common_vertex_schema(), directed=False)
        for i in range(6):
            g.add_vertex(i)
        for i in range(1, 6):
            g.add_edge(0, i)
        res = W.run("BCentr", g)
        bc = res.outputs["bc"]
        assert bc[0] == max(bc.values())
        assert all(bc[i] == pytest.approx(0.0) for i in range(1, 6))
