"""Figure 5 — Execution time breakdown of GraphBIG CPU workloads.

Paper: backend stalls dominate for most workloads (>90 % for kCore and
GUp); CompProp (Gibbs) is the outlier at ~50 % backend; TC shows a large
BadSpeculation share.  Measured: the top-down breakdown from the trace-
driven cycle model, grouped by computation type.
"""

from benchmarks.conftest import show
from repro.arch.machine import describe
from repro.core.taxonomy import ComputationType
from repro.harness import breakdown_table, format_table, paper_note


def test_fig05_cycle_breakdown(suite, benchmark):
    rows = suite.main_rows()
    data = benchmark(lambda: breakdown_table(list(rows.values())))
    show(f"[machine] {describe(suite.machine)}")
    show(format_table(
        ["workload", "ctype", "frontend", "badspec", "retiring",
         "backend"], data,
        title="Fig. 5 — top-down execution-cycle breakdown")
        + paper_note("backend dominant for most; kCore/GUp > 90%; "
                     "CompProp ~50%; TC has high BadSpeculation"))

    frac = {r[0]: dict(zip(["fe", "bs", "ret", "be"], r[2:])) for r in data}
    # backend dominates CompStruct (TC's intersections are the exception)
    for name, row in rows.items():
        if row.ctype == ComputationType.COMP_STRUCT and name != "TC":
            assert frac[name]["be"] > 0.5, name
    # the paper's extreme cases
    assert frac["kCore"]["be"] > 0.85
    assert frac["GUp"]["be"] > 0.85
    # CompProp clearly less backend-bound than the traversals
    assert frac["Gibbs"]["be"] < frac["BFS"]["be"] - 0.1
    # TC's data-dependent compares blow the speculation budget
    assert frac["TC"]["bs"] == max(v["bs"] for v in frac.values())
