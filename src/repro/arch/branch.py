"""Branch predictor models.

The paper reports branch miss-prediction rate per workload (Fig. 6): most
graph workloads stay below 5 % — their branches are loop back-edges, which
history predictors nail — while TC reaches 10.7 % because the outcome of
its neighbour-list *intersection* compares is data-dependent and effectively
random.  A gshare predictor over the traced (site, outcome) stream
reproduces exactly this contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BranchStats:
    """Outcome of a branch-prediction simulation."""

    branches: int
    mispredicts: int

    @property
    def miss_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def mpki(self, n_instrs: int) -> float:
        return 1000.0 * self.mispredicts / n_instrs if n_instrs else 0.0


class BimodalPredictor:
    """Per-site 2-bit saturating counters (no global history)."""

    def __init__(self, table_bits: int = 12):
        self.mask = (1 << table_bits) - 1
        self.table = [2] * (1 << table_bits)   # weakly taken

    def simulate(self, sites: np.ndarray, taken: np.ndarray) -> BranchStats:
        table = self.table
        mask = self.mask
        miss = 0
        for s, t in zip(np.asarray(sites).tolist(),
                        np.asarray(taken).tolist()):
            idx = s & mask
            c = table[idx]
            if (c >= 2) != bool(t):
                miss += 1
            table[idx] = min(c + 1, 3) if t else max(c - 1, 0)
        return BranchStats(len(sites), miss)


class GSharePredictor:
    """Global-history XOR site-indexed 2-bit counters (McFarling gshare)."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12):
        self.table_bits = table_bits
        self.mask = (1 << table_bits) - 1
        self.hmask = (1 << history_bits) - 1
        self.table = [2] * (1 << table_bits)
        self.history = 0

    def simulate(self, sites: np.ndarray, taken: np.ndarray) -> BranchStats:
        table = self.table
        mask = self.mask
        hmask = self.hmask
        hist = self.history
        miss = 0
        for s, t in zip(np.asarray(sites).tolist(),
                        np.asarray(taken).tolist()):
            idx = (s ^ hist) & mask
            c = table[idx]
            t = bool(t)
            if (c >= 2) != t:
                miss += 1
            table[idx] = min(c + 1, 3) if t else max(c - 1, 0)
            hist = ((hist << 1) | t) & hmask
        self.history = hist
        return BranchStats(len(sites), miss)


class AlwaysTakenPredictor:
    """Static always-taken baseline (sanity lower bound)."""

    def simulate(self, sites: np.ndarray, taken: np.ndarray) -> BranchStats:
        taken = np.asarray(taken, dtype=bool)
        return BranchStats(len(taken), int((~taken).sum()))


PREDICTORS = {
    "gshare": GSharePredictor,
    "bimodal": BimodalPredictor,
    "always_taken": AlwaysTakenPredictor,
}

def _counter_misses(idx: np.ndarray, taken: np.ndarray) -> int:
    """Mispredict count of per-index 2-bit saturating counters (init
    weakly-taken), fully vectorized.

    The events of one table index form an independent chain of mapping
    applications.  A stable sort groups the stream per index while keeping
    program order inside each group; a segmented Hillis-Steele scan then
    composes the transition mappings, giving every event the exact counter
    value the sequential predictor would have read.  Both single-step
    mappings are saturating adds ``x -> min(hi, max(lo, x + a))`` and that
    family is closed under composition::

        (g . f)  =  (a_f + a_g,
                     max(lo_g, lo_f + a_g),
                     min(hi_g, max(lo_g, hi_f + a_g)))

    so each mapping is three small ints and every scan step is a few
    elementwise ops — no per-row gathers.  Composition is associative, so
    the scan is exact, not an approximation.  Once the doubling distance
    exceeds most segment lengths the surviving rows are compacted and
    updated sparsely.
    """
    n = len(idx)
    if not n:
        return 0
    # stable radix argsort — table indices fit u32, which sorts ~2x
    # faster than the int64 the caller naturally produces
    order = np.argsort(idx.astype(np.uint32), kind="stable")
    gt = taken[order].astype(bool)
    gi = idx[order]
    start = np.empty(n, bool)
    start[0] = True
    start[1:] = gi[1:] != gi[:-1]
    seg_first = np.flatnonzero(start)
    seg_id = np.cumsum(start) - 1
    pos = np.arange(n, dtype=np.int64) - seg_first[seg_id]
    a = np.where(gt, np.int16(1), np.int16(-1))
    lo = np.zeros(n, np.int16)
    hi = np.full(n, 3, np.int16)
    longest = int(pos.max())
    d = 1
    while d <= longest:              # dense phase: whole-array steps
        live = pos[d:] >= d          # rows at least d into their segment
        ag, lg, hg = a[d:], lo[d:], hi[d:]
        na = a[:n - d] + ag
        nlo = np.maximum(lg, lo[:n - d] + ag)
        nhi = np.minimum(hg, np.maximum(lg, hi[:n - d] + ag))
        np.copyto(ag, na, where=live)
        np.copyto(lg, nlo, where=live)
        np.copyto(hg, nhi, where=live)
        d *= 2
        if int(live.sum()) * 20 < n:     # few survivors -> go sparse
            break
    if d <= longest:                 # sparse phase on compacted survivors
        rows = np.flatnonzero(pos >= d)
        while d <= longest and len(rows):
            src = rows - d
            ag, lg, hg = a[rows], lo[rows], hi[rows]
            na = a[src] + ag
            a[rows] = na
            lo[rows] = np.maximum(lg, lo[src] + ag)
            hi[rows] = np.minimum(hg, np.maximum(lg, hi[src] + ag))
            d *= 2
            rows = rows[pos[rows] >= d]
    before = np.full(n, 2, np.int16)
    nst = ~start
    before[nst] = np.minimum(
        hi[:-1][nst[1:]],
        np.maximum(lo[:-1][nst[1:]], 2 + a[:-1][nst[1:]]))
    return int(((before >= 2) != gt).sum())


def _gshare_history(taken: np.ndarray, history_bits: int,
                    hmask: int) -> np.ndarray:
    """Global-history register value seen by each branch.  The history is
    a pure shift-in of past *outcomes* — independent of predictions — so
    it unrolls into ``history_bits`` shifted-OR passes."""
    n = len(taken)
    hist = np.zeros(n, np.int64)
    tb = taken.astype(np.int64)
    for k in range(1, min(history_bits, n - 1 if n else 0) + 1):
        hist[k:] |= tb[:-k] << (k - 1)
    return hist & hmask


def simulate_branches(sites: np.ndarray, taken: np.ndarray,
                      kind: str = "gshare", fast: bool = True,
                      **kwargs) -> BranchStats:
    """Run predictor ``kind`` over a (site, outcome) stream.

    ``fast=True`` (default) uses the vectorized closed-form evolution for
    the table-based predictors; it is exact —
    ``tests/test_tlb_branch_icache.py`` cross-validates it against the
    sequential classes, which remain the oracle.  Pass ``fast=False`` to
    force the loop implementation.
    """
    try:
        cls = PREDICTORS[kind]
    except KeyError:
        raise ValueError(f"unknown predictor {kind!r}; "
                         f"choose from {sorted(PREDICTORS)}") from None
    if fast and kind in ("gshare", "bimodal"):
        p = cls(**kwargs)
        s = np.asarray(sites, np.int64)
        t = np.asarray(taken)
        if kind == "bimodal":
            idx = s & p.mask
        else:
            hist = _gshare_history(t, p.hmask.bit_length(), p.hmask)
            idx = (s ^ hist) & p.mask
        return BranchStats(len(s), _counter_misses(idx, t))
    return cls(**kwargs).simulate(sites, taken)
