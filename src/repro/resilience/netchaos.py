"""Network chaos: a deterministic TCP fault-injection proxy.

The in-process :class:`~repro.resilience.chaos.ChaosSpec` perturbs
*execution* (worker crashes, stalls, OOMs); this module perturbs the
*wire*.  A :class:`ChaosProxy` sits between the router and one shard as
a real TCP interposer — the router dials the proxy, the proxy dials the
shard — and injects the failure modes distributed systems actually meet:

* **latency** — per-chunk forwarding delay with seeded jitter;
* **bandwidth throttling** — pacing sleeps sized to a bits-per-second
  budget;
* **connection resets** — a hard RST (``SO_LINGER 0``) after a seeded
  byte offset mid-stream;
* **payload corruption** — a seeded byte flipped in a forwarded chunk,
  which the JSON-lines protocol must reject as a typed frame error;
* **black-hole partitions** — bytes are read and discarded, nothing is
  ever answered: the connection hangs until the *client's* deadline
  machinery gives up (the fault that distinguishes deadline propagation
  from wishful timeouts);
* **slow-loris half-writes** — the response is forwarded up to a byte
  budget and then stalls, testing the reader's *total-read* deadline
  rather than a per-``recv`` timeout.

Determinism: every connection draws its fault decisions from
``random.Random(f"netchaos:{seed}:{conn_id}")`` where ``conn_id`` is the
proxy's accept counter — the same seed and arrival order reproduce the
same faults, so chaos benchmarks are replayable.

Faults can be swapped at runtime (:meth:`ChaosProxy.set_faults`):
already-open connections pick up the new spec on their next chunk,
which is how a benchmark black-holes a live shard mid-run.

Pure stdlib ``threading`` + ``socket`` — the proxy must keep working
while the router's asyncio loop is saturated, and must interpose the
*real* kernel TCP path, not a mocked stream.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from dataclasses import dataclass, replace
from typing import Any

from ..obs.logs import get_logger

log = get_logger("resilience.netchaos")

#: Forwarding chunk size.  Small enough that latency/bandwidth shaping
#: has sub-frame granularity, large enough to not dominate CPU.
_CHUNK = 2048

#: Pump-loop socket timeout: how quickly a pump notices a fault swap or
#: proxy shutdown.
_TICK_S = 0.05


@dataclass(frozen=True)
class NetFaultSpec:
    """What to do to traffic through one proxy.

    The zero value is a transparent proxy.  Probabilities are per
    connection; byte offsets and delays are drawn from the connection's
    seeded RNG.
    """

    latency_ms: float = 0.0          # per-chunk forwarding delay
    jitter_ms: float = 0.0           # uniform extra, seeded per chunk
    bandwidth_bps: float | None = None   # throttle (bits/second)
    reset_p: float = 0.0             # P(connection gets RST mid-stream)
    reset_after_bytes: int = 4096    # max seeded offset for the RST
    corrupt_p: float = 0.0           # P(one byte flipped per connection)
    blackhole: bool = False          # read and discard; never answer
    stall_after_bytes: int | None = None  # slow-loris: answer then stall

    def __post_init__(self):
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency/jitter must be >= 0")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        for name, p in (("reset_p", self.reset_p),
                        ("corrupt_p", self.corrupt_p)):
            if not 0 <= p <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.stall_after_bytes is not None \
                and self.stall_after_bytes < 0:
            raise ValueError("stall_after_bytes must be >= 0")

    def transparent(self) -> bool:
        return self == NetFaultSpec()

    def but(self, **changes) -> "NetFaultSpec":
        """A copy with some fields replaced (benchmark convenience)."""
        return replace(self, **changes)


class _ConnPlan:
    """Per-connection fault decisions, drawn once from the seeded RNG so
    both pump directions agree on them."""

    def __init__(self, spec: NetFaultSpec, rng: random.Random):
        self.rng = rng
        self.reset_at: int | None = None
        if spec.reset_p > 0 and rng.random() < spec.reset_p:
            self.reset_at = rng.randrange(1, spec.reset_after_bytes + 1)
        self.corrupt = spec.corrupt_p > 0 \
            and rng.random() < spec.corrupt_p
        self.corrupted_yet = False
        self.forwarded = 0               # bytes, both directions


class ChaosProxy:
    """A TCP interposer in front of one upstream address.

    Context-manager; :meth:`start` binds an ephemeral listener and
    returns ``(host, port)`` — point the router at it instead of the
    shard.  A connection to a dead upstream is answered with an
    immediate close (the transport failure the router's failover path
    expects from a down shard).
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 faults: NetFaultSpec | None = None, seed: int = 0,
                 host: str = "127.0.0.1", name: str = ""):
        self.upstream = (upstream_host, upstream_port)
        self.seed = seed
        self.name = name or f"{upstream_host}:{upstream_port}"
        self._faults = faults or NetFaultSpec()
        self._listen_host = host
        self.host: str | None = None
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._conn_id = 0
        self._open_socks: set[socket.socket] = set()
        self.stats: dict[str, int] = {
            "connections": 0, "bytes_up": 0, "bytes_down": 0,
            "resets": 0, "corrupted": 0, "blackholed_chunks": 0,
            "stalled": 0, "upstream_refused": 0}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._listen_host, 0))
        listener.listen(64)
        listener.settimeout(_TICK_S)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"netchaos-{self.name}",
            daemon=True)
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            self._listener.close()
        with self._lock:
            socks = list(self._open_socks)
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fault control -------------------------------------------------------

    @property
    def faults(self) -> NetFaultSpec:
        with self._lock:
            return self._faults

    def set_faults(self, faults: NetFaultSpec) -> None:
        """Swap the fault spec; live connections see it next chunk."""
        with self._lock:
            self._faults = faults
        log.info("proxy %s faults -> %r", self.name, faults,
                 extra={"proxy": self.name})

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return dict(self.stats, name=self.name,
                        upstream=f"{self.upstream[0]}:{self.upstream[1]}")

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.stats[key] += n

    # -- the proxy machinery -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                self._conn_id += 1
                conn_id = self._conn_id
                self.stats["connections"] += 1
                self._open_socks.add(client)
            threading.Thread(
                target=self._serve_conn, args=(client, conn_id),
                name=f"netchaos-{self.name}-{conn_id}",
                daemon=True).start()

    def _serve_conn(self, client: socket.socket, conn_id: int) -> None:
        rng = random.Random(f"netchaos:{self.seed}:{conn_id}")
        plan = _ConnPlan(self.faults, rng)
        try:
            upstream = socket.create_connection(self.upstream,
                                                timeout=5.0)
        except OSError:
            # dead upstream: the refused/reset the router would have
            # seen dialing the shard directly
            self._count("upstream_refused")
            self._close_rst(client)
            return
        with self._lock:
            self._open_socks.add(upstream)
        up = threading.Thread(
            target=self._pump, args=(client, upstream, plan, "up"),
            daemon=True)
        down = threading.Thread(
            target=self._pump, args=(upstream, client, plan, "down"),
            daemon=True)
        up.start()
        down.start()

    def _close_rst(self, sock: socket.socket) -> None:
        """Close with RST (linger 0) — an abortive close, not FIN."""
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass
        with self._lock:
            self._open_socks.discard(sock)

    def _close_pair(self, a: socket.socket, b: socket.socket,
                    rst: bool = False) -> None:
        for sock in (a, b):
            if rst:
                self._close_rst(sock)
            else:
                try:
                    sock.close()
                except OSError:
                    pass
                with self._lock:
                    self._open_socks.discard(sock)

    def _pump(self, src: socket.socket, dst: socket.socket,
              plan: _ConnPlan, direction: str) -> None:
        """Forward src -> dst, applying the live fault spec per chunk.

        ``direction`` is ``"up"`` (client to shard) or ``"down"``
        (shard's response back to the client).
        """
        src.settimeout(_TICK_S)
        sent_down = 0                    # this pump's forwarded bytes
        stalled = False
        while not self._stop.is_set():
            try:
                chunk = src.recv(_CHUNK)
            except socket.timeout:
                continue
            except OSError:
                break
            if not chunk:
                break
            spec = self.faults
            if spec.blackhole:
                # read and discard: the peer sees a live connection
                # that never answers — only a deadline ends the wait
                self._count("blackholed_chunks")
                continue
            if stalled:
                continue                 # slow-loris: swallow the rest
            if spec.latency_ms > 0 or spec.jitter_ms > 0:
                delay = spec.latency_ms / 1e3
                if spec.jitter_ms > 0:
                    delay += plan.rng.uniform(0, spec.jitter_ms) / 1e3
                self._stop.wait(delay)
            if plan.corrupt and not plan.corrupted_yet:
                buf = bytearray(chunk)
                buf[plan.rng.randrange(len(buf))] ^= 0xFF
                chunk = bytes(buf)
                plan.corrupted_yet = True
                self._count("corrupted")
            if direction == "down" and spec.stall_after_bytes is not None:
                room = spec.stall_after_bytes - sent_down
                if room <= 0:
                    stalled = True
                    self._count("stalled")
                    continue
                if len(chunk) > room:
                    chunk = chunk[:room]
                    stalled = True
                    self._count("stalled")
            try:
                dst.sendall(chunk)
            except OSError:
                break
            plan.forwarded += len(chunk)
            sent_down += len(chunk)
            self._count("bytes_up" if direction == "up"
                        else "bytes_down", len(chunk))
            if plan.reset_at is not None \
                    and plan.forwarded >= plan.reset_at:
                self._count("resets")
                self._close_pair(src, dst, rst=True)
                return
            if spec.bandwidth_bps is not None:
                self._stop.wait(len(chunk) * 8 / spec.bandwidth_bps)
        self._close_pair(src, dst)
