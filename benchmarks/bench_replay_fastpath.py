"""Characterization-matrix fast path: vectorized kernels + fused replay
vs. loop kernels + reference simulators.

The fast path has two layers, both exact:

* **Vectorized workload kernels** — BFS/TC/CComp/kCore emit their traces
  through bulk numpy splicing (``repro.workloads._bulk``) instead of
  per-element tracer calls.  The frozen trace is **per-element identical**
  to the loop kernels' (address stream, branch sites, instruction counts,
  region visits), so everything downstream is unchanged by construction.
* **Fused replay engines** — one pass over the trace instead of one pass
  per simulated structure: the CPU hierarchy + DTLB
  (:func:`repro.arch.replay.replay`), the branch predictors
  (``simulate_branches(fast=True)``), the multicore private/shared
  hierarchy (``simulate_multicore(fast=True)``) and the SIMT L2
  accounting (``KernelAccum(fused=True)``), each cross-validated bitwise
  against the loop reference it replaces.

Three things are measured and asserted:

1. **Equivalence gate** — for every workload x machine cell the fast
   configuration (vectorized kernels + content-addressed
   :class:`TraceStore` + fused engines) must report the *identical*
   metric summary the baseline (loop kernels re-executed per cell,
   reference multi-pass simulators) reports.  No tolerance: same dict,
   same bits.
2. **Engine gates** — fused CPU replay miss masks, fused multicore
   stats and fused SIMT stats must match their references bit for bit
   on a real workload trace.
3. **Sweep speedup** — wall-clock for the full workloads x machines
   characterization sweep, fast vs. baseline.  Acceptance floor: **10x**
   at the standard scale (0.08); 2x at smoke scales, where fixed
   overheads dominate the shrunken work.

Results land in ``BENCH_replay.json``.  ``REPRO_BENCH_SCALE`` shrinks the
dataset for CI smoke runs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replay_fastpath.py
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.arch import MemoryHierarchy, TLB, replay
from repro.arch.machine import SCALED_XEON, MachineConfig
from repro.core.tracestore import TraceStore
from repro.datagen.registry import make as make_dataset
from repro.harness import format_table
from repro.harness.runner import clear_cache, run_cpu_workload
from repro.parallel.trace_sim import simulate_multicore
from repro.workloads._bulk import loop_reference_kernels

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
# the four vectorized kernels, one per paper computation class: BFS
# (CompProp traversal), TC (CompStruct, orientation-pass heavy), CComp
# (bidirectional label propagation), kCore (iterative peel)
WORKLOAD_SET = ("BFS", "TC", "CComp", "kCore")
# fixed per-cell overheads dominate tiny smoke datasets, so the floor is
# scale-dependent: the headline 10x holds at the standard scale
SPEEDUP_FLOOR = 10.0 if SCALE >= 0.08 else 2.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_replay.json"


def _machines() -> list[MachineConfig]:
    """SCALED_XEON plus seven cache-geometry variants — the shape of an
    LLC/L2 sensitivity sweep (same trace, eight hierarchies).

    Five of the variants perturb only the L3 (the axis the paper's LLC
    discussion cares about: Fig. 7's MPKI is LLC-bound); two perturb the
    L2.  Sweeping the LLC axis densely is exactly the workload the fused
    replay engine amortizes: one trace execution, one L1/L2 walk, then a
    marginal L3-only walk per extra machine.
    """
    base = SCALED_XEON
    variants = [base]
    for tag, l2_num, l2_den, l3_num, l3_den, a2, a3 in (
            ("double-llc", 1, 1, 2, 1, base.l2.assoc, base.l3.assoc),
            ("half-llc", 1, 1, 1, 2, base.l2.assoc, base.l3.assoc),
            ("quarter-llc", 1, 1, 1, 4, base.l2.assoc, base.l3.assoc),
            ("eighth-llc", 1, 1, 1, 8, base.l2.assoc, base.l3.assoc),
            ("llc-low-assoc", 1, 1, 1, 1, base.l2.assoc, 4),
            ("half-l2", 1, 2, 1, 1, base.l2.assoc, base.l3.assoc),
            ("low-assoc", 1, 1, 1, 1, 2, 4)):
        variants.append(dataclasses.replace(
            base,
            name=f"{base.name}/{tag}",
            l2=dataclasses.replace(base.l2,
                                   size=base.l2.size * l2_num // l2_den,
                                   assoc=a2),
            l3=dataclasses.replace(base.l3,
                                   size=base.l3.size * l3_num // l3_den,
                                   assoc=a3)))
    return variants


def _sweep(spec, machines, *, trace_store, fast):
    """Run every workload on every machine; return {(w, m): summary}."""
    out = {}
    for wname in WORKLOAD_SET:
        for m in machines:
            _, cpu = run_cpu_workload(wname, spec, machine=m,
                                      trace_store=trace_store, fast=fast)
            out[(wname, m.name)] = cpu.summary()
    return out


def _bitwise_gate(trace, machines) -> int:
    """Fused CPU engine vs. reference simulators on a real workload trace:
    per-access miss masks and latency must match bit for bit."""
    checked = 0
    for m in machines:
        rep = replay(trace.addrs, trace.rw, m)
        ref = MemoryHierarchy(m).simulate(trace.addrs, trace.rw)
        tlb = TLB(m.tlb)
        ref_tlb_miss = tlb.simulate(trace.addrs)
        assert np.array_equal(ref.l1_miss, rep.hierarchy.l1_miss)
        assert np.array_equal(ref.l2_miss, rep.hierarchy.l2_miss)
        assert np.array_equal(ref.l3_miss, rep.hierarchy.l3_miss)
        assert np.array_equal(ref.latency, rep.hierarchy.latency)
        assert np.array_equal(ref_tlb_miss, rep.tlb_miss)
        assert ref.l1 == rep.hierarchy.l1
        assert ref.l2 == rep.hierarchy.l2
        assert ref.l3 == rep.hierarchy.l3
        assert tlb.stats() == rep.tlb
        checked += 1
    return checked


def _multicore_gate(trace, machine) -> int:
    """Fused multicore engine vs. the per-core multi-pass reference:
    aggregate L1/L2 and shared-L3 stats must be identical."""
    checked = 0
    for p in (1, 2, 4):
        fused = simulate_multicore(trace, machine, p=p, fast=True)
        ref = simulate_multicore(trace, machine, p=p, fast=False)
        assert fused == ref, (p, fused, ref)
        checked += 1
    return checked


def _gpu_gate(spec) -> int:
    """Fused (deferred, MRU-prefiltered) SIMT L2 accounting vs. the
    inline reference, across every GPU kernel: identical KernelStats."""
    from repro.gpu.device import K40
    from repro.gpu.runner import GPU_KERNELS, UNDIRECTED_KERNELS, csr_to_coo
    checked = 0
    for name, cls in sorted(GPU_KERNELS.items()):
        csr = spec.csr()
        if name in UNDIRECTED_KERNELS:
            csr = csr.undirected()
        coo = csr_to_coo(csr)
        _, fused = cls().run(csr, coo, l2_bytes=K40.l2_bytes, fused=True)
        _, ref = cls().run(csr, coo, l2_bytes=K40.l2_bytes, fused=False)
        assert dataclasses.asdict(fused) == dataclasses.asdict(ref), name
        checked += 1
    return checked


def run_replay_benchmark() -> dict:
    spec = make_dataset("ldbc", scale=SCALE, seed=SEED)
    machines = _machines()

    result, _ = run_cpu_workload("BFS", spec, machine=machines[0])
    trace = result.trace
    masks_checked = _bitwise_gate(trace, machines)
    multicore_checked = _multicore_gate(trace, machines[0])
    gpu_checked = _gpu_gate(spec)

    clear_cache()
    t0 = time.perf_counter()
    with loop_reference_kernels():
        slow = _sweep(spec, machines, trace_store=None, fast=False)
    t_slow = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        clear_cache()
        t0 = time.perf_counter()
        fast = _sweep(spec, machines, trace_store=store, fast=True)
        t_fast = time.perf_counter() - t0
        store_stats = store.stats.as_dict()

    cells = len(WORKLOAD_SET) * len(machines)
    mismatched = [f"{w}@{m}" for (w, m) in slow
                  if slow[(w, m)] != fast[(w, m)]]
    speedup = t_slow / t_fast if t_fast else float("inf")

    return {
        "config": {"scale": SCALE, "seed": SEED,
                   "workloads": list(WORKLOAD_SET),
                   "machines": [m.name for m in machines],
                   "cells": cells},
        "equivalence": {"cells_compared": cells,
                        "mismatched_cells": mismatched,
                        "bitwise_mask_machines": masks_checked,
                        "multicore_configs": multicore_checked,
                        "gpu_kernels": gpu_checked,
                        "identical": not mismatched},
        "baseline_s": round(t_slow, 4),
        "fastpath_s": round(t_fast, 4),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "trace_store": store_stats,
    }


def _render(results: dict) -> str:
    rows = [["baseline (loop kernels + reference sims)",
             results["baseline_s"], "1.0x"],
            ["fast (vectorized kernels + fused replay)",
             results["fastpath_s"], f"{results['speedup']:.1f}x"]]
    return format_table(
        ["configuration", "sweep_s", "speedup"], rows,
        title=(f"{results['config']['cells']}-cell machine sweep "
               f"(scale={results['config']['scale']})"))


def test_replay_fastpath_equivalence_and_speedup():
    results = run_replay_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results)
         + f"\ntrace store: {results['trace_store']}"
         + f"\nequivalence: {results['equivalence']}")
    assert results["equivalence"]["identical"], \
        results["equivalence"]["mismatched_cells"]
    assert results["speedup"] >= SPEEDUP_FLOOR, results


if __name__ == "__main__":
    results = run_replay_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    print(f"trace store: {results['trace_store']}")
    print(f"equivalence: {results['equivalence']}")
    print(f"wrote {OUT_PATH}")
