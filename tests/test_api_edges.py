"""API edge cases across the public surface."""

import numpy as np
import pytest

from repro.core.errors import VertexNotFound
from repro.workloads import common_edge_schema, common_vertex_schema
from tests.conftest import build


class TestWorkloadParameterErrors:
    def test_bfs_missing_root(self, tiny_spec):
        from repro import workloads as W
        g = build(tiny_spec)
        with pytest.raises(VertexNotFound):
            W.run("BFS", g, root=10 ** 9)

    def test_spath_missing_root(self, tiny_spec):
        from repro import workloads as W
        g = build(tiny_spec)
        with pytest.raises(VertexNotFound):
            W.run("SPath", g, root=-5)

    def test_dfs_missing_root(self, tiny_spec):
        from repro import workloads as W
        g = build(tiny_spec)
        with pytest.raises(VertexNotFound):
            W.run("DFS", g, root=10 ** 9)


class TestSpecMaterializations:
    def test_coo(self, tiny_spec):
        coo = tiny_spec.coo()
        assert coo.m == tiny_spec.m
        pairs = set(zip(coo.src.tolist(), coo.dst.tolist()))
        for s, d in tiny_spec.edges:
            assert (int(s), int(d)) in pairs

    def test_make_kwargs_passthrough(self):
        from repro.datagen import make
        spec = make("ldbc", scale=0.05, seed=1, avg_degree=6)
        assert spec.m == pytest.approx(spec.n * 6, rel=0.4)

    def test_build_with_tracer_traces_populate(self, tiny_spec):
        from repro.core.trace import Tracer
        t = Tracer()
        tiny_spec.build(vertex_schema=common_vertex_schema(),
                        edge_schema=common_edge_schema(), tracer=t)
        assert t.n_accesses > tiny_spec.m     # GCons-style build traffic


class TestReportHelpers:
    def test_bar(self):
        from repro.harness import bar
        assert bar(5, 10, width=10) == "#####"
        assert bar(20, 10, width=10) == "#" * 10
        assert bar(1, 0) == ""

    def test_paper_note(self):
        from repro.harness import paper_note
        assert "paper:" in paper_note("something")


class TestPaperXeon:
    def test_runs_on_trace(self):
        from repro.arch import CPUModel, MemoryHierarchy, PAPER_XEON
        from repro.core.trace import Tracer
        t = Tracer()
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 22, 500) & ~7).astype(np.uint64)
        for a in addrs.tolist():
            t.i(6)
            t.r(a)
        m = CPUModel(PAPER_XEON).run(t.freeze())
        assert m.ipc > 0
        # the unscaled 20 MB LLC swallows a toy footprint: a second pass
        # over the same addresses is all L3 hits
        hier = MemoryHierarchy(PAPER_XEON)
        hier.simulate(addrs)
        second = hier.simulate(addrs)
        assert not second.l3_miss.any()


class TestIndexWithLiveTracer:
    def test_build_traced(self):
        from repro.core.graph import PropertyGraph
        from repro.core.index import create_index
        from repro.core.properties import Field, Schema
        from repro.core.trace import Tracer
        t = Tracer()
        g = PropertyGraph(Schema([Field("k", default=0)]), tracer=t)
        for i in range(10):
            g.add_vertex(i, k=i % 3)
        n_before = t.n_accesses
        idx = create_index(g, "k")
        assert t.n_accesses > n_before     # build pass is traced
        assert idx.count(0) == 4


class TestGPURunnerParams:
    def test_bcentr_sampled(self, tiny_spec):
        from repro.gpu import run_gpu_workload
        out, m = run_gpu_workload("BCentr", tiny_spec, n_sources=3,
                                  seed=1)
        assert out["n_sources"] == 3
        assert m.exec_time > 0

    def test_custom_device(self, tiny_spec):
        from repro.gpu import DeviceConfig, run_gpu_workload
        slow = DeviceConfig(n_sms=1, clock_ghz=0.1, peak_bw_gbs=10)
        _, fast_m = run_gpu_workload("BFS", tiny_spec)
        _, slow_m = run_gpu_workload("BFS", tiny_spec, device=slow)
        assert slow_m.exec_time > fast_m.exec_time
