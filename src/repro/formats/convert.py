"""Conversions between the dynamic vertex-centric graph and CSR/COO.

This is the *graph populating* step of Section 4.1: GraphBIG's GPU
benchmarks convert the dynamic vertex-centric CPU graph into CSR/COO before
transferring it to device memory.  Vertex ids are compacted to a dense
``0..n-1`` range (dynamic graphs can have holes after deletions); the
mapping is returned so results can be reported in original ids.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import PropertyGraph
from .coo import COOGraph
from .csr import CSRGraph, from_edge_arrays


def compact_ids(g: PropertyGraph) -> tuple[np.ndarray, dict[int, int]]:
    """Return ``(orig_ids_sorted, orig_id -> dense_id)`` for ``g``."""
    ids = np.asarray(sorted(g.vertex_ids()), dtype=np.int64)
    return ids, {int(v): i for i, v in enumerate(ids)}


def to_edge_arrays(g: PropertyGraph,
                   weight_prop: str | None = None
                   ) -> tuple[int, np.ndarray, np.ndarray, np.ndarray | None,
                              np.ndarray]:
    """Flatten ``g`` to ``(n, src, dst, vals, orig_ids)`` with dense ids."""
    ids, remap = compact_ids(g)
    src: list[int] = []
    dst: list[int] = []
    vals: list[float] = []
    want_vals = weight_prop is not None
    tracer = g.detach_tracer()   # populate/transfer is not part of the kernel
    try:
        for vid in ids:
            v = g.find_vertex(int(vid))
            for d, node in v.out.items():
                src.append(remap[int(vid)])
                dst.append(remap[d])
                if want_vals:
                    vals.append(float(g.eget(node, weight_prop)))
    finally:
        if tracer is not None:
            g.attach_tracer(tracer)
    return (len(ids),
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(vals, dtype=np.float64) if want_vals else None,
            ids)


def to_csr(g: PropertyGraph, weight_prop: str | None = None
           ) -> tuple[CSRGraph, np.ndarray]:
    """Convert to CSR; returns ``(csr, orig_ids)``."""
    n, src, dst, vals, ids = to_edge_arrays(g, weight_prop)
    return from_edge_arrays(n, src, dst, vals), ids


def to_coo(g: PropertyGraph, weight_prop: str | None = None
           ) -> tuple[COOGraph, np.ndarray]:
    """Convert to COO; returns ``(coo, orig_ids)``."""
    n, src, dst, vals, ids = to_edge_arrays(g, weight_prop)
    return COOGraph(n, src, dst, vals), ids


def csr_to_coo(csr: CSRGraph) -> COOGraph:
    """Expand a CSR's implicit row structure into explicit sources."""
    src = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    return COOGraph(csr.n, src, csr.col_idx.copy(),
                    None if csr.vals is None else csr.vals.copy())


def coo_to_csr(coo: COOGraph) -> CSRGraph:
    """Sort a COO's edges by source into CSR form."""
    return from_edge_arrays(coo.n, coo.src, coo.dst, coo.vals)


def from_csr(csr: CSRGraph, **graph_kwargs) -> PropertyGraph:
    """Materialize a CSR back into a dynamic vertex-centric graph."""
    g = PropertyGraph(**graph_kwargs)
    for v in range(csr.n):
        g.add_vertex(v)
    for v in range(csr.n):
        for d in csr.neighbors(v):
            if int(d) not in g.find_vertex(v).out:
                g.add_edge(v, int(d))
    return g
