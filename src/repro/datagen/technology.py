"""Man-made technology-network generator: CA road-network-like graph.

Paper Table 2, type 4: regular topology, small vertex degrees.  The CA
road network (1.9M nodes, 2.8M undirected edges, avg degree ≈ 2.9) is a
near-planar mesh: intersections connected to a handful of geographic
neighbours, with a huge diameter.  Fig. 12/13 attribute the low GPU branch
divergence on this dataset to its "quite low vertex degrees".
"""

from __future__ import annotations

import numpy as np

from ..core.taxonomy import DataSource
from .spec import GraphSpec


def ca_road(n_vertices: int = 7600, drop_fraction: float = 0.27,
            diagonal_fraction: float = 0.02, seed: int = 0) -> GraphSpec:
    """Perturbed 2-D lattice road network (undirected).

    A ``side x side`` grid (side = ceil(sqrt(n)))'s 4-neighbour edges,
    with ``drop_fraction`` removed (dead ends, rivers) and a sprinkle of
    diagonal shortcuts (highways).  Default drop keeps the giant component
    and lands the average degree near the real network's ~2.9.
    """
    if n_vertices < 16:
        raise ValueError("n_vertices must be >= 16")
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(n_vertices)))
    n = side * side
    idx = np.arange(n).reshape(side, side)
    right = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    edges = np.concatenate([right, down])
    keep = rng.random(len(edges)) >= drop_fraction
    edges = edges[keep]
    n_diag = int(len(edges) * diagonal_fraction)
    if n_diag:
        r = rng.integers(0, side - 1, n_diag)
        c = rng.integers(0, side - 1, n_diag)
        diag = np.column_stack([idx[r, c], idx[r + 1, c + 1]])
        edges = np.concatenate([edges, diag])
    # trim to exactly n_vertices by discarding out-of-range endpoints
    keep = (edges < n_vertices).all(axis=1)
    return GraphSpec("CA-RoadNet", DataSource.TECHNOLOGY, n_vertices,
                     edges[keep], directed=False,
                     meta={"side": side, "seed": seed})
