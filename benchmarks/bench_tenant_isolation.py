"""Tenant isolation and hot-shard recovery: the QoS subsystem's claims.

Two claims, measured end to end and gated (results land in
``BENCH_qos.json``):

**Isolation (single service).**  A quiet, latency-sensitive tenant
shares a 2-slot service with a noisy tenant that floods diverse,
expensive queries.  Three arms drive the same quiet request stream:

* ``alone`` — the quiet tenant by itself: the baseline p99;
* ``off``   — noisy neighbour, no governor: the noisy tenant's distinct
  cells churn the shared row cache and monopolise the pool, so the
  quiet tenant recomputes and queues;
* ``on``    — same traffic through a :class:`TenantGovernor`: the noisy
  tenant is rate-limited, weighted down at the fair gate, and confined
  to its own cache partition.

The gate is a *ratio*, not an absolute latency (machines vary; the
contrast does not): quiet p99 with QoS on must stay within
``MAX_P99_RATIO`` (2x) of the alone baseline, while the unbounded off
arm exceeds it.

**Hot-shard recovery (cluster).**  Zipf-skewed traffic concentrates on
the shard owning the hot datasets; the :class:`HotspotDetector` names
the shard and its keys from routing deltas alone; a spare shard joins
and the report-only :class:`RebalancePlan` is executed *live* by the
:class:`RebalanceExecutor` while a checker thread keeps querying and
writing every dataset.  Gates: the checker sees zero failures (every
key answerable throughout the handoff — ``WrongShard`` never surfaces),
mutated state survives the move (version continuity), and post-
migration throughput on the widened topology recovers to at least
``MIN_RECOVERY`` of the pre-hotspot rate.

``QOS_BENCH_TINY=1`` shrinks request counts for CI smoke runs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_tenant_isolation.py
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from pathlib import Path
from typing import Any

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.cluster import ClusterSpec, ClusterThread, plan_rebalance
from repro.dynamic.ops import churn_ops
from repro.harness import format_table
from repro.obs.metrics import percentile
from repro.service import (
    CacheTiers,
    GraphService,
    LoadGenerator,
    PoolConfig,
    Query,
    SchedulerConfig,
    ServiceClient,
    ServiceThread,
    workload_mix,
)
from repro.tenancy import (
    HotspotDetector,
    QosConfig,
    RebalanceExecutor,
    TenantGovernor,
    TenantPolicy,
)

TINY = bool(os.environ.get("QOS_BENCH_TINY"))

# -- isolation arm shape -----------------------------------------------------
QUIET, NOISY = "quiet", "noisy"
N_QUIET = 15 if TINY else 40          # quiet tenant's measured requests
N_NOISY = 30 if TINY else 80          # noisy tenant's flood
NOISY_SEEDS = 4 if TINY else 8        # distinct cells per noisy workload
SCALE = 0.03
CONCURRENCY = 8
ROW_CAPACITY = 8                      # small: the noisy flood churns it
MAX_P99_RATIO = 2.0                   # the acceptance gate

# -- hotspot/migration shape -------------------------------------------------
# hot-first order: ldbc/roadnet/knowledge are shard-0's keys on the
# 2-shard ring, so the zipf skew concentrates load on shard-0
DATASETS = ("ldbc", "roadnet", "knowledge", "twitter", "watson")
N_CLUSTER = 60 if TINY else 150
CLUSTER_SKEW = 1.3
SEED = 11
MIN_RECOVERY = 0.6                    # post/pre throughput floor

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_qos.json"


# -- part A: tenant isolation ------------------------------------------------

def _isolation_plan(include_noisy: bool) -> list[Query]:
    """Deterministic interleave of the quiet tenant's repeated cheap
    query with the noisy tenant's diverse expensive ones."""
    quiet = [Query(op="run",
                   params={"workload": "BFS", "dataset": "roadnet",
                           "scale": SCALE, "seed": 0,
                           "machine": "test"},
                   tenant=QUIET)
             for _ in range(N_QUIET)]
    if not include_noisy:
        return quiet
    pool = workload_mix(("BFS", "CComp", "kCore"), ("ldbc",),
                        scale=SCALE, seeds=NOISY_SEEDS, machine="test")
    noisy = [Query(op=q.op, params=q.params, tenant=NOISY)
             for i in range(N_NOISY)
             for q in (pool[i % len(pool)],)]
    plan = quiet + noisy
    random.Random(f"qos-bench:{SEED}").shuffle(plan)
    return plan


def _governor() -> TenantGovernor:
    return TenantGovernor(QosConfig(
        policies={
            NOISY: TenantPolicy(rate=20.0, burst=4.0, weight=0.25,
                                cache_share=0.5),
            QUIET: TenantPolicy(weight=4.0),
        },
        fair_slots=2, row_capacity=ROW_CAPACITY))


def _isolation_arm(name: str, include_noisy: bool,
                   governed: bool) -> dict[str, Any]:
    service = GraphService(
        pool_config=PoolConfig(size=2, isolation="inline"),
        scheduler_config=SchedulerConfig(max_pending=256),
        caches=CacheTiers.build(row_capacity=ROW_CAPACITY),
        governor=_governor() if governed else None)
    plan = _isolation_plan(include_noisy)
    with ServiceThread(service) as st:
        # warm the quiet tenant's single cell so its baseline measures
        # the steady state (cache-served), not the one-time cold fill
        with ServiceClient(st.host, st.port, tenant=QUIET) as warm:
            warm.request("run", workload="BFS", dataset="roadnet",
                         scale=SCALE, seed=0, machine="test")
        report = LoadGenerator(st.host, st.port,
                               concurrency=CONCURRENCY,
                               timeout_s=300).run(plan)
    quiet_lat = report.tenant_latencies_ms.get(QUIET, [])
    return {
        "arm": name,
        "requests": report.requests,
        "ok": report.ok,
        "failed": report.failed,
        "failures_by_kind": dict(report.failures_by_kind),
        "quiet_ok": len(quiet_lat),
        "quiet_p50_ms": round(percentile(quiet_lat, 50), 3),
        "quiet_p99_ms": round(percentile(quiet_lat, 99), 3),
        "noisy_failures": dict(
            report.tenant_failures.get(NOISY, {})),
        "served": dict(report.served),
    }


def run_isolation() -> dict[str, Any]:
    arms = [
        _isolation_arm("alone", include_noisy=False, governed=False),
        _isolation_arm("off", include_noisy=True, governed=False),
        _isolation_arm("on", include_noisy=True, governed=True),
    ]
    by = {a["arm"]: a for a in arms}
    base = max(by["alone"]["quiet_p99_ms"], 1e-3)
    headline = {
        "quiet_p99_alone_ms": by["alone"]["quiet_p99_ms"],
        "p99_ratio_off": round(by["off"]["quiet_p99_ms"] / base, 2),
        "p99_ratio_on": round(by["on"]["quiet_p99_ms"] / base, 2),
        "max_p99_ratio": MAX_P99_RATIO,
        "noisy_shed_on": sum(
            by["on"]["noisy_failures"].values()),
    }
    return {"arms": arms, "headline": headline}


# -- part B: hotspot detection + live migration ------------------------------

def _cluster_plan() -> list[Query]:
    """Zipf-skewed dyn_query traffic, hot-first dataset order."""
    from repro.service import schedule
    mix = workload_mix(("BFS",), DATASETS, scale=0.05, seeds=1,
                       op="dyn_query")
    return schedule(mix, N_CLUSTER, seed=SEED,
                    dataset_skew=CLUSTER_SKEW)


def run_hotspot_recovery() -> dict[str, Any]:
    spec = ClusterSpec.of(2, datasets=DATASETS)
    ring = spec.ring()
    plan = _cluster_plan()
    rng = random.Random(SEED)
    out: dict[str, Any] = {}
    with ClusterThread(spec, spares=("spare-0",),
                       router_kwargs=dict(attempt_timeout_s=30,
                                          fanout_timeout_s=10,
                                          probe_interval_s=0.2)) as ct:
        router = ct.router
        gen = LoadGenerator("127.0.0.1", ct.router_port,
                            concurrency=4, timeout_s=120)

        # mutated state that must survive the migration
        with ServiceClient(port=ct.router_port) as client:
            for _ in range(3):
                client.mutate("ldbc", churn_ops(rng, 200, 6),
                              scale=0.05, seed=0)
            committed = client.dyn_query("BFS", "ldbc",
                                         scale=0.05)["version"]

        detector = HotspotDetector(router, ratio=1.4, min_total=20)
        detector.sample()                       # prime the window
        pre = gen.run(plan)                     # the hotspot window
        hot = detector.sample()
        out["hotspot"] = hot.as_dict()

        # live migration onto the spare while a checker exercises
        # every key (reads everywhere, writes on the hot key)
        failures: list[str] = []
        checked = [0]
        stop = threading.Event()

        def checker() -> None:
            with ServiceClient(port=ct.router_port,
                               timeout_s=60) as c:
                i = 0
                while not stop.is_set():
                    ds = DATASETS[i % len(DATASETS)]
                    try:
                        c.dyn_query("BFS", ds, scale=0.05)
                        if ds == "ldbc":
                            c.mutate("ldbc", churn_ops(rng, 200, 2),
                                     scale=0.05, seed=0)
                        checked[0] += 1
                    except BaseException as e:  # noqa: BLE001
                        failures.append(f"{type(e).__name__}: {e}")
                        return
                    i += 1

        thread = threading.Thread(target=checker, daemon=True)
        thread.start()
        time.sleep(0.2)

        rebalance = plan_rebalance(ring, ring.with_node("spare-0"),
                                   list(DATASETS))
        executor = RebalanceExecutor(
            router, {**ct.shard_addresses, **ct.spare_addresses},
            handoff_window_s=10.0)
        migration = executor.execute(
            rebalance, join=ct.spare_addresses["spare-0"])
        time.sleep(0.2)
        stop.set()
        thread.join(timeout=60)

        post = gen.run(plan)                    # widened topology
        spread = detector.sample()

        with ServiceClient(port=ct.router_port) as client:
            surviving = client.dyn_query("BFS", "ldbc",
                                         scale=0.05)["version"]
            answerable = all(
                client.dyn_query("BFS", ds, scale=0.05) is not None
                for ds in DATASETS)

        out.update({
            "plan": rebalance.summary(),
            "migration": migration.as_dict(),
            "checker": {"requests": checked[0],
                        "failures": failures},
            "pre": {"throughput_rps": round(pre.throughput_rps, 2),
                    "availability": pre.availability,
                    "p99_ms": round(pre.latency_ms(99), 3)},
            "post": {"throughput_rps": round(post.throughput_rps, 2),
                     "availability": post.availability,
                     "p99_ms": round(post.latency_ms(99), 3)},
            "post_shard_deltas": spread.shard_deltas,
            "version_pre_migration": committed,
            "version_post_migration": surviving,
            "all_keys_answerable": answerable,
        })
    out["headline"] = {
        "hot_shard_detected": "shard-0" in out["hotspot"]["hot_shards"],
        "checker_failures": len(out["checker"]["failures"]),
        "recovery_ratio": round(
            out["post"]["throughput_rps"]
            / max(out["pre"]["throughput_rps"], 1e-9), 3),
        "min_recovery": MIN_RECOVERY,
        "versions_survived": (out["version_post_migration"]
                              >= out["version_pre_migration"]),
    }
    return out


# -- assembly ----------------------------------------------------------------

def run_qos_benchmark() -> dict[str, Any]:
    return {"tiny": TINY,
            "isolation": run_isolation(),
            "hotspot_recovery": run_hotspot_recovery()}


def _render(results: dict[str, Any]) -> str:
    iso = results["isolation"]
    rows = [[a["arm"], a["quiet_ok"], a["quiet_p50_ms"],
             a["quiet_p99_ms"],
             sum(a["noisy_failures"].values()) or ""]
            for a in iso["arms"]]
    table = format_table(
        ["arm", "quiet ok", "quiet p50 ms", "quiet p99 ms",
         "noisy shed"],
        rows, title="tenant isolation (quiet tenant's view)")
    h = iso["headline"]
    rec = results["hotspot_recovery"]["headline"]
    return (table
            + f"\np99 ratio vs alone: off={h['p99_ratio_off']}x, "
            f"on={h['p99_ratio_on']}x (gate {h['max_p99_ratio']}x)"
            + f"\nhotspot: detected={rec['hot_shard_detected']}, "
            f"checker failures={rec['checker_failures']}, "
            f"throughput recovery={rec['recovery_ratio']}x "
            f"(floor {rec['min_recovery']}x)")


def _check(results: dict[str, Any]) -> None:
    h = results["isolation"]["headline"]
    # the acceptance contract: QoS keeps the quiet tenant inside 2x of
    # its alone baseline while the ungoverned arm blows through it
    assert h["p99_ratio_on"] <= h["max_p99_ratio"], h
    assert h["p99_ratio_off"] > h["max_p99_ratio"], h
    assert h["p99_ratio_off"] > h["p99_ratio_on"], h
    rec = results["hotspot_recovery"]
    rh = rec["headline"]
    assert rh["hot_shard_detected"], rec["hotspot"]
    assert rh["checker_failures"] == 0, rec["checker"]
    assert rec["checker"]["requests"] > 0, rec["checker"]
    assert rh["versions_survived"], rec
    assert rec["all_keys_answerable"], rec
    assert rec["pre"]["availability"] == 1.0, rec["pre"]
    assert rec["post"]["availability"] == 1.0, rec["post"]
    assert rh["recovery_ratio"] >= rh["min_recovery"], rh
    assert rec["migration"]["keys"], rec["migration"]


def test_tenant_isolation_and_recovery():
    results = run_qos_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results))
    _check(results)


if __name__ == "__main__":
    results = run_qos_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    _check(results)
    print(f"\nwrote {OUT_PATH}")
