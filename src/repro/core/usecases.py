"""Real-world use-case catalogue and the workload-selection flow.

Reproduces the paper's Section 4.1 methodology artefacts: the 21 System G
use cases across six application categories (Fig. 4(B)), the per-workload
use-case counts (Fig. 4(A): BFS used by 10 use cases, TC by 4), and the
summarize → select → merge/reselect flow of Fig. 3 that guarantees every
computation type and data-source type is covered.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .taxonomy import ComputationType, DataSource

#: The six application categories of Fig. 4(B) with their use-case share.
CATEGORIES: dict[str, float] = {
    "cognitive computing": 0.24,
    "exploration and science": 0.24,
    "data warehouse augmentation": 0.14,
    "operations analysis": 0.14,
    "security": 0.14,
    "data exploration / 360 degree view": 0.10,
}


@dataclass(frozen=True)
class UseCase:
    """One industrial use case: its category and the workloads it employs."""

    name: str
    category: str
    workloads: tuple[str, ...]
    data_sources: tuple[DataSource, ...]


# 21 use cases; workload memberships are arranged so that the per-workload
# counts reproduce Fig. 4(A): BFS=10 ... TC=4.
USE_CASES: tuple[UseCase, ...] = (
    UseCase("fraud-ring detection", "security",
            ("BFS", "CComp", "DCentr"), (DataSource.SOCIAL,)),
    UseCase("cybersecurity flow analysis", "security",
            ("BFS", "SPath", "GCons"), (DataSource.TECHNOLOGY,)),
    UseCase("insider-threat monitoring", "security",
            ("BFS", "GUp", "BCentr"), (DataSource.SOCIAL,)),
    UseCase("drug-target discovery", "cognitive computing",
            ("Gibbs", "TMorph", "kCore"), (DataSource.NATURE,)),
    UseCase("clinical decision support", "cognitive computing",
            ("Gibbs", "BFS", "SPath"), (DataSource.NATURE,)),
    UseCase("visual question answering", "cognitive computing",
            ("Gibbs", "DFS", "TC"), (DataSource.INFORMATION,)),
    UseCase("expert-system diagnosis", "cognitive computing",
            ("Gibbs", "TMorph", "DFS"), (DataSource.NATURE,)),
    UseCase("knowledge-base completion", "cognitive computing",
            ("BFS", "TC", "DCentr"), (DataSource.INFORMATION,)),
    UseCase("gene-interaction exploration", "exploration and science",
            ("kCore", "CComp", "GColor"), (DataSource.NATURE,)),
    UseCase("materials-science screening", "exploration and science",
            ("DFS", "GCons", "GColor"), (DataSource.NATURE,)),
    UseCase("citation-impact analysis", "exploration and science",
            ("BCentr", "DCentr", "kCore"), (DataSource.INFORMATION,)),
    UseCase("protein-pathway mapping", "exploration and science",
            ("SPath", "CComp", "TMorph"), (DataSource.NATURE,)),
    UseCase("telescope-survey clustering", "exploration and science",
            ("CComp", "GCons", "kCore"), (DataSource.SYNTHETIC,)),
    UseCase("ETL graph ingestion", "data warehouse augmentation",
            ("GCons", "GUp", "BFS"), (DataSource.INFORMATION,)),
    UseCase("master-data deduplication", "data warehouse augmentation",
            ("CComp", "TC", "GUp"), (DataSource.INFORMATION,)),
    UseCase("schema-lineage tracking", "data warehouse augmentation",
            ("DFS", "GCons", "BFS"), (DataSource.INFORMATION,)),
    UseCase("supply-chain optimization", "operations analysis",
            ("SPath", "BCentr", "GUp"), (DataSource.TECHNOLOGY,)),
    UseCase("datacenter dependency analysis", "operations analysis",
            ("BFS", "DFS", "GColor"), (DataSource.TECHNOLOGY,)),
    UseCase("road-traffic planning", "operations analysis",
            ("SPath", "BFS", "DCentr"), (DataSource.TECHNOLOGY,)),
    UseCase("social recommendation", "data exploration / 360 degree view",
            ("BFS", "TC", "BCentr", "DCentr"), (DataSource.SOCIAL,)),
    UseCase("customer 360 view", "data exploration / 360 degree view",
            ("GUp", "GCons", "kCore", "BCentr"), (DataSource.SOCIAL,)),
)


def workload_usecase_counts() -> dict[str, int]:
    """Number of use cases employing each workload (Fig. 4(A))."""
    c: Counter[str] = Counter()
    for uc in USE_CASES:
        for w in uc.workloads:
            c[w] += 1
    return dict(c)


def category_distribution() -> dict[str, float]:
    """Fraction of use cases per application category (Fig. 4(B))."""
    c: Counter[str] = Counter(uc.category for uc in USE_CASES)
    total = sum(c.values())
    return {k: v / total for k, v in c.items()}


def select_workloads(min_usecases: int = 4) -> list[str]:
    """The *select* step of Fig. 3: keep workloads by popularity."""
    return sorted((w for w, n in workload_usecase_counts().items()
                   if n >= min_usecases),
                  key=lambda w: -workload_usecase_counts()[w])


def coverage_check(selected: list[str],
                   workload_types: dict[str, ComputationType]) -> set[ComputationType]:
    """The *merge/reselect* step of Fig. 3: computation types not yet
    covered by ``selected`` (empty set = full coverage)."""
    covered = {workload_types[w] for w in selected if w in workload_types}
    return set(ComputationType) - covered
