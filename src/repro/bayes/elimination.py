"""Exact marginal inference by variable elimination.

Strengthens the Gibbs workload's validation story: brute-force joint
enumeration (``exact_marginals_brute_force``) caps out around 2^20 joint
states, but MUNIN-scale diagnostic networks are far beyond that.  Variable
elimination computes exact single-variable marginals in time exponential
only in the induced width of the elimination order — tractable for the
sparse, shallow DAGs the Gibbs workload runs on — giving an exact oracle
at realistic sizes.

Factors are dense numpy tensors over variable scopes; elimination follows
the classic sum-product schedule with a min-degree ordering heuristic.
"""

from __future__ import annotations

import numpy as np

from .network import BayesianNetwork


class Factor:
    """Dense factor: a tensor over an ordered tuple of variables."""

    __slots__ = ("vars", "table")

    def __init__(self, variables: tuple[int, ...], table: np.ndarray):
        table = np.asarray(table, dtype=np.float64)
        if table.ndim != len(variables):
            raise ValueError("table rank must match variable count")
        self.vars = tuple(variables)
        self.table = table

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union scope."""
        union = list(self.vars)
        union.extend(v for v in other.vars if v not in self.vars)
        a = self._broadcast(union)
        b = other._broadcast(union)
        return Factor(tuple(union), a * b)

    def _broadcast(self, union: list[int]) -> np.ndarray:
        """Own table permuted into union order, size-1 axes inserted."""
        order = [self.vars.index(v) for v in union if v in self.vars]
        arr = np.transpose(self.table, order) if order else self.table
        shape = []
        i = 0
        for v in union:
            if v in self.vars:
                shape.append(arr.shape[i])
                i += 1
            else:
                shape.append(1)
        return arr.reshape(shape)

    def sum_out(self, var: int) -> "Factor":
        """Marginalize ``var`` away."""
        if var not in self.vars:
            return self
        axis = self.vars.index(var)
        new_vars = tuple(v for v in self.vars if v != var)
        return Factor(new_vars, self.table.sum(axis=axis))

    def reduce(self, var: int, value: int) -> "Factor":
        """Condition on ``var = value`` (drops the axis)."""
        if var not in self.vars:
            return self
        axis = self.vars.index(var)
        new_vars = tuple(v for v in self.vars if v != var)
        return Factor(new_vars, np.take(self.table, value, axis=axis))

    @property
    def scalar(self) -> float:
        if self.vars:
            raise ValueError("factor is not fully summed out")
        return float(self.table)


def _cpt_factor(bn: BayesianNetwork, v: int) -> Factor:
    """The CPT of variable ``v`` as a factor over (parents..., v)."""
    cpt = bn.cpts[v]
    if cpt is None:
        raise ValueError(f"variable {v} has no CPT")
    shape = tuple(bn.arities[p] for p in bn.parents[v]) + (cpt.arity,)
    return Factor(tuple(bn.parents[v]) + (v,),
                  cpt.table.reshape(shape))


def _min_degree_order(bn: BayesianNetwork, keep: set[int],
                      skip: set[int]) -> list[int]:
    """Min-degree elimination order over the moralized graph."""
    adj: dict[int, set[int]] = {v: set() for v in range(bn.n)}
    for v in range(bn.n):
        scope = set(bn.parents[v]) | {v}
        for a in scope:
            adj[a] |= scope - {a}
    order = []
    remaining = set(range(bn.n)) - keep - skip
    while remaining:
        v = min(remaining, key=lambda u: (len(adj[u] & remaining), u))
        order.append(v)
        nbrs = adj[v] & remaining
        for a in nbrs:
            adj[a] |= nbrs - {a}
        remaining.discard(v)
    return order


#: Refuse to materialize factors beyond this many entries (the induced
#: width has exploded; exact inference is intractable on this network).
MAX_FACTOR_ENTRIES = 20_000_000


def eliminate_marginal(bn: BayesianNetwork, query: int,
                       evidence: dict[int, int] | None = None,
                       max_factor_entries: int = MAX_FACTOR_ENTRIES
                       ) -> np.ndarray:
    """Exact P(query | evidence) by sum-product variable elimination.

    Raises :class:`ValueError` when an intermediate factor would exceed
    ``max_factor_entries`` — the network's induced width is too large for
    exact inference (true of the real MUNIN as well; use Gibbs there).
    """
    evidence = dict(evidence or {})
    if query in evidence:
        out = np.zeros(bn.arities[query])
        out[evidence[query]] = 1.0
        return out
    factors = [_cpt_factor(bn, v) for v in range(bn.n)]
    for var, val in evidence.items():
        factors = [f.reduce(var, val) for f in factors]
    order = _min_degree_order(bn, keep={query}, skip=set(evidence))
    for var in order:
        involved = [f for f in factors if var in f.vars]
        if not involved:
            continue
        rest = [f for f in factors if var not in f.vars]
        scope = set()
        for f in involved:
            scope |= set(f.vars)
        size = 1
        for v in scope:
            size *= bn.arities[v]
        if size > max_factor_entries:
            raise ValueError(
                f"eliminating variable {var} needs a {size}-entry factor "
                f"(induced width too large for exact inference)")
        product = involved[0]
        for f in involved[1:]:
            product = product.multiply(f)
        rest.append(product.sum_out(var))
        factors = rest
    # multiply what remains (all over {query} or empty scopes)
    result = factors[0]
    for f in factors[1:]:
        result = result.multiply(f)
    for v in result.vars:
        if v != query:
            result = result.sum_out(v)
    table = result.table if result.vars else np.array([result.scalar])
    z = table.sum()
    if z <= 0:
        raise ValueError("evidence has zero probability")
    return table / z


def exact_marginals(bn: BayesianNetwork,
                    evidence: dict[int, int] | None = None,
                    queries: list[int] | None = None
                    ) -> dict[int, np.ndarray]:
    """Exact marginals for ``queries`` (default: every variable)."""
    qs = queries if queries is not None else list(range(bn.n))
    return {q: eliminate_marginal(bn, q, evidence) for q in qs}
