"""Unit tests for dataset I/O (repro.io)."""

import numpy as np
import pytest

from repro.core.taxonomy import DataSource
from repro.datagen import GraphSpec, ldbc
from repro.io import (
    load_edgelist,
    load_properties,
    save_edgelist,
    save_properties,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        spec = ldbc(300, avg_degree=5, seed=1)
        path = tmp_path / "g.el"
        save_edgelist(spec, path)
        back = load_edgelist(path)
        assert back.name == spec.name
        assert back.n == spec.n
        assert back.directed == spec.directed
        assert back.source == spec.source
        assert np.array_equal(np.sort(back.edges, axis=0),
                              np.sort(spec.edges, axis=0))

    def test_roundtrip_undirected(self, tmp_path):
        spec = GraphSpec("road", DataSource.TECHNOLOGY, 4,
                         [[0, 1], [1, 2]], directed=False)
        path = tmp_path / "g.el"
        save_edgelist(spec, path)
        assert load_edgelist(path).directed is False

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "raw.el"
        path.write_text("0 1\n1 2\n# a comment\n2 0\n")
        spec = load_edgelist(path)
        assert spec.n == 3
        assert spec.m == 3
        assert spec.directed

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n\n\n1 0\n")
        assert load_edgelist(path).m == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            load_edgelist(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.el"
        path.write_text("")
        spec = load_edgelist(path)
        assert spec.n == 0 and spec.m == 0


class TestPropFile:
    def test_roundtrip_types(self, tmp_path):
        props = {0: {"name": "gene", "score": 1.5, "count": 7},
                 3: {"kind": "drug"}}
        path = tmp_path / "p.tsv"
        save_properties(props, path)
        back = load_properties(path)
        assert back == props
        assert isinstance(back[0]["score"], float)
        assert isinstance(back[0]["count"], int)
        assert isinstance(back[0]["name"], str)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "p.tsv"
        path.write_text("# header\n1\tx=2\n")
        assert load_properties(path) == {1: {"x": 2}}

    def test_bad_vertex_id(self, tmp_path):
        path = tmp_path / "p.tsv"
        path.write_text("abc\tx=1\n")
        with pytest.raises(ValueError):
            load_properties(path)

    def test_missing_equals(self, tmp_path):
        path = tmp_path / "p.tsv"
        path.write_text("1\tnovalue\n")
        with pytest.raises(ValueError):
            load_properties(path)
