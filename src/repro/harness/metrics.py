"""Metric table assembly for the per-figure reports."""

from __future__ import annotations

from typing import Sequence

from ..core.taxonomy import ComputationType
from .runner import Row

#: Column order of the master CPU metrics table.
CPU_COLUMNS = ("workload", "dataset", "ctype", "ipc", "l1d_mpki", "l2_mpki",
               "l3_mpki", "l1d_hit", "l2_hit", "l3_hit", "dtlb_penalty",
               "branch_miss_rate", "icache_mpki", "framework_fraction",
               "cycles_frontend", "cycles_badspeculation",
               "cycles_retiring", "cycles_backend")


def cpu_table(rows: Sequence[Row]) -> list[list]:
    """Flatten CPU rows into the master metric table."""
    out = []
    for r in rows:
        if r.cpu is None:
            continue
        s = r.cpu.summary()
        out.append([r.workload, r.dataset, r.ctype.value]
                   + [s[c] for c in CPU_COLUMNS[3:]])
    return out


def gpu_table(rows: Sequence[Row]) -> list[list]:
    """Flatten GPU rows into [workload, dataset, bdr, mdr, GB/s, ipc]."""
    out = []
    for r in rows:
        if r.gpu is None:
            continue
        s = r.gpu.summary()
        out.append([r.workload, r.dataset, s["bdr"], s["mdr"],
                    s["read_gbs"], s["ipc"]])
    return out


def by_ctype(rows: Sequence[Row], metric: str) -> dict[ComputationType, float]:
    """Average ``metric`` (a CPU summary key) per computation type —
    the aggregation behind Fig. 8."""
    sums: dict[ComputationType, list[float]] = {}
    for r in rows:
        if r.cpu is None:
            continue
        sums.setdefault(r.ctype, []).append(r.cpu.summary()[metric])
    return {ct: sum(v) / len(v) for ct, v in sums.items() if v}
