#!/usr/bin/env python
"""Quickstart: build a property graph, run workloads, characterize one.

Covers the three layers of the library in ~60 lines:
1. the System G-style dynamic property-graph framework,
2. the GraphBIG workloads,
3. the trace-driven architectural characterization.

Run:  python examples/quickstart.py
"""

from repro.arch import CPUModel, SCALED_XEON
from repro.core.trace import Tracer
from repro.datagen import ldbc
from repro.workloads import common_edge_schema, common_vertex_schema, run

# --- 1. generate an LDBC-style social graph and materialize it as the
#        dynamic vertex-centric representation -------------------------------
spec = ldbc(n_vertices=1000, avg_degree=12, seed=7)
print(f"dataset: {spec}")

g = spec.build(vertex_schema=common_vertex_schema(),
               edge_schema=common_edge_schema())
print(f"graph:   {g.num_vertices} vertices, {g.num_edges} arcs, "
      f"{g.alloc.footprint / 1024:.0f} KiB simulated footprint")

# the framework primitives: find/add/delete vertices and edges,
# traverse neighbours, update properties
v = g.find_vertex(0)
print(f"vertex 0: out-degree {g.degree(v)}, "
      f"first neighbours {[d for d, _ in g.neighbors(v)][:5]}")

# --- 2. run workloads through the public API --------------------------------
bfs = run("BFS", g, root=0)
print(f"\nBFS:    visited {bfs.outputs['visited']} vertices, "
      f"max level {max(bfs.outputs['levels'].values())}")

tc = run("TC", g)
print(f"TC:     {tc.outputs['triangles']} triangles")

cc = run("CComp", g)
print(f"CComp:  {cc.outputs['n_components']} connected component(s)")

# --- 3. characterize a workload on the scaled Xeon --------------------------
tracer = Tracer()
g2 = spec.build(vertex_schema=common_vertex_schema(),
                edge_schema=common_edge_schema())
result = run("BFS", g2, tracer=tracer, root=0)
metrics = CPUModel(SCALED_XEON).run(result.trace)

s = metrics.summary()
print("\nBFS architectural characterization (scaled Xeon):")
print(f"  IPC               {s['ipc']:.2f}")
print(f"  L1D/L2/L3 MPKI    {s['l1d_mpki']:.1f} / {s['l2_mpki']:.1f} / "
      f"{s['l3_mpki']:.1f}")
print(f"  DTLB penalty      {s['dtlb_penalty']:.1%} of cycles")
print(f"  branch miss rate  {s['branch_miss_rate']:.1%}")
print(f"  in-framework time {s['framework_fraction']:.0%}")
print(f"  cycle breakdown   backend {s['cycles_backend']:.0%}, "
      f"retiring {s['cycles_retiring']:.0%}, "
      f"bad-spec {s['cycles_badspeculation']:.0%}, "
      f"frontend {s['cycles_frontend']:.0%}")
