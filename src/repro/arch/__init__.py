"""Trace-driven CPU microarchitecture model: caches, TLB, branch
prediction, ICache, and top-down cycle accounting (the perf-counter
substitute for the paper's CPU characterization)."""

from .branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchStats,
    GSharePredictor,
    simulate_branches,
)
from .cache import Cache, CacheConfig, CacheStats, line_ids
from .cpu import SERIAL_REGIONS, CPUMetrics, CPUModel, CycleBreakdown
from .hierarchy import HierarchyResult, MemoryHierarchy
from .icache import ICache, ICacheStats, code_footprint, deep_stack_regions
from .machine import PAPER_XEON, SCALED_XEON, TEST_MACHINE, MachineConfig, describe
from .ndp import NDPConfig, NDPProjection, project_ndp
from .prefetch import (
    NextLinePrefetcher,
    PrefetchStats,
    StridePrefetcher,
    prefetch_comparison,
)
from .replay import ReplayResult, replay
from .stackdist import COLD, Fenwick, miss_curve, misses_for_assoc, stack_distances
from .tlb import TLB, TLBConfig, TLBStats

__all__ = [
    "AlwaysTakenPredictor", "BimodalPredictor", "BranchStats", "COLD",
    "Cache", "CacheConfig", "CacheStats", "CPUMetrics", "CPUModel",
    "CycleBreakdown", "Fenwick", "GSharePredictor", "HierarchyResult",
    "ICache", "ICacheStats", "MachineConfig", "MemoryHierarchy",
    "NDPConfig", "NDPProjection", "NextLinePrefetcher", "PrefetchStats",
    "ReplayResult", "StridePrefetcher", "line_ids", "prefetch_comparison",
    "project_ndp", "replay",
    "PAPER_XEON", "SCALED_XEON", "SERIAL_REGIONS", "TEST_MACHINE", "TLB",
    "TLBConfig", "TLBStats", "code_footprint", "deep_stack_regions",
    "describe", "miss_curve", "misses_for_assoc", "simulate_branches",
    "stack_distances",
]
