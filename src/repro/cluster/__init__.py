"""Sharded graph-service cluster.

The scale-out layer over :mod:`repro.service`: a consistent-hash ring
places dataset keys on shards (:mod:`~repro.cluster.ring`), each shard
is a full single-node service owning its slice
(:mod:`~repro.cluster.node`), a replication tracker decides failover
order and ejection (:mod:`~repro.cluster.replica`), and an asyncio
router speaks the unchanged JSON-lines protocol in front — routing
keyed ops, scatter-gathering fan-out ops, failing over on transport
faults (:mod:`~repro.cluster.router`).  :mod:`~repro.cluster.topology`
holds the static spec plus in-process and multi-process boot harnesses.

The request-reliability layer lives across :mod:`~repro.cluster.replica`
(circuit breakers, retry budget) and :mod:`~repro.cluster.router`
(deadline propagation, hedging, degraded serving); its knobs are one
:class:`ReliabilityConfig`.
"""

from ..core.errors import (
    CircuitOpen,
    DeadlineExceeded,
    RetryBudgetExhausted,
    ShardUnavailable,
    WrongShard,
)
from .node import ShardService
from .replica import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEFAULT_EJECT_AFTER,
    CircuitBreaker,
    ReplicaSet,
    ReplicaTracker,
    RetryBudget,
    ShardHealth,
)
from .ring import (
    DEFAULT_VNODES,
    HashRing,
    RebalancePlan,
    cell_routing_key,
    plan_rebalance,
    stable_hash,
    synthetic_keys,
)
from .router import (
    MAX_BATCH_ENTRIES,
    ROUTER_PORT,
    ReliabilityConfig,
    Router,
    ShardAddress,
)
from .topology import (
    ClusterProcesses,
    ClusterSpec,
    ClusterThread,
    ShardProcess,
    default_shard_factory,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "DEFAULT_EJECT_AFTER",
    "DEFAULT_VNODES",
    "MAX_BATCH_ENTRIES",
    "ROUTER_PORT",
    "CircuitBreaker",
    "CircuitOpen",
    "ClusterProcesses",
    "ClusterSpec",
    "ClusterThread",
    "DeadlineExceeded",
    "HashRing",
    "RebalancePlan",
    "ReliabilityConfig",
    "ReplicaSet",
    "ReplicaTracker",
    "RetryBudget",
    "RetryBudgetExhausted",
    "Router",
    "ShardAddress",
    "ShardHealth",
    "ShardProcess",
    "ShardService",
    "ShardUnavailable",
    "WrongShard",
    "cell_routing_key",
    "default_shard_factory",
    "plan_rebalance",
    "stable_hash",
    "synthetic_keys",
]
