"""Streaming mutations: incremental kernels vs full recompute, and
sustained write/read serving with a measured staleness bound.

Two claims behind the dynamic subsystem:

* **kernel claim** — maintaining BFS depths and connected components
  through the delta chain is O(delta) per batch, so against small churn
  batches the incremental refresh beats a from-scratch recompute by at
  least ``MIN_SPEEDUP``x (both paths run over the same pinned-snapshot
  machinery; equivalence after every batch is asserted here and
  property-tested in ``tests/test_dynamic.py``).
* **serving claim** — a closed-loop mix of mutation batches and
  ``dyn_query`` reads sustains without the answered versions falling
  behind: the report discloses read/write latency separately and the
  maximum version lag (newest acked commit minus the version a read
  answered at) stays within ``MAX_VERSION_LAG``.

Shape-not-absolute: thresholds compare the two kernel arms within this
run on this host; seeds pin the churn stream and the plan.  Results
land in ``BENCH_dynamic.json``.

Run standalone (tiny mode for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_dynamic_mutations.py
    DYNAMIC_BENCH_TINY=1 PYTHONPATH=src python benchmarks/bench_dynamic_mutations.py
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Any

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.datagen.registry import make, scaled_vertices
from repro.dynamic import (
    IncrementalBFS,
    IncrementalCComp,
    SnapshotStore,
    churn_ops,
    parse_ops,
)
from repro.harness import format_table
from repro.service import (
    GraphService,
    LoadGenerator,
    PoolConfig,
    ServiceThread,
    schedule,
    workload_mix,
)
from repro.service.loadgen import churn_write_factory

TINY = bool(os.environ.get("DYNAMIC_BENCH_TINY"))

DATASET = "ldbc"
SCALE = 0.05 if TINY else 0.5
SEED = 7
BATCHES = 8 if TINY else 40
BATCH_OPS = 8
MIN_SPEEDUP = 5.0

REQUESTS = 60 if TINY else 300
CONCURRENCY = 4
WRITE_MIX = 0.3
MAX_VERSION_LAG = 64                 # the store's retention window
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dynamic.json"


# -- kernel arm: incremental refresh vs forced recompute ---------------------

def _kernel_arm(kernel_cls, **kernel_kw) -> dict[str, Any]:
    spec = make(DATASET, scale=SCALE, seed=SEED)
    store = SnapshotStore.from_spec(spec)
    rng = random.Random(SEED)
    batches = [parse_ops(churn_ops(rng, spec.n, BATCH_OPS))
               for _ in range(BATCHES)]

    maintained = kernel_cls(store, **kernel_kw)
    maintained.refresh()             # initial build is off the clock

    inc_s = rec_s = 0.0
    inc_served: dict[str, int] = {}
    for ops in batches:
        store.commit(ops)
        t0 = time.perf_counter()
        served = maintained.refresh()
        inc_s += time.perf_counter() - t0
        inc_served[served] = inc_served.get(served, 0) + 1
        # the contrast arm: a cold kernel has no synced state, so its
        # refresh is exactly the full-recompute path over the same
        # pinned snapshot
        cold = kernel_cls(store, **kernel_kw)
        t0 = time.perf_counter()
        assert cold.refresh() == "recompute"
        rec_s += time.perf_counter() - t0
        assert maintained.outputs() == cold.outputs()
    speedup = rec_s / inc_s if inc_s > 0 else float("inf")
    return {"kernel": kernel_cls.__name__,
            "batches": BATCHES, "ops_per_batch": BATCH_OPS,
            "incremental_total_s": round(inc_s, 6),
            "recompute_total_s": round(rec_s, 6),
            "speedup": round(speedup, 2),
            "served": inc_served,
            "stats": maintained.stats.as_dict()}


# -- serving arm: sustained writes interleaved with versioned reads ----------

def _serving_arm() -> dict[str, Any]:
    mix = workload_mix(("BFS", "CComp"), (DATASET,), scale=SCALE,
                       op="dyn_query")
    factory = churn_write_factory(
        DATASET, scaled_vertices(DATASET, SCALE),
        scale=SCALE, seed=0, batch=BATCH_OPS)
    plan = schedule(mix, REQUESTS, seed=SEED, write_mix=WRITE_MIX,
                    write_factory=factory)
    service = GraphService(
        pool_config=PoolConfig(size=2, isolation="inline"))
    t0 = time.perf_counter()
    with ServiceThread(service) as st:
        report = LoadGenerator(st.host, st.port,
                               concurrency=CONCURRENCY).run(plan)
        dyn = service.stats()["dynamic"]
    wall_s = time.perf_counter() - t0
    summary = report.summary()
    writes = sum(1 for q in plan if q.op == "mutate")
    return {"requests": REQUESTS, "write_mix": WRITE_MIX,
            "writes": writes, "failed": report.failed,
            "wall_s": round(wall_s, 3),
            "mutations_per_s": round(writes / wall_s, 1),
            "read_latency_ms": summary.get("read_latency_ms"),
            "write_latency_ms": summary.get("write_latency_ms"),
            "max_version_lag": summary.get("max_version_lag"),
            "throughput_rps": summary["throughput_rps"],
            "server_dynamic": dyn}


def run_dynamic_benchmark() -> dict[str, Any]:
    bfs = _kernel_arm(IncrementalBFS, root=0)
    comp = _kernel_arm(IncrementalCComp)
    serving = _serving_arm()
    return {
        "config": {"dataset": DATASET, "scale": SCALE, "seed": SEED,
                   "batches": BATCHES, "batch_ops": BATCH_OPS,
                   "requests": REQUESTS, "concurrency": CONCURRENCY,
                   "write_mix": WRITE_MIX, "tiny": TINY},
        "methodology": "per-batch: commit churn, time the maintained "
                       "kernel's refresh vs a cold kernel's full "
                       "recompute over the same snapshot; outputs "
                       "asserted equal every batch. serving: "
                       "closed-loop read/write mix, version lag "
                       "measured as acked-head minus answered version",
        "kernels": [bfs, comp],
        "serving": serving,
        "headline": {
            "bfs_speedup": bfs["speedup"],
            "ccomp_speedup": comp["speedup"],
            "speedup_floor": MIN_SPEEDUP,
            "max_version_lag": serving["max_version_lag"],
            "version_lag_ceiling": MAX_VERSION_LAG},
    }


def _render(results: dict) -> str:
    rows = [[k["kernel"], k["batches"], k["incremental_total_s"],
             k["recompute_total_s"], f'{k["speedup"]}x']
            for k in results["kernels"]]
    table = format_table(
        ["kernel", "batches", "incremental_s", "recompute_s", "speedup"],
        rows, title="incremental refresh vs full recompute per batch")
    s = results["serving"]
    lines = [table,
             f"serving: {s['requests']} requests ({s['writes']} writes), "
             f"{s['mutations_per_s']} mutations/s, "
             f"version lag <= {s['max_version_lag']}"]
    if s["read_latency_ms"]:
        lines.append(f"read  p50/p99 ms: {s['read_latency_ms']['p50']}"
                     f"/{s['read_latency_ms']['p99']}")
    if s["write_latency_ms"]:
        lines.append(f"write p50/p99 ms: {s['write_latency_ms']['p50']}"
                     f"/{s['write_latency_ms']['p99']}")
    return "\n".join(lines)


def _check(results: dict) -> None:
    h = results["headline"]
    if not TINY:                     # tiny graphs make timing noise
        assert h["bfs_speedup"] >= MIN_SPEEDUP, h
        assert h["ccomp_speedup"] >= MIN_SPEEDUP, h
    assert results["serving"]["failed"] == 0, results["serving"]
    assert h["max_version_lag"] <= MAX_VERSION_LAG, h


def test_dynamic_mutations():
    results = run_dynamic_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results))
    _check(results)


if __name__ == "__main__":
    results = run_dynamic_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    _check(results)
    print(f"wrote {OUT_PATH}")
