"""Figure 6 — DTLB penalty, ICache MPKI, and branch miss rate.

Paper: DTLB miss penalty >15 % for most workloads (12.4 % average,
CComp 21.1 % max, TC 3.9 %, Gibbs 1 %); ICache MPKI below 0.7 everywhere
(flat framework hierarchy); branch missprediction below 5 % except TC
(10.7 %).  Includes the deep-software-stack ICache ablation behind the
paper's CloudSuite comparison.
"""

from benchmarks.conftest import show
from repro.arch import CPUModel
from repro.harness import format_table, paper_note


def test_fig06_dtlb_icache_branch(suite, benchmark):
    rows = suite.main_rows()

    def assemble():
        return [[name, r.cpu.summary()["dtlb_penalty"],
                 r.cpu.summary()["icache_mpki"],
                 r.cpu.summary()["branch_miss_rate"]]
                for name, r in rows.items()]

    data = benchmark(assemble)
    show(format_table(
        ["workload", "dtlb_penalty", "icache_mpki", "branch_miss"],
        data, title="Fig. 6 — DTLB / ICache / branch behaviour")
        + paper_note("DTLB avg 12.4% (CComp 21.1% max, TC 3.9%, Gibbs "
                     "1%); ICache MPKI < 0.7; branch miss < 5% except "
                     "TC at 10.7%"))
    d = {r[0]: r[1:] for r in data}
    # ICache MPKI low across the suite (flat framework stack)
    assert all(ic < 0.8 for _, ic, _ in d.values())
    # DTLB: TC and Gibbs are the low outliers; CComp near the top
    assert d["TC"][0] < 0.06 and d["Gibbs"][0] < 0.06
    assert d["CComp"][0] >= 0.7 * max(v[0] for v in d.values())
    # branch: TC worst among CompStruct; traversals well-predicted
    assert d["TC"][2] > d["BFS"][2]
    assert d["BFS"][2] < 0.06 and d["DFS"][2] < 0.06


def test_fig06_ablation_deep_software_stack(suite, benchmark):
    """The paper's explanation probe: re-run the ICache model pretending
    the framework sat atop a deep library stack (CloudSuite-style).  The
    flat hierarchy's MPKI advantage should reproduce."""
    rows = suite.main_rows()
    trace = rows["BFS"].result.trace

    def both():
        model = CPUModel(suite.machine)
        flat = model.run(trace, stack_depth=0)
        deep = model.run(trace, stack_depth=10)
        return flat, deep

    flat, deep = benchmark(both)
    show(format_table(
        ["stack", "icache_mpki", "frontend_fraction"],
        [["flat (GraphBIG)", flat.icache.mpki(flat.n_instrs),
          flat.breakdown.fractions()["Frontend"]],
         ["deep (big-data stack)", deep.icache.mpki(deep.n_instrs),
          deep.breakdown.fractions()["Frontend"]]],
        title="Fig. 6 ablation — flat vs deep software stack (BFS)")
        + paper_note("open-source big-data frameworks' deep stacks lead "
                     "to high ICache MPKI; GraphBIG's flat hierarchy "
                     "does not"))
    assert deep.icache.misses > 5 * max(flat.icache.misses, 1)
