"""Fused one-pass trace replay: L1D -> L2 -> L3 (+ DTLB) in a single loop.

The reference simulators (:class:`repro.arch.hierarchy.MemoryHierarchy`,
:class:`repro.arch.tlb.TLB`) replay the access stream once per level, each
pass paying its own numpy->list conversion and Python loop.  Replay is the
hot path behind every figure, the resilience matrix, and the serving stack,
so this module fuses all four structures into **one** Python loop over the
trace:

* line/page ids are precomputed once per distinct granularity
  (``addrs >> log2(line)``) and shared across levels — the shipped machines
  all use 64-byte lines, so the division happens exactly once;
* an L2 (L3) probe happens inline, only when the L1 (L2) probe misses,
  exactly reproducing the miss-stream composition of the multi-pass
  reference;
* the DTLB is probed for every access in the same iteration.

Because each level runs the identical insertion-ordered-dict LRU state
machine over the identical per-level access substream, the resulting miss
masks and stats are **bitwise identical** to the reference simulators —
the reference stays in the tree as the cross-validation oracle (see
``tests/test_replay.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .cache import CacheConfig, CacheStats, line_ids
from .hierarchy import HierarchyResult
from .machine import MachineConfig
from .tlb import TLBStats


@dataclass
class ReplayResult:
    """Fused-engine output: hierarchy + DTLB results of one replay."""

    hierarchy: HierarchyResult
    tlb: TLBStats
    tlb_miss: np.ndarray    # per-access bool, program order


def _level(cfg: CacheConfig) -> tuple[defaultdict, int, int]:
    """(sets, index mask, assoc) for one cache level (n_sets is pow2).

    Sets materialize lazily: eagerly building one dict per set makes the
    *allocation* dominate short replays of large caches (a scaled LLC has
    tens of thousands of sets, a graph trace touches a fraction of them).
    """
    return defaultdict(dict), cfg.n_sets - 1, cfg.assoc


def _mru_skip(ids: np.ndarray, mask: int) -> np.ndarray:
    """Per-access bool: this access's key equals its set's MRU at probe
    time, i.e. it equals the previous access's key *in the same set*.

    Such a probe is a guaranteed hit whose pop-then-reinsert leaves the
    LRU order untouched, so the replay loop can skip it entirely without
    changing any miss index or any subsequent eviction — the basis of the
    fused engine's fast path.  Computed vectorized: a stable argsort by
    set id groups the stream per set in program order; consecutive equal
    keys within a group are exactly the MRU hits.
    """
    n = len(ids)
    out = np.zeros(n, dtype=bool)
    if n < 2:
        return out
    sets = ids & np.uint64(mask)
    order = np.argsort(sets, kind="stable")
    sid = sets[order]
    key = ids[order]
    eq = (sid[1:] == sid[:-1]) & (key[1:] == key[:-1])
    out[order[1:][eq]] = True
    return out


def lru_misses(ids: np.ndarray, mask: int, assoc: int) -> int:
    """Miss count of one LRU set-associative structure over ``ids`` —
    the count-only fast path (used by the ICache model, where per-access
    masks are not needed).  Bitwise-identical miss total to
    :meth:`repro.arch.cache.Cache.simulate` over the same stream."""
    live = ids[~_mru_skip(ids, mask)].tolist()
    sets: defaultdict = defaultdict(dict)
    misses = 0
    for ln in live:
        s = sets[ln & mask]
        if s.pop(ln, None) is None:
            misses += 1
            s[ln] = 1
            if len(s) > assoc:
                del s[next(iter(s))]
        else:
            s[ln] = 1
    return misses


def replay(addrs: np.ndarray, rw: np.ndarray | None,
           machine: MachineConfig, *,
           id_cache: dict[int, list[int]] | None = None) -> ReplayResult:
    """Replay ``addrs`` through a cold hierarchy + DTLB in one pass.

    ``id_cache`` optionally memoizes the line/page-id lists keyed by
    granularity so a multi-machine sweep over one stored trace divides the
    address stream only once (the benchmark uses this).
    """
    m = machine
    n = len(addrs)

    def ids_for(granularity: int) -> list[int]:
        if id_cache is not None and granularity in id_cache:
            return id_cache[granularity]
        out = line_ids(addrs, granularity).tolist()
        if id_cache is not None:
            id_cache[granularity] = out
        return out

    page = m.tlb.page
    rw_arr = np.asarray(rw, dtype=np.uint8) if rw is not None else None

    s1, mask1, a1 = _level(m.l1d)
    s2, mask2, a2 = _level(m.l2)
    s3, mask3, a3 = _level(m.l3)
    st, maskt, at = _level(m.tlb.cache_config())

    i1: list[int] = []      # miss indices per structure
    i2: list[int] = []
    i3: list[int] = []
    it: list[int] = []
    w1 = w2 = w3 = 0        # write misses per level
    i1_append, i2_append = i1.append, i2.append
    i3_append, it_append = i3.append, it.append

    # MRU fast path: accesses whose key equals their set's MRU are
    # guaranteed hits with no state change, precomputed vectorized — they
    # never enter the replay loops at all.  The L1 chain and the DTLB are
    # independent state machines, so each gets its own tight loop over its
    # own live (non-MRU-hit) substream.  Keyed by (granularity, mask) in
    # the id cache so a machine sweep computes each mask once.
    def live_for(gran: int, mask: int) -> tuple[list[int], list[int]]:
        ck = ("live", gran, mask)
        if id_cache is not None and ck in id_cache:
            return id_cache[ck]
        arr = line_ids(addrs, gran)
        keep = ~_mru_skip(arr, mask)
        out = (np.flatnonzero(keep).tolist(), arr[keep].tolist())
        if id_cache is not None:
            id_cache[ck] = out
        return out

    # Stage memoization: a cold L1 (and a cold DTLB) is a pure function of
    # its own geometry and the full stream, independent of the levels
    # below it, so its miss-index list can be shared across every machine
    # in a sweep with the same L1 (TLB) shape.  On a stage hit the walk
    # below starts directly from the memoized L1-miss substream — only
    # L2/L3, whose geometries actually differ across the sweep, are
    # simulated.  Miss indices come out in ascending program order either
    # way, so results stay bitwise identical.
    l1key = ("l1stage", m.l1d.line, mask1, a1)
    l2key = ("l2stage", m.l1d.line, mask1, a1, m.l2.line, mask2, a2)
    tkey = ("tlbstage", page, maskt, at)
    mru3 = [-1] * (mask3 + 1)

    if id_cache is not None and l2key in id_cache and l1key in id_cache:
        # L1 AND L2 stages memoized (machines differing only in L3):
        # walk just the L2-miss substream through L3
        i1 = id_cache[l1key]
        i2, w1, w2 = id_cache[l2key]
        sub2 = np.asarray(i2, dtype=np.int64)
        k3 = line_ids(addrs[sub2], m.l3.line)
        wl = (rw_arr[sub2].tolist() if rw_arr is not None and len(sub2)
              else [0] * len(sub2))
        for i, ln3, wf in zip(i2, k3.tolist(), wl):
            ix = ln3 & mask3
            if mru3[ix] != ln3:
                mru3[ix] = ln3
                s = s3[ix]
                if s.pop(ln3, None) is None:
                    i3_append(i)
                    if wf:
                        w3 += 1
                    s[ln3] = 1
                    if len(s) > a3:
                        del s[next(iter(s))]
                else:
                    s[ln3] = 1
    elif id_cache is not None and l1key in id_cache:
        i1 = id_cache[l1key]
        sub = np.asarray(i1, dtype=np.int64)
        asub = addrs[sub]
        if rw_arr is not None and len(sub):
            w1 = int(rw_arr[sub].sum())
        k2 = line_ids(asub, m.l2.line)
        keep = ~_mru_skip(k2, mask2)
        wl = (rw_arr[sub[keep]].tolist() if rw_arr is not None
              else [0] * int(keep.sum()))
        for i, ln, ln3, wf in zip(sub[keep].tolist(), k2[keep].tolist(),
                                  line_ids(asub[keep], m.l3.line).tolist(),
                                  wl):
            s = s2[ln & mask2]
            if s.pop(ln, None) is None:
                i2_append(i)
                if wf:
                    w2 += 1
                s[ln] = 1
                if len(s) > a2:
                    del s[next(iter(s))]
                ix = ln3 & mask3
                if mru3[ix] != ln3:
                    mru3[ix] = ln3
                    s = s3[ix]
                    if s.pop(ln3, None) is None:
                        i3_append(i)
                        if wf:
                            w3 += 1
                        s[ln3] = 1
                        if len(s) > a3:
                            del s[next(iter(s))]
                    else:
                        s[ln3] = 1
            else:
                s[ln] = 1
    else:
        l1_of = ids_for(m.l1d.line)
        l2_of = l1_of if m.l2.line == m.l1d.line else ids_for(m.l2.line)
        l3_of = l1_of if m.l3.line == m.l1d.line else ids_for(m.l3.line)
        writes = rw_arr.tolist() if rw_arr is not None else None
        live1, keys1 = live_for(m.l1d.line, mask1)
        mru2 = [-1] * (mask2 + 1)

        # Hot loop.  An LRU probe is pop-then-reinsert (2 dict ops on the
        # hit path); the pop result doubles as the hit test, and
        # reinsertion makes the key MRU whether it hit or missed — the
        # same key order the reference's membership/del/insert sequence
        # produces.  L2/L3 keep an inline per-set MRU shortcut (their
        # substreams depend on upper-level misses, so they cannot be
        # precomputed).  ``rw`` is only consulted on a miss, keeping the
        # all-hits path free of it.
        for i, ln in zip(live1, keys1):
            s = s1[ln & mask1]
            if s.pop(ln, None) is None:
                i1_append(i)
                if writes is not None and writes[i]:
                    w1 += 1
                s[ln] = 1
                if len(s) > a1:
                    del s[next(iter(s))]
                ln = l2_of[i]
                ix = ln & mask2
                if mru2[ix] != ln:
                    mru2[ix] = ln
                    s = s2[ix]
                    if s.pop(ln, None) is None:
                        i2_append(i)
                        if writes is not None and writes[i]:
                            w2 += 1
                        s[ln] = 1
                        if len(s) > a2:
                            del s[next(iter(s))]
                        ln = l3_of[i]
                        ix = ln & mask3
                        if mru3[ix] != ln:
                            mru3[ix] = ln
                            s = s3[ix]
                            if s.pop(ln, None) is None:
                                i3_append(i)
                                if writes is not None and writes[i]:
                                    w3 += 1
                                s[ln] = 1
                                if len(s) > a3:
                                    del s[next(iter(s))]
                            else:
                                s[ln] = 1
                    else:
                        s[ln] = 1
            else:
                s[ln] = 1
        if id_cache is not None:
            id_cache[l1key] = i1
    if id_cache is not None and l2key not in id_cache:
        id_cache[l2key] = (i2, w1, w2)

    # DTLB: probed by every access, read-only (matches TLB.simulate)
    if id_cache is not None and tkey in id_cache:
        it = id_cache[tkey]
    else:
        livet, keyst = live_for(page, maskt)
        for i, pg in zip(livet, keyst):
            s = st[pg & maskt]
            if s.pop(pg, None) is None:
                it_append(i)
                s[pg] = 1
                if len(s) > at:
                    del s[next(iter(s))]
            else:
                s[pg] = 1
        if id_cache is not None:
            id_cache[tkey] = it

    def mask_of(idx: list[int]) -> np.ndarray:
        out = np.zeros(n, dtype=bool)
        if idx:
            out[np.asarray(idx, dtype=np.int64)] = True
        return out

    l1_miss = mask_of(i1)
    l2_miss = mask_of(i2)
    l3_miss = mask_of(i3)
    tlb_miss = mask_of(it)
    latency = np.zeros(n, dtype=np.int32)
    latency[l1_miss] = m.l2.latency
    latency[l2_miss] = m.l3.latency
    latency[l3_miss] = m.mem_latency

    def stats_of(cfg: CacheConfig, accesses: int, misses: int,
                 wmiss: int) -> CacheStats:
        return CacheStats(cfg.name, accesses=accesses, misses=misses,
                          read_misses=misses - wmiss, write_misses=wmiss)

    hier = HierarchyResult(
        l1=stats_of(m.l1d, n, len(i1), w1),
        l2=stats_of(m.l2, len(i1), len(i2), w2),
        l3=stats_of(m.l3, len(i2), len(i3), w3),
        l1_miss=l1_miss, l2_miss=l2_miss, l3_miss=l3_miss,
        latency=latency)
    tlb = TLBStats(accesses=n, misses=len(it),
                   walk_latency=m.tlb.walk_latency)
    return ReplayResult(hierarchy=hier, tlb=tlb, tlb_miss=tlb_miss)
