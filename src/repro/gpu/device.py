"""GPU device model: Tesla K40-like timing from SIMT counters.

Converts a kernel's :class:`~repro.gpu.simt.KernelStats` into execution
time, achieved memory throughput and IPC (Fig. 11), using a three-bound
roofline: instruction-issue bound, bandwidth bound, and latency bound
(outstanding-transaction limited), plus an atomic-serialization term —
the paper's explanation for DCentr's low performance despite its high
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from .simt import KernelStats


@dataclass(frozen=True)
class DeviceConfig:
    """Tesla K40-like device parameters (paper Table 6's GPU)."""

    name: str = "tesla-k40"
    n_sms: int = 15
    clock_ghz: float = 0.745
    peak_bw_gbs: float = 288.0          # device-memory bandwidth
    mem_latency: int = 400              # cycles, L2-miss to DRAM
    l2_latency: int = 80                # cycles, L2 hit
    l2_bytes: int = 8 * 1024            # scaled device L2 (real K40: 1.5 MB)
    outstanding_per_sm: int = 48        # in-flight transactions per SM
    atomic_conflict_cycles: int = 32    # serialization per same-addr clash
    issue_per_sm: float = 1.0           # warp instructions / SM / cycle
    launch_overhead_s: float = 1e-6     # host-side cost per kernel launch

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def peak_bw(self) -> float:
        return self.peak_bw_gbs * 1e9


K40 = DeviceConfig()


@dataclass
class GPUMetrics:
    """Timing and divergence results for one GPU workload run."""

    stats: KernelStats
    device: DeviceConfig
    t_compute: float
    t_bandwidth: float
    t_latency: float
    t_atomic: float
    t_launch: float = 0.0

    @property
    def exec_time(self) -> float:
        """Kernel execution time in seconds (in-core, excludes transfer)."""
        return (max(self.t_compute, self.t_bandwidth, self.t_latency)
                + self.t_atomic + self.t_launch)

    @property
    def bdr(self) -> float:
        return self.stats.bdr

    @property
    def mdr(self) -> float:
        return self.stats.mdr

    @property
    def read_throughput_gbs(self) -> float:
        """Achieved read throughput in GB/s (Fig. 11)."""
        t = self.exec_time
        return self.stats.bytes_read / t / 1e9 if t else 0.0

    @property
    def write_throughput_gbs(self) -> float:
        t = self.exec_time
        return self.stats.bytes_written / t / 1e9 if t else 0.0

    @property
    def ipc(self) -> float:
        """Aggregate warp-instructions per device cycle (Fig. 11)."""
        t = self.exec_time
        if not t:
            return 0.0
        return self.stats.total_issues / (t * self.device.clock_hz)

    def summary(self) -> dict[str, float]:
        return {
            "bdr": self.bdr,
            "mdr": self.mdr,
            "read_gbs": self.read_throughput_gbs,
            "write_gbs": self.write_throughput_gbs,
            "ipc": self.ipc,
            "exec_time_s": self.exec_time,
            "launches": float(self.stats.launches),
            "atomic_conflicts": float(self.stats.atomic_conflicts),
        }


def time_kernel(stats: KernelStats, device: DeviceConfig = K40
                ) -> GPUMetrics:
    """Apply the roofline timing model to accumulated kernel stats."""
    d = device
    t_compute = stats.total_issues / (d.n_sms * d.issue_per_sm * d.clock_hz)
    t_bw = stats.bytes_total / d.peak_bw
    conc = d.n_sms * d.outstanding_per_sm
    t_lat = ((stats.dram_transactions * d.mem_latency
              + (stats.slot_transactions - stats.dram_transactions)
              * d.l2_latency)
             / (conc * d.clock_hz))
    t_atomic = (stats.atomic_conflicts * d.atomic_conflict_cycles
                / (d.n_sms * d.clock_hz))
    t_launch = stats.launches * d.launch_overhead_s
    return GPUMetrics(stats=stats, device=d, t_compute=t_compute,
                      t_bandwidth=t_bw, t_latency=t_lat, t_atomic=t_atomic,
                      t_launch=t_launch)
