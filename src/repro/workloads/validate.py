"""Self-contained output validators (Graph 500-style).

Graph 500 — the reference point GraphBIG is compared against (Table 3) —
specifies result *validation* rules rather than golden outputs: a BFS tree
is checked for level consistency, not equality with an oracle.  These
validators apply the same philosophy to every GraphBIG workload output,
so suite runs can self-check on datasets where no oracle exists.

Each validator returns a list of violation strings (empty = valid).
"""

from __future__ import annotations

from typing import Mapping

from ..core.graph import PropertyGraph


def _und_adj(g: PropertyGraph) -> dict[int, set[int]]:
    adj: dict[int, set[int]] = {vid: set() for vid in g.vertex_ids()}
    for vid in g.vertex_ids():
        v = g.find_vertex(vid)
        for dst in v.out:
            adj[vid].add(dst)
            adj[dst].add(vid)
    return adj


def validate_bfs(g: PropertyGraph, root: int,
                 levels: Mapping[int, int],
                 parents: Mapping[int, int]) -> list[str]:
    """Graph 500 BFS checks: root at level 0; tree edges span exactly one
    level; every edge spans at most one level; reached set is closed."""
    errors: list[str] = []
    if levels.get(root) != 0:
        errors.append(f"root {root} not at level 0")
    for v, p in parents.items():
        if v == root:
            continue
        if p not in levels:
            errors.append(f"parent {p} of {v} unreached")
        elif levels[p] != levels[v] - 1:
            errors.append(f"tree edge {p}->{v} spans "
                          f"{levels[v] - levels[p]} levels")
        if not g.has_edge(p, v):
            errors.append(f"tree edge {p}->{v} not in graph")
    for vid in levels:
        v = g.find_vertex(vid)
        for dst in v.out:
            if dst in levels and levels[dst] > levels[vid] + 1:
                errors.append(f"edge {vid}->{dst} skips a level")
            if dst not in levels:
                errors.append(f"reached {vid} has unreached successor "
                              f"{dst}")
    return errors


def validate_sssp(g: PropertyGraph, root: int,
                  dists: Mapping[int, float],
                  weight_prop: str = "weight") -> list[str]:
    """Relaxation check: no edge can improve a settled distance."""
    errors: list[str] = []
    if dists.get(root) != 0.0:
        errors.append(f"root {root} distance is {dists.get(root)}")
    for vid in dists:
        v = g.find_vertex(vid)
        for dst, node in v.out.items():
            w = g.eget(node, weight_prop)
            if dst in dists and dists[dst] > dists[vid] + w + 1e-9:
                errors.append(f"edge {vid}->{dst} relaxes {dists[dst]} "
                              f"to {dists[vid] + w}")
            if dst not in dists:
                errors.append(f"settled {vid} has unreached successor "
                              f"{dst}")
    return errors


def validate_coloring(g: PropertyGraph,
                      colors: Mapping[int, int]) -> list[str]:
    """Properness on the undirected view; all vertices colored >= 0."""
    errors: list[str] = []
    for vid in g.vertex_ids():
        if colors.get(vid, -1) < 0:
            errors.append(f"vertex {vid} uncolored")
    for vid in g.vertex_ids():
        for dst in g.find_vertex(vid).out:
            if vid != dst and colors.get(vid) == colors.get(dst):
                errors.append(f"edge {vid}-{dst} monochromatic "
                              f"({colors.get(vid)})")
    return errors


def validate_kcore(g: PropertyGraph,
                   core: Mapping[int, int]) -> list[str]:
    """Local k-core condition: every vertex with core number k has at
    least k neighbours of core number >= k."""
    errors: list[str] = []
    adj = _und_adj(g)
    for vid, k in core.items():
        if k < 0:
            errors.append(f"vertex {vid} negative core {k}")
            continue
        support = sum(1 for u in adj[vid] if core.get(u, -1) >= k)
        if support < k:
            errors.append(f"vertex {vid}: core {k} but only {support} "
                          f"supporting neighbours")
    return errors


def validate_components(g: PropertyGraph,
                        comp: Mapping[int, int]) -> list[str]:
    """Every undirected edge joins same-labelled vertices; every vertex
    labelled."""
    errors: list[str] = []
    for vid in g.vertex_ids():
        if vid not in comp:
            errors.append(f"vertex {vid} unlabelled")
    for vid in g.vertex_ids():
        for dst in g.find_vertex(vid).out:
            if comp.get(vid) != comp.get(dst):
                errors.append(f"edge {vid}-{dst} crosses components "
                              f"{comp.get(vid)}/{comp.get(dst)}")
    return errors


def validate_triangles(g: PropertyGraph, total: int,
                       per_vertex: Mapping[int, int]) -> list[str]:
    """Consistency: per-vertex counts sum to 3x total; non-negative."""
    errors: list[str] = []
    if total < 0:
        errors.append(f"negative total {total}")
    s = sum(per_vertex.values())
    if s != 3 * total:
        errors.append(f"per-vertex sum {s} != 3 * {total}")
    for vid, c in per_vertex.items():
        if c < 0:
            errors.append(f"vertex {vid} negative count {c}")
    return errors
