"""Figure 11 — GPU memory throughput and IPC.

Paper (K40, 288 GB/s peak): bandwidth utilization is inefficient — the
best read throughput is CComp's 89.9 GB/s; DCentr stays high (75.2 GB/s)
on sheer access intensity despite its atomics hurting performance; TC is
the extreme outlier at 2.0 GB/s with the highest IPC (compare-dominated
intersections).
"""

from benchmarks.conftest import show
from repro.harness import GPU_WORKLOAD_SET, format_table, paper_note

PAPER_READ_GBS = {"CComp": 89.9, "DCentr": 75.2, "TC": 2.0}


def test_fig11_gpu_throughput_ipc(suite, benchmark):
    gpu = suite.gpu_rows()
    ldbc_name = suite.ldbc.name

    def assemble():
        out = []
        for w in GPU_WORKLOAD_SET:
            m = gpu[(w, ldbc_name)].gpu
            out.append([w, m.read_throughput_gbs, m.write_throughput_gbs,
                        m.ipc, PAPER_READ_GBS.get(w, float("nan"))])
        return out

    data = benchmark(assemble)
    show(format_table(
        ["workload", "read_GB/s", "write_GB/s", "IPC", "paper_read"],
        data, title="Fig. 11 — GPU memory throughput and IPC")
        + paper_note("peak BW 288 GB/s never approached; CComp highest "
                     "(89.9); DCentr high despite atomics; TC lowest "
                     "(2.0) with the top IPC"))
    d = {r[0]: (r[1], r[3]) for r in data}
    # CComp achieves the top read throughput
    assert d["CComp"][0] == max(v[0] for v in d.values())
    # TC: lowest throughput, highest IPC
    assert d["TC"][0] == min(v[0] for v in d.values())
    assert d["TC"][1] == max(v[1] for v in d.values())
    # DCentr keeps high throughput despite the atomic pressure
    assert d["DCentr"][0] > 0.4 * d["CComp"][0]
    # bandwidth utilization stays inefficient overall
    assert all(v[0] < 288.0 for v in d.values())
