"""Unit tests for the simulated heap (repro.core.memmodel)."""

import pytest

from repro.core.memmodel import (
    AGED_HEAP,
    LINE_SIZE,
    PACKED_HEAP,
    PAGE_SIZE,
    HeapModel,
    SimAllocator,
    line_of,
    page_of,
)


class TestHeapModel:
    def test_alignment_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            HeapModel(align=24)

    def test_negative_scatter_rejected(self):
        with pytest.raises(ValueError):
            HeapModel(scatter=-1)

    def test_presets(self):
        assert PACKED_HEAP.scatter == 0
        assert AGED_HEAP.scatter > 0


class TestSimAllocator:
    def test_alignment(self):
        a = SimAllocator(HeapModel(align=16))
        for size in (1, 7, 15, 16, 100):
            assert a.alloc(size) % 16 == 0

    def test_packed_is_contiguous(self):
        a = SimAllocator(PACKED_HEAP)
        p = a.alloc(16)
        q = a.alloc(16)
        assert q == p + 16

    def test_scatter_inserts_gaps(self):
        a = SimAllocator(AGED_HEAP)
        addrs = [a.alloc(16) for _ in range(200)]
        gaps = [b - a_ - 16 for a_, b in zip(addrs, addrs[1:])]
        assert any(g > 0 for g in gaps)

    def test_scatter_is_deterministic(self):
        a1 = SimAllocator(HeapModel(scatter=64, seed=3), base=0)
        a2 = SimAllocator(HeapModel(scatter=64, seed=3), base=0)
        assert [a1.alloc(8) for _ in range(50)] == \
               [a2.alloc(8) for _ in range(50)]

    def test_zero_size_rejected(self):
        a = SimAllocator()
        with pytest.raises(ValueError):
            a.alloc(0)

    def test_arenas_are_disjoint(self):
        a = SimAllocator()
        b = SimAllocator()
        pa = a.alloc(1 << 20)
        pb = b.alloc(1 << 20)
        assert abs(pa - pb) >= (1 << 20)

    def test_footprint_and_counts(self):
        a = SimAllocator()
        a.alloc(100)
        a.alloc(28)
        assert a.footprint == 128
        assert a.n_allocs == 2

    def test_tag_accounting(self):
        a = SimAllocator()
        a.alloc(64, tag="vertex")
        a.alloc(32, tag="vertex")
        a.alloc(16, tag="edge")
        assert a.tag_bytes("vertex") == 96
        assert a.tags() == {"vertex": 96, "edge": 16}
        assert a.tag_bytes("missing") == 0

    def test_pages_touched(self):
        a = SimAllocator()
        a.alloc(3 * PAGE_SIZE)
        assert a.pages_touched >= 3

    def test_alloc_array(self):
        a = SimAllocator()
        base = a.alloc_array(10, 8)
        nxt = a.alloc(8)
        assert nxt >= base + 80


def test_line_and_page_helpers():
    assert line_of(0) == 0
    assert line_of(LINE_SIZE) == 1
    assert line_of(LINE_SIZE - 1) == 0
    assert page_of(PAGE_SIZE * 5 + 17) == 5
