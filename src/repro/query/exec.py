"""The query executor: graph phase + table phase.

One executor serves both deployment shapes.  The **graph phase** runs
kernels over a :class:`GraphImage` (built from a generated
:class:`~repro.datagen.spec.GraphSpec` or a pinned dynamic
:class:`~repro.dynamic.store.Snapshot`) and materializes a plain table
``{"columns": [...], "rows": [[...], ...]}`` in ascending-id order.
The **table phase** applies the aggregate tail via
:func:`apply_table_op` — pure functions over row lists that the
cluster router imports *verbatim* for its scatter-gather merge, so the
distributed answer is element-identical to the single-node answer by
construction, not by luck.

Determinism contract (every ordering rule the equivalence gate relies
on):

* materialized rows are ascending by vertex id;
* ``topk`` orders by value descending, id ascending as the tie-break;
* ``sample`` keeps the ``k`` smallest splitmix64 hashes of
  ``(id, seed)`` and emits them id-ascending — the hash is recomputable
  from the id alone, so a merge node can re-rank partials exactly;
* ``limit`` takes the first ``k`` rows of the current order;
* kernels always run over the *full* graph (a vertex partition selects
  output rows, never input topology), so per-vertex results are
  partition-invariant.
"""

from __future__ import annotations

import heapq
import operator
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import PlanError, QueryError
from .plan import PhysicalPlan

#: Guard on shipped result size: a pipeline with no aggregate over a big
#: graph is a mistake, not a query — fail typed instead of blowing the
#: wire's frame cap.
MAX_RESULT_ROWS = 50_000

_CMP = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
        "<=": operator.le, ">": operator.gt, ">=": operator.ge}

_MASK64 = (1 << 64) - 1


def sample_key(vid: int, seed: int) -> int:
    """splitmix64 finalizer over ``id + seed*golden`` — the sampling
    rank.  Pure-python and recomputable anywhere from the id alone."""
    x = (vid + seed * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


# -- the graph image ---------------------------------------------------------

@dataclass
class GraphImage:
    """A queryable graph: sorted vertex ids + directed arc list.

    Adjacency views are built lazily and cached on the instance, so an
    engine-cached image pays for each view once across queries.
    """

    ids: list[int]
    arcs: list[tuple[int, int]]
    _out: "dict[int, list[int]] | None" = field(default=None, repr=False)
    _und: "dict[int, list[int]] | None" = field(default=None, repr=False)

    @classmethod
    def from_spec(cls, spec) -> "GraphImage":
        arcs = [(int(s), int(d)) for s, d in spec.edges]
        if not spec.directed:
            seen = set(arcs)
            arcs.extend((d, s) for s, d in list(arcs)
                        if (d, s) not in seen)
        return cls(ids=list(range(spec.n)), arcs=arcs)

    @classmethod
    def from_snapshot(cls, snapshot) -> "GraphImage":
        return cls(ids=list(snapshot.vertex_ids()),
                   arcs=sorted(snapshot.arcs()))

    @property
    def n(self) -> int:
        return len(self.ids)

    @property
    def m(self) -> int:
        return len(self.arcs)

    def out_adj(self) -> dict[int, list[int]]:
        if self._out is None:
            adj: dict[int, list[int]] = {v: [] for v in self.ids}
            for s, d in self.arcs:
                adj[s].append(d)
            for lst in adj.values():
                lst.sort()
            self._out = adj
        return self._out

    def und_adj(self) -> dict[int, list[int]]:
        """Undirected simple view: out ∪ in, self-loop free."""
        if self._und is None:
            nbr: dict[int, set[int]] = {v: set() for v in self.ids}
            for s, d in self.arcs:
                if s != d:
                    nbr[s].add(d)
                    nbr[d].add(s)
            self._und = {v: sorted(ns) for v, ns in nbr.items()}
        return self._und


# -- kernels (full-graph, deterministic) -------------------------------------

def kernel_degree(g: GraphImage) -> dict[str, dict[int, int]]:
    out_deg = {v: 0 for v in g.ids}
    in_deg = {v: 0 for v in g.ids}
    for s, d in g.arcs:
        out_deg[s] += 1
        in_deg[d] += 1
    und = g.und_adj()
    return {"degree": {v: len(und[v]) for v in g.ids},
            "out_degree": out_deg, "in_degree": in_deg}


def kernel_bfs(g: GraphImage, root: int, depth: "int | None"
               ) -> dict[str, dict[int, int]]:
    """Directed BFS from ``root``; unreached vertices are absent from
    the result maps (the executor drops their rows)."""
    if root not in set(g.ids):
        raise QueryError(f"bfs root {root} is not a vertex of this "
                         f"graph ({len(g.ids)} vertices)")
    if depth is not None and depth < 0:
        return {"level": {}, "parent": {}}
    adj = g.out_adj()
    level = {root: 0}
    parent = {root: -1}
    frontier = deque([root])
    while frontier:
        v = frontier.popleft()
        lv = level[v]
        if depth is not None and lv >= depth:
            continue
        for w in adj[v]:
            if w not in level:
                level[w] = lv + 1
                parent[w] = v
                frontier.append(w)
    return {"level": level, "parent": parent}


def kernel_cc(g: GraphImage) -> dict[str, dict[int, int]]:
    """Undirected connected components; the label is the component's
    minimum vertex id (canonical, so every node computes the same
    labels independently)."""
    und = g.und_adj()
    comp: dict[int, int] = {}
    for start in g.ids:               # ascending: start is the min id
        if start in comp:
            continue
        comp[start] = start
        frontier = deque([start])
        while frontier:
            v = frontier.popleft()
            for w in und[v]:
                if w not in comp:
                    comp[w] = start
                    frontier.append(w)
    return {"comp": comp}


def kernel_kcore(g: GraphImage) -> dict[str, dict[int, int]]:
    """Coreness per vertex (undirected peeling, Matula–Beck order)."""
    und = g.und_adj()
    deg = {v: len(und[v]) for v in g.ids}
    core: dict[int, int] = {}
    current = 0
    removed = set()
    # peel: repeatedly take the minimum-degree remaining vertex; its
    # coreness is the running maximum of removal degrees
    heap = [(deg[v], v) for v in sorted(g.ids)]
    heapq.heapify(heap)
    live_deg = dict(deg)
    while heap:
        d, v = heapq.heappop(heap)
        if v in removed or d != live_deg[v]:
            continue                   # stale heap entry
        current = max(current, d)
        core[v] = current
        removed.add(v)
        for w in und[v]:
            if w not in removed:
                live_deg[w] -= 1
                heapq.heappush(heap, (live_deg[w], w))
    return {"core": core}


def kernel_triangles(g: GraphImage) -> dict[str, dict[int, int]]:
    """Per-vertex triangle count on the undirected simple view."""
    und = {v: set(ns) for v, ns in g.und_adj().items()}
    tri = {v: 0 for v in g.ids}
    for u in g.ids:
        for v in und[u]:
            if v <= u:
                continue
            common = und[u] & und[v]
            for w in common:
                if w > v:
                    tri[u] += 1
                    tri[v] += 1
                    tri[w] += 1
    return {"tri": tri}


# -- graph phase -------------------------------------------------------------

def run_graph_phase(plan: PhysicalPlan, graph: GraphImage, *,
                    part: "tuple[int, int] | None" = None,
                    kernel_cache: "dict | None" = None
                    ) -> dict[str, Any]:
    """Execute scan + graph ops; return the materialized table.

    ``part = (i, n)`` restricts *output rows* to vertices with
    ``id % n == i`` — kernels still see the whole graph, so per-vertex
    values are identical no matter which shard computes them.
    ``kernel_cache`` (dict-like) memoizes kernel column maps across
    queries against the same graph image.
    """
    ids = graph.ids
    if part is None:
        keep = set(ids)
    else:
        i, n = part
        keep = {v for v in ids if v % n == i}
    cols: dict[str, dict[int, Any]] = {}
    visible = ["id"]

    def run_kernel(op: dict[str, Any]) -> dict[str, dict[int, Any]]:
        kind = op["kind"]
        cache_key = tuple(sorted((k, v) for k, v in op.items()))
        if kernel_cache is not None and cache_key in kernel_cache:
            return kernel_cache[cache_key]
        if kind == "degree":
            result = kernel_degree(graph)
        elif kind == "bfs":
            result = kernel_bfs(graph, op["root"], op["depth"])
        elif kind == "cc":
            result = kernel_cc(graph)
        elif kind == "kcore":
            result = kernel_kcore(graph)
        elif kind == "triangles":
            result = kernel_triangles(graph)
        else:  # pragma: no cover - planner guarantees the catalog
            raise PlanError(f"unknown kernel {kind!r}")
        if kernel_cache is not None:
            kernel_cache[cache_key] = result
        return result

    for op in plan.graph_ops:
        kind = op["kind"]
        if kind in ("degree", "bfs", "cc", "kcore", "triangles"):
            produced = run_kernel(op)
            cols.update(produced)
            visible.extend(produced.keys())
            if kind == "bfs":
                reached = produced["level"]
                keep &= reached.keys()
            elif kind == "kcore" and op.get("k") is not None:
                core = produced["core"]
                keep = {v for v in keep if core.get(v, 0) >= op["k"]}
        elif kind == "filter":
            col, cmp_fn = op["column"], _CMP[op["cmp"]]
            value = op["value"]
            series = cols[col]
            keep = {v for v in keep if cmp_fn(series.get(v), value)}
        elif kind == "project":
            visible = list(op["columns"])
        else:  # pragma: no cover - planner phase split guarantees this
            raise PlanError(f"op {kind!r} is not a graph-phase op")

    rows = [[v] + [_jsonable(cols[c].get(v)) for c in visible[1:]]
            for v in ids if v in keep]
    if len(rows) > MAX_RESULT_ROWS:
        raise QueryError(
            f"result of {len(rows)} rows exceeds {MAX_RESULT_ROWS}; "
            "add a topk/limit/sample/count stage")
    return {"columns": list(visible), "rows": rows}


def _jsonable(value):
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(value)
    return int(value)


# -- table phase (shared with the router's merge) ----------------------------

def _col_index(table: dict[str, Any], column: str) -> int:
    try:
        return table["columns"].index(column)
    except ValueError:
        raise PlanError(f"column {column!r} missing from table "
                        f"{table['columns']}") from None


def apply_table_op(table: dict[str, Any], op: dict[str, Any]
                   ) -> dict[str, Any]:
    """Apply one aggregate/relational op to a materialized table.

    Pure and deterministic; the router calls this over merged partials
    with the exact ops the shards planned, which is what makes the
    distributed path answer-identical to the local one.
    """
    kind = op["kind"]
    rows = table["rows"]
    if kind == "filter":
        ci = _col_index(table, op["column"])
        cmp_fn, value = _CMP[op["cmp"]], op["value"]
        return {"columns": table["columns"],
                "rows": [r for r in rows if cmp_fn(r[ci], value)]}
    if kind == "project":
        idx = [_col_index(table, c) for c in op["columns"]]
        return {"columns": list(op["columns"]),
                "rows": [[r[i] for i in idx] for r in rows]}
    if kind == "topk":
        ci = _col_index(table, op["column"])
        ordered = sorted(rows, key=lambda r: (-r[ci], r[0]))
        return {"columns": table["columns"], "rows": ordered[:op["k"]]}
    if kind == "sample":
        seed = op["seed"]
        ranked = sorted(rows, key=lambda r: (sample_key(r[0], seed),
                                             r[0]))[:op["k"]]
        ranked.sort(key=lambda r: r[0])
        return {"columns": table["columns"], "rows": ranked}
    if kind == "limit":
        return {"columns": table["columns"], "rows": rows[:op["k"]]}
    if kind == "count":
        return {"columns": ["count"], "rows": [[len(rows)]]}
    raise PlanError(f"op {kind!r} is not a table op")  # pragma: no cover


def run_table_phase(table: dict[str, Any],
                    ops: list[dict[str, Any]]) -> dict[str, Any]:
    for op in ops:
        table = apply_table_op(table, op)
    return table


def execute_plan(plan: PhysicalPlan, graph: GraphImage, *,
                 part: "tuple[int, int] | None" = None,
                 partial: bool = False,
                 kernel_cache: "dict | None" = None) -> dict[str, Any]:
    """Run a plan end to end against one graph image.

    ``partial=True`` is the shard-side distributed mode: the graph
    phase runs over this shard's vertex partition and only the *first*
    table op is applied (its partial form — a local topk / bottom-k
    sample / first-k / partial count is a valid input to the router's
    merge).  The router then re-applies the final forms.
    """
    table = run_graph_phase(plan, graph, part=part,
                            kernel_cache=kernel_cache)
    if partial:
        if plan.table_ops:
            table = apply_table_op(table, plan.table_ops[0])
        return table
    return run_table_phase(table, plan.table_ops)
