"""Tests for the Table 3 prior-benchmark metadata."""

from repro.core.related import TABLE3, coverage_gap, graphbig_row
from repro.core.taxonomy import ComputationType


class TestTable3:
    def test_ten_rows(self):
        assert len(TABLE3) == 10

    def test_only_graphbig_covers_everything(self):
        gaps = coverage_gap()
        assert gaps["GraphBIG"] == set()
        for name, gap in gaps.items():
            if name != "GraphBIG":
                assert gap, name

    def test_prior_benchmarks_are_compstruct_only(self):
        for b in TABLE3[:-1]:
            assert b.computation_types == (ComputationType.COMP_STRUCT,)

    def test_graphbig_row(self):
        row = graphbig_row()
        assert row.name == "GraphBIG"
        assert "System G" in row.framework
        assert "12 CPU" in row.graph_workloads

    def test_framework_column_matches_paper(self):
        byname = {b.name: b for b in TABLE3}
        assert byname["Graph 500"].framework == "NA"
        assert byname["CloudSuite"].framework == "GraphLab"
        assert byname["BigDataBench"].framework == "Hadoop"
