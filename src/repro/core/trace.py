"""Execution tracer: the bridge between workloads and the architecture model.

GraphBIG measures hardware events (cache misses, DTLB walks, branch
mispredictions, cycle breakdown) with perf counters while workloads run on
the System G framework.  Here, the framework primitives emit the equivalent
event stream into a :class:`Tracer`:

* **memory accesses** — virtual addresses from :mod:`repro.core.memmodel`,
  consumed by the cache/TLB simulators (:mod:`repro.arch`),
* **retired instruction counts** — charged per primitive with realistic
  per-operation costs, giving the MPKI denominator and the cycle model input,
* **conditional branch outcomes** — consumed by the branch predictor model,
* **code-region transitions** — consumed by the ICache model; framework
  regions vs user regions also give the in-framework time split (Fig. 1).

The tracer is deliberately dumb and append-only; all analysis happens in
:mod:`repro.arch` over the frozen numpy views returned by :meth:`Tracer.freeze`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import TraceError


@dataclass(frozen=True)
class Region:
    """A static code region (≈ one framework primitive or user kernel).

    ``code_bytes`` is the footprint of the region's instructions; the ICache
    model touches ``code_bytes / 64`` lines when execution enters the region.
    GraphBIG's framework has a *flat* hierarchy — few small regions — which
    is why its ICache MPKI is low (paper Section 5.2.1 "Core analysis").
    """

    rid: int
    name: str
    code_bytes: int
    framework: bool


# ---------------------------------------------------------------------------
# Framework region ids.  User regions are registered at runtime from rid 64.
# ---------------------------------------------------------------------------
R_IDLE = 0            # top-level user code outside any primitive
R_FIND_VERTEX = 1
R_ADD_VERTEX = 2
R_DELETE_VERTEX = 3
R_ADD_EDGE = 4
R_FIND_EDGE = 5
R_DELETE_EDGE = 6
R_NEIGHBORS = 7
R_PROP_GET = 8
R_PROP_SET = 9
R_VERTEX_SCAN = 10
R_PAYLOAD = 11
R_BUILD = 12          # bulk build/populate helpers

USER_REGION_BASE = 64

_FRAMEWORK_REGIONS = [
    Region(R_IDLE, "user_top", 256, False),
    Region(R_FIND_VERTEX, "find_vertex", 224, True),
    Region(R_ADD_VERTEX, "add_vertex", 512, True),
    Region(R_DELETE_VERTEX, "delete_vertex", 576, True),
    Region(R_ADD_EDGE, "add_edge", 448, True),
    Region(R_FIND_EDGE, "find_edge", 288, True),
    Region(R_DELETE_EDGE, "delete_edge", 512, True),
    Region(R_NEIGHBORS, "traverse_neighbors", 320, True),
    Region(R_PROP_GET, "property_get", 128, True),
    Region(R_PROP_SET, "property_set", 160, True),
    Region(R_VERTEX_SCAN, "vertex_scan", 192, True),
    Region(R_PAYLOAD, "payload_access", 192, True),
    Region(R_BUILD, "graph_build", 640, True),
]

# ---------------------------------------------------------------------------
# Static branch-site ids (for the branch predictor's per-site history).
# ---------------------------------------------------------------------------
B_EDGE_LOOP = 1        # "more edges?" loop back-branch in traverse_neighbors
B_VERTEX_SCAN = 2      # vertex-scan loop back-branch
B_FIND_HIT = 3         # "found?" test in find_vertex / find_edge
B_DELETE_MATCH = 4     # "is this the edge to unlink?" in delete_edge
B_DUP_CHECK = 5        # "does this edge already exist?" in add_edge
USER_BRANCH_BASE = 64


@dataclass
class FrozenTrace:
    """Immutable numpy view of a finished trace (input to the arch model)."""

    addrs: np.ndarray       # uint64 byte addresses, program order
    rw: np.ndarray          # uint8: 0 = load, 1 = store
    iat: np.ndarray         # uint64 instruction index at each access
    acc_region: np.ndarray  # uint32 region id active at each access
    branch_sites: np.ndarray  # uint32 static site ids, program order
    branch_taken: np.ndarray  # uint8 outcomes
    region_seq: np.ndarray    # uint32 region ids, in visit order
    region_instrs: np.ndarray  # uint64 instructions retired per visit
    regions: dict[int, Region]
    n_instrs: int
    fw_instrs: int
    fw_accesses: int
    n_accesses: int

    @property
    def n_branches(self) -> int:
        return len(self.branch_sites)

    @property
    def user_instrs(self) -> int:
        return self.n_instrs - self.fw_instrs

    def framework_fraction(self) -> float:
        """Fraction of retired instructions spent inside framework
        primitives — the proxy for the paper's in-framework execution time
        (Fig. 1, avg ≈ 76 %)."""
        if self.n_instrs == 0:
            return 0.0
        return self.fw_instrs / self.n_instrs


#: Events per preallocated buffer chunk (~1.3 MB per access chunk).
_CHUNK = 1 << 16


def _cat(parts: list[np.ndarray], dtype) -> np.ndarray:
    """Concatenate chunk parts into a freshly owned array.

    Always copies — a frozen column must never alias a live chunk buffer
    the tracer may keep writing into.
    """
    if not parts:
        return np.empty(0, dtype=dtype)
    if len(parts) == 1:
        return parts[0].copy()
    return np.concatenate(parts)


class _AccessBuf:
    """Growable chunked storage for the four per-access event columns.

    Appends write into a preallocated numpy chunk; when a chunk fills, it
    is sealed and a fresh one allocated.  This replaces six parallel
    Python lists: ~3x less memory (machine ints, not PyObject boxes) and a
    near-free :meth:`frozen` (no per-element list->array conversion).
    """

    __slots__ = ("_cap", "_full", "_addr", "_rw", "_iat", "_reg", "_pos",
                 "count")

    def __init__(self, chunk: int = _CHUNK):
        self._cap = chunk
        self.clear()

    def clear(self) -> None:
        self._full: list[tuple[np.ndarray, ...]] = []
        self._alloc()
        self.count = 0

    def _alloc(self) -> None:
        self._addr = np.empty(self._cap, np.uint64)
        self._rw = np.empty(self._cap, np.uint8)
        self._iat = np.empty(self._cap, np.uint64)
        self._reg = np.empty(self._cap, np.uint32)
        self._pos = 0

    def _seal(self) -> None:
        p = self._pos
        if p:
            self._full.append((self._addr[:p], self._rw[:p],
                               self._iat[:p], self._reg[:p]))
            self._alloc()

    def append(self, addr: int, rw: int, iat: int, reg: int) -> None:
        p = self._pos
        if p == self._cap:
            self._full.append((self._addr, self._rw, self._iat, self._reg))
            self._alloc()
            p = 0
        self._addr[p] = addr
        self._rw[p] = rw
        self._iat[p] = iat
        self._reg[p] = reg
        self._pos = p + 1
        self.count += 1

    def extend(self, addrs: np.ndarray, rw: int, iat: np.ndarray,
               reg: int) -> None:
        """Vectorized batch append; ``rw``/``reg`` broadcast to the batch.

        ``addrs``/``iat`` must be freshly built (or copied) by the caller —
        the buffer takes ownership of them.
        """
        k = len(addrs)
        if not k:
            return
        self._seal()
        self._full.append((np.asarray(addrs, np.uint64),
                           np.full(k, rw, np.uint8),
                           np.asarray(iat, np.uint64),
                           np.full(k, reg, np.uint32)))
        self.count += k

    def extend_cols(self, addrs: np.ndarray, rw: np.ndarray,
                    iat: np.ndarray, reg: np.ndarray) -> None:
        """Batch append with full per-access columns (no broadcasting).

        All four arrays must be freshly built (or copied) by the caller —
        the buffer takes ownership of them.
        """
        k = len(addrs)
        if not k:
            return
        self._seal()
        self._full.append((np.asarray(addrs, np.uint64),
                           np.asarray(rw, np.uint8),
                           np.asarray(iat, np.uint64),
                           np.asarray(reg, np.uint32)))
        self.count += k

    def frozen(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        parts = list(self._full)
        p = self._pos
        if p:
            parts.append((self._addr[:p], self._rw[:p],
                          self._iat[:p], self._reg[:p]))
        dts = (np.uint64, np.uint8, np.uint64, np.uint32)
        return tuple(_cat([pt[j] for pt in parts], dts[j])
                     for j in range(4))


class _BranchBuf:
    """Growable chunked storage for the two branch-event columns."""

    __slots__ = ("_cap", "_full", "_site", "_taken", "_pos", "count")

    def __init__(self, chunk: int = _CHUNK):
        self._cap = chunk
        self.clear()

    def clear(self) -> None:
        self._full: list[tuple[np.ndarray, np.ndarray]] = []
        self._alloc()
        self.count = 0

    def _alloc(self) -> None:
        self._site = np.empty(self._cap, np.uint32)
        self._taken = np.empty(self._cap, np.uint8)
        self._pos = 0

    def _seal(self) -> None:
        p = self._pos
        if p:
            self._full.append((self._site[:p], self._taken[:p]))
            self._alloc()

    def append(self, site: int, taken: int) -> None:
        p = self._pos
        if p == self._cap:
            self._full.append((self._site, self._taken))
            self._alloc()
            p = 0
        self._site[p] = site
        self._taken[p] = taken
        self._pos = p + 1
        self.count += 1

    def extend(self, sites: np.ndarray, taken: np.ndarray) -> None:
        k = len(sites)
        if not k:
            return
        self._seal()
        self._full.append((np.asarray(sites, np.uint32),
                           np.asarray(taken, np.uint8)))
        self.count += k

    def frozen(self) -> tuple[np.ndarray, np.ndarray]:
        parts = list(self._full)
        p = self._pos
        if p:
            parts.append((self._site[:p], self._taken[:p]))
        return (_cat([pt[0] for pt in parts], np.uint32),
                _cat([pt[1] for pt in parts], np.uint8))


class Tracer:
    """Append-only event recorder attached to a :class:`PropertyGraph`.

    Hot-path methods are single-letter (:meth:`r`, :meth:`w`, :meth:`i`,
    :meth:`br`) because they are called per memory access / branch; the
    descriptive aliases (``read``/``write``/...) delegate to them.  Bulk
    producers (the graph scan primitives, format converters) should use
    the vectorized :meth:`bulk_reads` / :meth:`bulk_writes` /
    :meth:`bulk_scan` instead — events land in preallocated numpy chunk
    buffers, so a batch costs a few array ops rather than a Python loop.
    """

    def __init__(self):
        self._acc = _AccessBuf()
        self._br = _BranchBuf()
        self._rseq: list[int] = [R_IDLE]
        self._rcnt: list[int] = [0]
        self._rstack: list[int] = [R_IDLE]
        self.regions: dict[int, Region] = {r.rid: r for r in _FRAMEWORK_REGIONS}
        self._next_user_rid = USER_REGION_BASE
        self._next_user_bsite = USER_BRANCH_BASE
        self.n = 0              # retired instruction counter
        self.fw_instrs = 0
        self.fw_accesses = 0
        self._cur_rid = R_IDLE
        self._cur_fw = False    # region R_IDLE is user code

    # -- region management --------------------------------------------------
    def register_region(self, name: str, code_bytes: int = 256,
                        framework: bool = False) -> int:
        """Register a user code region (a workload kernel); returns its id."""
        rid = self._next_user_rid
        self._next_user_rid += 1
        self.regions[rid] = Region(rid, name, code_bytes, framework)
        return rid

    def register_branch_site(self) -> int:
        """Reserve a static branch-site id for a user (workload) branch."""
        site = self._next_user_bsite
        self._next_user_bsite += 1
        return site

    def enter(self, rid: int) -> None:
        """Enter a code region (primitive call / kernel start)."""
        self._rstack.append(rid)
        self._rseq.append(rid)
        self._rcnt.append(0)
        self._cur_rid = rid
        self._cur_fw = self.regions[rid].framework

    def leave(self) -> None:
        """Leave the current region, resuming its caller."""
        if len(self._rstack) <= 1:
            raise TraceError("unbalanced Tracer.leave()")
        self._rstack.pop()
        rid = self._rstack[-1]
        self._rseq.append(rid)
        self._rcnt.append(0)
        self._cur_rid = rid
        self._cur_fw = self.regions[rid].framework

    # -- hot-path event recording -------------------------------------------
    def r(self, addr: int) -> None:
        """Record a load of ``addr``."""
        self._acc.append(addr, 0, self.n, self._cur_rid)
        if self._cur_fw:
            self.fw_accesses += 1

    def w(self, addr: int) -> None:
        """Record a store to ``addr``."""
        self._acc.append(addr, 1, self.n, self._cur_rid)
        if self._cur_fw:
            self.fw_accesses += 1

    def i(self, count: int) -> None:
        """Charge ``count`` retired instructions to the current region."""
        self.n += count
        self._rcnt[-1] += count
        if self._cur_fw:
            self.fw_instrs += count

    def br(self, site: int, taken: bool) -> None:
        """Record a conditional branch outcome at static ``site``."""
        self._br.append(site, 1 if taken else 0)

    # descriptive aliases
    read = r
    write = w
    instr = i
    branch = br

    # -- bulk recording (vectorized producers: scans, format converters) ----
    def _bulk(self, addrs, is_write: bool, instrs_per_access: int) -> None:
        a = np.array(addrs, dtype=np.uint64)    # owned copy
        k = len(a)
        if not k:
            return
        p = int(instrs_per_access)
        iat = (np.uint64(self.n)
               + np.uint64(p) * np.arange(1, k + 1, dtype=np.uint64))
        self._acc.extend(a, 1 if is_write else 0, iat, self._cur_rid)
        total = p * k
        self.n += total
        self._rcnt[-1] += total
        if self._cur_fw:
            self.fw_instrs += total
            self.fw_accesses += k

    def bulk_reads(self, addrs, instrs_per_access: int = 2) -> None:
        """Record a batch of loads at ``addrs`` (array/iterable of ints),
        charging ``instrs_per_access`` instructions before each — exactly
        equivalent to ``for a in addrs: t.i(ipa); t.r(a)``, but vectorized
        (a few numpy ops instead of a per-element Python loop)."""
        self._bulk(addrs, False, instrs_per_access)

    def bulk_writes(self, addrs, instrs_per_access: int = 2) -> None:
        """Record a batch of stores (see :meth:`bulk_reads`)."""
        self._bulk(addrs, True, instrs_per_access)

    def bulk_scan(self, addr_cols, instrs_per_step: int = 2) -> None:
        """Record one scan step per row of ``addr_cols``: charge
        ``instrs_per_step`` instructions, then load each column's address
        (all loads of a step share the post-charge instruction index).

        Exactly equivalent to the per-element loop
        ``for j in range(k): t.i(s); t.r(c0[j]); t.r(c1[j]); ...`` —
        this is what the graph's bulk neighbor/vertex scan primitives emit.
        """
        cols = [np.asarray(c, dtype=np.uint64) for c in addr_cols]
        k = len(cols[0])
        if not k:
            return
        c = len(cols)
        addrs = np.empty(k * c, dtype=np.uint64)
        for j, col in enumerate(cols):
            addrs[j::c] = col
        s = int(instrs_per_step)
        step_iat = (np.uint64(self.n)
                    + np.uint64(s) * np.arange(1, k + 1, dtype=np.uint64))
        iat = np.repeat(step_iat, c) if c > 1 else step_iat
        self._acc.extend(addrs, 0, iat, self._cur_rid)
        total = s * k
        self.n += total
        self._rcnt[-1] += total
        if self._cur_fw:
            self.fw_instrs += total
            self.fw_accesses += k * c

    def bulk_emit(self, addrs, rw, iat, regions, *, n_instrs: int,
                  fw_instrs: int, fw_accesses: int, head_instrs: int = 0,
                  region_seq=None, region_instrs=None) -> None:
        """Append a fully precomputed event block (vectorized kernels).

        This is the raw back door behind the loop-equivalent bulk helpers:
        the caller supplies complete per-access columns (``addrs``/``rw``/
        ``iat``/``regions``), total charged instructions, the framework
        splits, and the region-visit bookkeeping:

        * ``head_instrs`` accrue to the visit that is open when the block
          starts (instructions charged before the first region transition);
        * ``region_seq``/``region_instrs`` are the visits the block opens,
          appended verbatim.  The block must be *balanced*: its last visit
          must re-enter the region that was current when it began, so the
          tracer resumes exactly where a loop of ``enter``/``leave`` calls
          would have left it.

        ``iat`` values are absolute instruction indices; the caller builds
        them from ``self.n`` before calling.  Consistency of the per-visit
        split is checked (``head + sum(region_instrs) == n_instrs``).
        """
        seq = [] if region_seq is None else np.asarray(region_seq).tolist()
        cnt = ([] if region_instrs is None
               else np.asarray(region_instrs, dtype=np.int64).tolist())
        if len(seq) != len(cnt):
            raise TraceError("bulk_emit: region_seq/region_instrs length "
                             f"mismatch ({len(seq)} vs {len(cnt)})")
        if head_instrs + sum(cnt) != n_instrs:
            raise TraceError("bulk_emit: per-visit instruction split does "
                             "not sum to n_instrs")
        if seq and seq[-1] != self._cur_rid:
            raise TraceError("bulk_emit: unbalanced block (last visit "
                             f"{seq[-1]} != current region {self._cur_rid})")
        a = np.asarray(addrs, dtype=np.uint64)
        k = len(a)
        if k:
            self._acc.extend_cols(a, np.asarray(rw, np.uint8),
                                  np.asarray(iat, np.uint64),
                                  np.asarray(regions, np.uint32))
        self.n += int(n_instrs)
        self.fw_instrs += int(fw_instrs)
        self.fw_accesses += int(fw_accesses)
        self._rcnt[-1] += int(head_instrs)
        if seq:
            self._rseq.extend(seq)
            self._rcnt.extend(cnt)

    def bulk_branch_events(self, sites, taken) -> None:
        """Record a batch of branch outcomes with per-event site ids
        (:meth:`bulk_branches` broadcasts one site; this takes columns)."""
        s = np.asarray(sites)
        if not len(s):
            return
        self._br.extend(s.astype(np.uint32),
                        np.asarray(taken).astype(np.uint8))

    def bulk_branches(self, site: int, taken, count: int | None = None
                      ) -> None:
        """Record a batch of branch outcomes at static ``site``.

        ``taken`` is either a scalar bool (with ``count`` repetitions) or
        an array of outcomes.
        """
        if isinstance(taken, (bool, int)):
            if not count:
                return
            sites = np.full(count, site, np.uint32)
            outcomes = np.full(count, 1 if taken else 0, np.uint8)
        else:
            outcomes = np.asarray(taken).astype(np.uint8)
            if not len(outcomes):
                return
            sites = np.full(len(outcomes), site, np.uint32)
        self._br.extend(sites, outcomes)

    # -- finishing -----------------------------------------------------------
    @property
    def n_accesses(self) -> int:
        return self._acc.count

    def freeze(self) -> FrozenTrace:
        """Convert the accumulated events into a :class:`FrozenTrace`.

        Idempotent and aliasing-safe: every returned array is freshly
        owned, so freezing twice, or mutating/resetting the tracer after a
        freeze, never changes a previously returned trace.
        """
        addrs, rw, iat, acc_region = self._acc.frozen()
        bsites, btaken = self._br.frozen()
        return FrozenTrace(
            addrs=addrs,
            rw=rw,
            iat=iat,
            acc_region=acc_region,
            branch_sites=bsites,
            branch_taken=btaken,
            region_seq=np.asarray(self._rseq, dtype=np.uint32),
            region_instrs=np.asarray(self._rcnt, dtype=np.uint64),
            regions=dict(self.regions),
            n_instrs=self.n,
            fw_instrs=self.fw_instrs,
            fw_accesses=self.fw_accesses,
            n_accesses=self._acc.count,
        )

    def reset(self) -> None:
        """Drop all recorded events (keeps registered regions/sites)."""
        self._acc.clear()
        self._br.clear()
        self._rseq = [R_IDLE]
        self._rcnt = [0]
        self._rstack = [R_IDLE]
        self.n = 0
        self.fw_instrs = 0
        self.fw_accesses = 0
        self._cur_rid = R_IDLE
        self._cur_fw = False
