"""Exception hierarchy for the repro graph framework.

The framework mirrors the System G-style API abstracted by GraphBIG: a small
set of typed errors lets workload code distinguish user mistakes (bad ids,
schema violations) from internal invariant breakage.
"""

from __future__ import annotations


class GraphError(Exception):
    """Base class for all framework errors."""


class VertexNotFound(GraphError, KeyError):
    """Raised when a vertex id is not present in the graph."""

    def __init__(self, vid: int):
        super().__init__(f"vertex {vid!r} not found")
        self.vid = vid


class EdgeNotFound(GraphError, KeyError):
    """Raised when an edge (src, dst) is not present in the graph."""

    def __init__(self, src: int, dst: int):
        super().__init__(f"edge ({src!r} -> {dst!r}) not found")
        self.src = src
        self.dst = dst


class DuplicateVertex(GraphError, ValueError):
    """Raised when adding a vertex id that already exists."""

    def __init__(self, vid: int):
        super().__init__(f"vertex {vid!r} already exists")
        self.vid = vid


class DuplicateEdge(GraphError, ValueError):
    """Raised when adding an edge that already exists."""

    def __init__(self, src: int, dst: int):
        super().__init__(f"edge ({src!r} -> {dst!r}) already exists")
        self.src = src
        self.dst = dst


class SchemaError(GraphError, ValueError):
    """Raised on property-schema violations (unknown slot, bad layout)."""


class TraceError(GraphError, RuntimeError):
    """Raised on tracer misuse (unbalanced regions, missing registration)."""


# -- characterization-harness failure taxonomy ------------------------------
#
# The resilient matrix runner (repro.resilience) executes every
# workload x dataset cell in an isolated worker; these errors classify how
# a cell can fail so the harness can retry, checkpoint, and degrade
# gracefully instead of losing the sweep.

class HarnessError(GraphError):
    """Base class for characterization-harness failures."""


class MetricsUnavailable(HarnessError, ValueError):
    """A metric was requested from a Row lacking the measurements it needs
    (e.g. GPU speedup on a CPU-only row)."""


class CellExecutionError(HarnessError):
    """Base class for per-cell failures in the resilient matrix runner.

    ``kind`` is the stable machine-readable tag journaled to checkpoints
    and rendered in failure reports.
    """

    kind = "error"

    def __init__(self, cell_id: str, message: str):
        super().__init__(f"[{cell_id}] {message}")
        self.cell_id = cell_id
        self.message = message


class CellTimeout(CellExecutionError):
    """A worker exceeded its wall-clock budget and was killed."""

    kind = "timeout"

    def __init__(self, cell_id: str, timeout_s: float):
        super().__init__(cell_id,
                         f"exceeded wall-clock timeout of {timeout_s:g}s")
        self.timeout_s = timeout_s


class CellCrash(CellExecutionError):
    """A worker died (signal, unhandled exception, or corrupt payload)."""

    kind = "crash"

    def __init__(self, cell_id: str, detail: str):
        super().__init__(cell_id, f"worker crashed: {detail}")
        self.detail = detail


class CellOOM(CellExecutionError):
    """A worker hit an allocator failure (MemoryError)."""

    kind = "oom"

    def __init__(self, cell_id: str, detail: str = "MemoryError"):
        super().__init__(cell_id, f"allocator failure: {detail}")
        self.detail = detail


class RetriesExhausted(CellExecutionError):
    """Every attempt at a cell failed; carries the last failure."""

    kind = "retries-exhausted"

    def __init__(self, cell_id: str, attempts: int,
                 last: CellExecutionError):
        super().__init__(cell_id,
                         f"all {attempts} attempts failed; "
                         f"last: {last.kind}: {last.message}")
        self.attempts = attempts
        self.last = last


# -- observability taxonomy --------------------------------------------------

class MetricError(GraphError, ValueError):
    """Metrics-registry misuse: re-registering a name as a different
    instrument type or label set, a negative counter increment, a label
    assignment that does not match the declared names, or degenerate
    histogram buckets.  Deterministic programming errors — raised
    immediately rather than silently skewing measurements."""


# -- service taxonomy --------------------------------------------------------
#
# The query service (repro.service) ships failures across a socket as typed
# payloads; ``kind`` is the stable machine-readable tag on the wire, shared
# with the cell taxonomy above so a crashed worker looks the same to a
# remote client as to the batch matrix runner.

class ServiceError(GraphError):
    """Base class for graph-query-service failures."""

    kind = "service"


class ProtocolError(ServiceError, ValueError):
    """A wire frame could not be decoded or violated the protocol
    (garbage bytes, truncated frame, bad version, malformed request)."""

    kind = "protocol"


class VersionMismatch(ProtocolError):
    """The peer speaks a different protocol version.

    Raised instead of a generic decode failure so a client can tell "the
    server is a different release" apart from "the wire is garbage" —
    both versions are carried for the error message and for callers that
    want to negotiate or report precisely.
    """

    def __init__(self, ours: int, theirs: object):
        super().__init__(f"protocol version mismatch: peer speaks "
                         f"{theirs!r}, this client speaks {ours}")
        self.ours = ours
        self.theirs = theirs


class BadRequest(ServiceError, ValueError):
    """A well-framed request asked for something that cannot exist
    (unknown operation, unknown workload or dataset, invalid params)."""

    kind = "bad-request"


class AdmissionRejected(ServiceError):
    """The server's bounded request queue is full — backpressure.

    Clients should treat this as retryable after a delay; the server
    sheds load instead of queueing without bound.
    """

    kind = "admission-rejected"

    def __init__(self, pending: int, limit: int):
        super().__init__(f"request queue full ({pending}/{limit} pending); "
                         "retry later")
        self.pending = pending
        self.limit = limit


class QuotaExceeded(ServiceError):
    """A tenant spent its admission quota — per-tenant backpressure.

    Distinct from :class:`AdmissionRejected` (the *global* queue bound):
    the server had capacity, but this tenant's token bucket or fair-share
    queue was at its limit, so the request is shed to protect the other
    tenants.  Retryable after ``retry_after_s`` (the bucket refills at
    the tenant's provisioned rate).
    """

    kind = "quota-exceeded"

    def __init__(self, tenant: str, reason: str = "rate",
                 retry_after_s: float = 0.0):
        detail = f"; retry after {retry_after_s:.2f}s" \
            if retry_after_s > 0 else ""
        super().__init__(f"tenant {tenant!r} exceeded its {reason} "
                         f"quota{detail}")
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s


class WrongShard(ServiceError):
    """A shard received a single-dataset request for a dataset it does
    not own — a routing bug (stale ring, misconfigured topology), never
    a user mistake, so it is distinct from :class:`BadRequest`."""

    kind = "wrong-shard"

    def __init__(self, dataset: str, shard: str = "?"):
        super().__init__(f"dataset {dataset!r} is not owned by shard "
                         f"{shard!r}")
        self.dataset = dataset
        self.shard = shard


class ShardUnavailable(ServiceError):
    """Every replica that owns a key failed at the transport level.

    The router raises this only after exhausting the failover chain;
    ``tried`` is the replica order it walked.  Clients should treat it
    like :class:`AdmissionRejected` — retryable after a delay, since a
    health probe may readmit a recovered shard at any moment.
    """

    kind = "unavailable"

    def __init__(self, key: str, tried: tuple[str, ...] = ()):
        chain = " -> ".join(tried) if tried else "no replicas"
        super().__init__(f"no replica could serve {key!r} "
                         f"(tried {chain}); retry later")
        self.key = key
        self.tried = tuple(tried)


class DeadlineExceeded(ServiceError):
    """A request's end-to-end time budget ran out.

    Raised wherever the budget is discovered to be spent: in the client
    when the round trip outlives ``timeout_s``, in the scheduler when
    queued work expires before execution (shedding — the work is never
    run), and in the router when the remaining budget cannot cover
    another replica attempt.  ``stage`` names that discovery point and
    ``elapsed_s``/``budget_s`` carry the breakdown, so the error message
    a caller sees says *where* the time went, not just that it went.

    Retryable in principle — but only with a fresh budget.
    """

    kind = "deadline-exceeded"

    def __init__(self, stage: str, elapsed_s: float, budget_s: float):
        if budget_s > 0:
            detail = (f"{elapsed_s * 1e3:.1f}ms elapsed of a "
                      f"{budget_s * 1e3:.1f}ms budget")
        else:
            # a shedding stage only sees the absolute deadline, not the
            # original budget — report how far past it the work was
            detail = f"{elapsed_s * 1e3:.1f}ms past the deadline"
        super().__init__(f"deadline exceeded at {stage}: {detail}")
        self.stage = stage
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s


class CircuitOpen(ServiceError):
    """Every replica that owns a key is behind an open circuit breaker.

    Distinct from :class:`ShardUnavailable`: no connection was even
    attempted — the breakers' recent history says the attempts would
    fail, so the router sheds the request instead of burning its
    deadline on doomed dials.  Retryable after the breaker's reset
    timeout (half-open probes readmit a recovered shard).
    """

    kind = "circuit-open"

    def __init__(self, key: str, shards: tuple[str, ...] = ()):
        chain = ", ".join(shards) if shards else "all replicas"
        super().__init__(f"circuit open for every replica of {key!r} "
                         f"({chain}); retry after reset timeout")
        self.key = key
        self.shards = tuple(shards)


class RetryBudgetExhausted(ServiceError):
    """Failover stopped because the cluster-wide retry budget is spent.

    The token-bucket budget caps retry amplification: when many keys
    fail at once, unbounded per-request failover multiplies offered load
    exactly when the cluster can least afford it.  The first attempt
    already failed and no token was available to pay for another, so the
    request fails fast.  Retryable after a delay (tokens refill with
    fresh traffic).
    """

    kind = "retry-budget"

    def __init__(self, key: str, tried: tuple[str, ...] = ()):
        chain = " -> ".join(tried) if tried else "none"
        super().__init__(f"retry budget exhausted for {key!r} after "
                         f"trying {chain}; failing fast to cap "
                         "amplification")
        self.key = key
        self.tried = tuple(tried)


class MutationError(ServiceError, ValueError):
    """A graph mutation cannot apply in strict mode (adding a vertex
    that already exists, deleting an edge that is not there, touching a
    vertex that was never created).

    Lenient commits skip such no-op operations and report them in the
    ``skipped`` count instead; strict commits surface the first
    violation as this error so the writer learns its model of the graph
    has drifted.
    """

    kind = "mutation"

    def __init__(self, op: str, detail: str):
        super().__init__(f"mutation {op} cannot apply: {detail}")
        self.op = op
        self.detail = detail


class SnapshotExpired(ServiceError):
    """A pinned or requested snapshot version fell outside the store's
    retention window — compaction already folded its deltas into the
    base, so the exact state at that version is no longer
    reconstructable.

    Readers recover by re-pinning the current head; incremental kernels
    recover by a full recompute (their synced version predates the
    window, so the delta chain they need is gone).
    """

    kind = "snapshot-expired"

    def __init__(self, version: int, floor: int, head: int):
        super().__init__(
            f"snapshot version {version} is outside the retention "
            f"window [{floor}, {head}]")
        self.version = version
        self.floor = floor
        self.head = head


class QueryError(ServiceError, ValueError):
    """A pipeline-DSL query could not be lexed or parsed (garbage
    tokens, a truncated pipeline, a malformed argument), or failed a
    runtime check the text alone cannot catch (a BFS root that is not a
    vertex, a result too large to ship).

    Always a property of the query, never of the server — retrying the
    same text yields the same error, so clients should fix the query,
    not back off.
    """

    kind = "query"

    def __init__(self, message: str, *, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.message = message
        self.position = position


class PlanError(QueryError):
    """A syntactically valid pipeline cannot be planned: an unknown
    stage or dataset, an argument of the wrong shape, a column no prior
    stage produces, or a stage ordering the executor does not support
    (e.g. a graph kernel after an aggregate).

    Distinct from :class:`QueryError` so tooling can tell "fix your
    syntax" apart from "fix your pipeline" — the parser accepted the
    text; the planner rejected its meaning.
    """

    kind = "plan"


class RemoteError(ServiceError):
    """Client-side image of a failure the server shipped over the wire.

    ``kind`` is the server-reported taxonomy tag (``crash``, ``timeout``,
    ``oom``, ``retries-exhausted``, ``bad-request`` ...), preserved so
    callers can dispatch on it exactly as server-side code dispatches on
    the original exception classes.
    """

    def __init__(self, kind: str, message: str, remote_type: str = ""):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message
        self.remote_type = remote_type
