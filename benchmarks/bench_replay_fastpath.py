"""Trace-replay fast path: store + fused engine vs. re-execute + reference.

The machine-sensitivity claim behind the fast path: a FrozenTrace depends
only on (workload, dataset, seed, params) — a 5-machine sweep therefore
needs ONE workload execution, not five, and each replay needs one fused
pass over the trace, not four independent simulator passes.

Two things are measured and asserted:

1. **Equivalence gate** — for every workload x machine cell, the fast
   configuration (content-addressed :class:`TraceStore` + fused
   :func:`repro.arch.replay.replay`) must report the *identical* metric
   summary the baseline (re-execute every cell, reference multi-pass
   simulators) reports, and the fused engine's per-access miss masks must
   be bitwise identical to the reference simulators on a real workload
   trace.  No tolerance: same dict, same bits.

2. **Sweep speedup** — wall-clock for the full workloads x machines
   sweep, fast vs. baseline.  Acceptance floor: **3x**.

Results land in ``BENCH_replay.json``.  ``REPRO_BENCH_SCALE`` shrinks the
dataset for CI smoke runs (the gate is scale-independent; the speedup is
asserted at any scale because the saved work — workload re-execution and
redundant simulator passes — shrinks with it proportionally).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replay_fastpath.py
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.arch import MemoryHierarchy, TLB, replay
from repro.arch.machine import SCALED_XEON, MachineConfig
from repro.core.tracestore import TraceStore
from repro.datagen.registry import make as make_dataset
from repro.harness import format_table
from repro.harness.runner import run_cpu_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
# one workload per paper computation class: Gibbs (CompDyn, the heaviest
# execution), TC (CompStruct, orientation-pass heavy), CComp (CompProp
# analytics), kCore (iterative peel)
WORKLOAD_SET = ("Gibbs", "TC", "CComp", "kCore")
SPEEDUP_FLOOR = 3.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_replay.json"


def _machines() -> list[MachineConfig]:
    """SCALED_XEON plus four cache-geometry variants — the shape of a
    machine-sensitivity sweep (same trace, five hierarchies)."""
    base = SCALED_XEON
    variants = [base]
    for tag, l2_f, l3_f, a2, a3 in (
            ("half-llc", 1, 2, base.l2.assoc, base.l3.assoc),
            ("quarter-llc", 1, 4, base.l2.assoc, base.l3.assoc),
            ("half-l2", 2, 1, base.l2.assoc, base.l3.assoc),
            ("low-assoc", 1, 1, 2, 4)):
        variants.append(dataclasses.replace(
            base,
            name=f"{base.name}/{tag}",
            l2=dataclasses.replace(base.l2, size=base.l2.size // l2_f,
                                   assoc=a2),
            l3=dataclasses.replace(base.l3, size=base.l3.size // l3_f,
                                   assoc=a3)))
    return variants


def _sweep(spec, machines, *, trace_store, fast):
    """Run every workload on every machine; return {(w, m): summary}."""
    out = {}
    for wname in WORKLOAD_SET:
        for m in machines:
            _, cpu = run_cpu_workload(wname, spec, machine=m,
                                      trace_store=trace_store, fast=fast)
            out[(wname, m.name)] = cpu.summary()
    return out


def _bitwise_gate(spec, machines) -> int:
    """Fused engine vs. reference simulators on a real workload trace:
    per-access miss masks and latency must match bit for bit."""
    result, _ = run_cpu_workload("BFS", spec, machine=machines[0])
    trace = result.trace
    checked = 0
    for m in machines:
        rep = replay(trace.addrs, trace.rw, m)
        ref = MemoryHierarchy(m).simulate(trace.addrs, trace.rw)
        tlb = TLB(m.tlb)
        ref_tlb_miss = tlb.simulate(trace.addrs)
        assert np.array_equal(ref.l1_miss, rep.hierarchy.l1_miss)
        assert np.array_equal(ref.l2_miss, rep.hierarchy.l2_miss)
        assert np.array_equal(ref.l3_miss, rep.hierarchy.l3_miss)
        assert np.array_equal(ref.latency, rep.hierarchy.latency)
        assert np.array_equal(ref_tlb_miss, rep.tlb_miss)
        assert ref.l1 == rep.hierarchy.l1
        assert ref.l2 == rep.hierarchy.l2
        assert ref.l3 == rep.hierarchy.l3
        assert tlb.stats() == rep.tlb
        checked += 1
    return checked


def run_replay_benchmark() -> dict:
    spec = make_dataset("ldbc", scale=SCALE, seed=SEED)
    machines = _machines()

    masks_checked = _bitwise_gate(spec, machines)

    t0 = time.perf_counter()
    slow = _sweep(spec, machines, trace_store=None, fast=False)
    t_slow = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        t0 = time.perf_counter()
        fast = _sweep(spec, machines, trace_store=store, fast=True)
        t_fast = time.perf_counter() - t0
        store_stats = store.stats.as_dict()

    cells = len(WORKLOAD_SET) * len(machines)
    mismatched = [f"{w}@{m}" for (w, m) in slow
                  if slow[(w, m)] != fast[(w, m)]]
    speedup = t_slow / t_fast if t_fast else float("inf")

    return {
        "config": {"scale": SCALE, "seed": SEED,
                   "workloads": list(WORKLOAD_SET),
                   "machines": [m.name for m in machines],
                   "cells": cells},
        "equivalence": {"cells_compared": cells,
                        "mismatched_cells": mismatched,
                        "bitwise_mask_machines": masks_checked,
                        "identical": not mismatched},
        "baseline_s": round(t_slow, 4),
        "fastpath_s": round(t_fast, 4),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "trace_store": store_stats,
    }


def _render(results: dict) -> str:
    rows = [["baseline (re-execute + reference)",
             results["baseline_s"], "1.0x"],
            ["fast (trace store + fused replay)",
             results["fastpath_s"], f"{results['speedup']:.1f}x"]]
    return format_table(
        ["configuration", "sweep_s", "speedup"], rows,
        title=(f"{results['config']['cells']}-cell machine sweep "
               f"(scale={results['config']['scale']})"))


def test_replay_fastpath_equivalence_and_speedup():
    results = run_replay_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results)
         + f"\ntrace store: {results['trace_store']}"
         + f"\nequivalence: {results['equivalence']}")
    assert results["equivalence"]["identical"], \
        results["equivalence"]["mismatched_cells"]
    assert results["speedup"] >= SPEEDUP_FLOOR, results


if __name__ == "__main__":
    results = run_replay_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    print(f"trace store: {results['trace_store']}")
    print(f"equivalence: {results['equivalence']}")
    print(f"wrote {OUT_PATH}")
