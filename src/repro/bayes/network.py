"""Bayesian network: DAG of categorical variables with CPTs.

The substrate for the Gibbs workload (approximate inference, paper
Table 4) and the TMorph workload (moralization of a DAG into an undirected
moral graph).  Vertices are integers ``0..n-1``; parents are ordered (CPT
row indexing depends on parent order).
"""

from __future__ import annotations

import numpy as np

from .cpt import CPT, deterministic_cpt, random_cpt


class BayesianNetwork:
    """Immutable-topology Bayesian network over categorical variables."""

    def __init__(self, arities: list[int]):
        self.arities = [int(a) for a in arities]
        if any(a < 1 for a in self.arities):
            raise ValueError("arities must be >= 1")
        self.n = len(self.arities)
        self.parents: list[tuple[int, ...]] = [() for _ in range(self.n)]
        self.children: list[list[int]] = [[] for _ in range(self.n)]
        self.cpts: list[CPT | None] = [None] * self.n

    # -- construction --------------------------------------------------------
    def set_parents(self, v: int, parents: tuple[int, ...]) -> None:
        """Assign ``v``'s parent tuple (must keep the graph acyclic)."""
        for p in self.parents[v]:
            self.children[p].remove(v)
        self.parents[v] = tuple(parents)
        for p in parents:
            if not 0 <= p < self.n:
                raise ValueError(f"parent {p} out of range")
            self.children[p].append(v)
        if self._has_cycle():
            raise ValueError(f"setting parents of {v} creates a cycle")

    def set_cpt(self, v: int, cpt: CPT) -> None:
        """Attach ``v``'s CPT (shape must match arity and parents)."""
        if cpt.arity != self.arities[v]:
            raise ValueError(f"CPT arity {cpt.arity} != {self.arities[v]}")
        expected = tuple(self.arities[p] for p in self.parents[v])
        if cpt.parent_arities != expected:
            raise ValueError(
                f"CPT parents {cpt.parent_arities} != graph {expected}")
        self.cpts[v] = cpt

    def randomize_cpts(self, rng: np.random.Generator,
                       deterministic_fraction: float = 0.0) -> None:
        """Fill every CPT randomly (Dirichlet, with an optional fraction of
        near-deterministic diagnostic-style tables)."""
        for v in range(self.n):
            pa = tuple(self.arities[p] for p in self.parents[v])
            if rng.random() < deterministic_fraction:
                self.set_cpt(v, deterministic_cpt(self.arities[v], pa, rng))
            else:
                self.set_cpt(v, random_cpt(self.arities[v], pa, rng))

    # -- queries -------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return sum(len(p) for p in self.parents)

    @property
    def n_params(self) -> int:
        """Total CPT parameters (MUNIN reports 80592)."""
        return sum(c.n_params for c in self.cpts if c is not None)

    def edges(self) -> list[tuple[int, int]]:
        """Directed (parent -> child) edge list."""
        return [(p, v) for v in range(self.n) for p in self.parents[v]]

    def topological_order(self) -> list[int]:
        """Topological order (raises ValueError on a cycle)."""
        indeg = [len(p) for p in self.parents]
        stack = [v for v in range(self.n) if indeg[v] == 0]
        order = []
        while stack:
            v = stack.pop()
            order.append(v)
            for c in self.children[v]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    stack.append(c)
        if len(order) != self.n:
            raise ValueError("network contains a cycle")
        return order

    def _has_cycle(self) -> bool:
        try:
            self.topological_order()
            return False
        except ValueError:
            return True

    def markov_blanket(self, v: int) -> set[int]:
        """Parents, children, and children's other parents of ``v``."""
        mb = set(self.parents[v]) | set(self.children[v])
        for c in self.children[v]:
            mb.update(self.parents[c])
        mb.discard(v)
        return mb

    # -- sampling ------------------------------------------------------------
    def forward_sample(self, rng: np.random.Generator) -> np.ndarray:
        """Ancestral sample of all variables (requires all CPTs)."""
        state = np.zeros(self.n, dtype=np.int64)
        for v in self.topological_order():
            cpt = self.cpts[v]
            if cpt is None:
                raise ValueError(f"variable {v} has no CPT")
            pstates = tuple(int(state[p]) for p in self.parents[v])
            state[v] = rng.choice(cpt.arity, p=cpt.row(pstates))
        return state

    def conditional_row(self, v: int, state: np.ndarray) -> np.ndarray:
        """P(X_v | markov blanket in ``state``), unnormalized then
        normalized — the inner computation of Gibbs sampling."""
        cpt = self.cpts[v]
        pstates = tuple(int(state[p]) for p in self.parents[v])
        probs = cpt.row(pstates).copy()
        for c in self.children[v]:
            ccpt = self.cpts[c]
            cps = [int(state[p]) for p in self.parents[c]]
            vpos = self.parents[c].index(v)
            for x in range(cpt.arity):
                cps[vpos] = x
                probs[x] *= ccpt.prob(int(state[c]), tuple(cps))
        s = probs.sum()
        if s <= 0:
            probs[:] = 1.0 / len(probs)
        else:
            probs /= s
        return probs
