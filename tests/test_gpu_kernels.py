"""Correctness + divergence-shape tests for the 8 GPU kernels."""

import numpy as np
import pytest

from repro import workloads as W
from repro.datagen import ca_road, ldbc
from repro.gpu import GPU_KERNELS, run_gpu_workload


@pytest.fixture(scope="module")
def social():
    return ldbc(600, avg_degree=10, seed=2)


@pytest.fixture(scope="module")
def road():
    return ca_road(400, seed=1)


class TestKernelCorrectness:
    def test_bfs(self, social):
        out, _ = run_gpu_workload("BFS", social, root=0)
        ref = W.BFS.reference(social, 0)
        assert all(out["levels"][v] == d for v, d in ref.items())
        assert out["visited"] == len(ref)

    def test_bfs_unreached_minus_one(self, road):
        out, _ = run_gpu_workload("BFS", road, root=0)
        ref = W.BFS.reference(road, 0)
        unreached = set(range(road.n)) - set(ref)
        assert all(out["levels"][v] == -1 for v in unreached)

    def test_spath(self, social):
        out, _ = run_gpu_workload("SPath", social, root=0)
        ref = W.SPath.reference(social, 0)
        assert all(out["dist"][v] == pytest.approx(d)
                   for v, d in ref.items())

    def test_kcore(self, social):
        out, _ = run_gpu_workload("kCore", social)
        ref = W.KCore.reference(social)
        assert all(out["core"][v] == c for v, c in ref.items())

    def test_kcore_road(self, road):
        out, _ = run_gpu_workload("kCore", road)
        ref = W.KCore.reference(road)
        assert all(out["core"][v] == c for v, c in ref.items())

    def test_ccomp(self, social, road):
        for spec in (social, road):
            out, _ = run_gpu_workload("CComp", spec)
            assert out["n_components"] == W.CComp.reference(spec)

    def test_ccomp_labels_consistent(self, road):
        import networkx as nx
        out, _ = run_gpu_workload("CComp", road)
        comp = out["comp"]
        und = nx.Graph(road.nx())
        for cset in nx.connected_components(und):
            assert len({comp[v] for v in cset}) == 1

    def test_gcolor_proper(self, social):
        out, _ = run_gpu_workload("GColor", social, seed=3)
        colors = {v: int(c) for v, c in enumerate(out["colors"])}
        assert W.GColor.is_proper(social, colors)
        assert (out["colors"] >= 0).all()

    def test_tc(self, social, road):
        for spec in (social, road):
            out, _ = run_gpu_workload("TC", spec)
            assert out["triangles"] == W.TC.reference(spec)

    def test_dcentr(self, social):
        out, _ = run_gpu_workload("DCentr", social)
        ref = W.DCentr.reference(social)
        assert all(out["dc"][v] == ref[v] for v in ref)

    def test_bcentr_exact(self):
        spec = ldbc(150, avg_degree=5, seed=4)
        out, _ = run_gpu_workload("BCentr", spec, n_sources=None)
        ref = W.BCentr.reference(spec)
        for v, b in ref.items():
            assert out["bc"][v] == pytest.approx(b, abs=1e-6)

    def test_unknown_kernel(self, social):
        with pytest.raises(KeyError):
            run_gpu_workload("DFS", social)

    def test_spath_negative_weight_rejected(self):
        from repro.formats import from_edge_arrays
        from repro.gpu.kernels import GPU_KERNELS as K
        csr = from_edge_arrays(2, [0], [1], [-1.0])
        with pytest.raises(ValueError):
            K["SPath"]().kernel(csr, None,
                                __import__("repro.gpu.simt",
                                           fromlist=["KernelAccum"]
                                           ).KernelAccum(), root=0)


class TestDivergenceShape:
    """Fig. 10's qualitative layout of the divergence space."""

    @pytest.fixture(scope="class")
    def metrics(self, social):
        out = {}
        for name in GPU_KERNELS:
            kw = {"n_sources": 4} if name == "BCentr" else {}
            _, m = run_gpu_workload(name, social, **kw)
            out[name] = m
        return out

    def test_edge_centric_ccomp_converged(self, metrics):
        assert metrics["CComp"].bdr < 0.05

    def test_ccomp_memory_divergent(self, metrics):
        assert metrics["CComp"].mdr > 0.5

    def test_tc_bdr_below_thread_centric(self, metrics):
        assert metrics["TC"].bdr < metrics["GColor"].bdr
        assert metrics["TC"].bdr < metrics["DCentr"].bdr

    def test_kcore_lowest_thread_centric_bdr(self, metrics):
        thread_centric = ("BFS", "SPath", "GColor", "DCentr", "BCentr")
        assert all(metrics["kCore"].bdr < metrics[k].bdr
                   for k in thread_centric)

    def test_gcolor_bcentr_branch_heavy(self, metrics):
        assert metrics["GColor"].bdr > 0.6
        assert metrics["BCentr"].bdr > 0.6

    def test_all_rates_in_unit_interval(self, metrics):
        for m in metrics.values():
            assert 0.0 <= m.bdr <= 1.0
            assert 0.0 <= m.mdr <= 1.0

    def test_divergence_data_sensitivity(self, social, road):
        """Fig. 13: the road network's low degrees reduce BDR for the
        degree-loop kernels."""
        for name in ("BFS", "GColor", "DCentr"):
            _, ms = run_gpu_workload(name, social)
            _, mr = run_gpu_workload(name, road)
            assert mr.bdr < ms.bdr


class TestEdgeCentricBFS:
    def test_matches_thread_centric(self, social):
        import numpy as np
        from repro.formats.convert import csr_to_coo
        from repro.gpu.kernels import GPUBfs, GPUBfsEdgeCentric
        csr = social.csr()
        coo = csr_to_coo(csr)
        out_t, _ = GPUBfs().run(csr, coo, root=0)
        out_e, _ = GPUBfsEdgeCentric().run(csr, coo, root=0)
        assert np.array_equal(out_t["levels"], out_e["levels"])

    def test_bdr_collapses(self, social):
        from repro.formats.convert import csr_to_coo
        from repro.gpu.device import time_kernel
        from repro.gpu.kernels import GPUBfs, GPUBfsEdgeCentric
        csr = social.csr()
        coo = csr_to_coo(csr)
        _, st_t = GPUBfs().run(csr, coo, root=0)
        _, st_e = GPUBfsEdgeCentric().run(csr, coo, root=0)
        assert time_kernel(st_e).bdr < 0.05 < time_kernel(st_t).bdr

    def test_requires_coo(self, social):
        import pytest
        from repro.gpu.kernels import GPUBfsEdgeCentric
        with pytest.raises(ValueError):
            GPUBfsEdgeCentric().run(social.csr(), None, root=0)
