"""Command-line interface: run, characterize, and report GraphBIG
workloads without writing Python.

Examples::

    python -m repro list
    python -m repro run BFS --dataset ldbc --scale 0.25
    python -m repro characterize TC --dataset twitter --scale 0.1
    python -m repro gpu CComp --dataset roadnet --scale 0.25
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys


def _spec(args):
    from .datagen.registry import make
    return make(args.dataset, scale=args.scale, seed=args.seed)


def cmd_list(args) -> int:
    from .workloads import table4
    print(f"{'workload':8s} {'category':26s} {'ctype':11s} {'gpu':4s} "
          "algorithm")
    for r in table4():
        print(f"{r.workload:8s} {r.category:26s} "
              f"{r.computation_type:11s} {'yes' if r.gpu else 'no':4s} "
              f"{r.algorithm}")
    return 0


def cmd_datasets(args) -> int:
    from .datagen.registry import REGISTRY
    print(f"{'key':10s} {'name':26s} {'source':12s} "
          f"{'paper V/E':>24s} {'default V':>10s}")
    for key, e in REGISTRY.items():
        print(f"{key:10s} {e.name:26s} {e.source.name:12s} "
              f"{e.paper_vertices:>10,}/{e.paper_edges:<12,} "
              f"{e.default_vertices:>9d}")
    return 0


def cmd_run(args) -> int:
    from .harness.runner import run_cpu_workload
    spec = _spec(args)
    print(f"dataset: {spec}")
    result, _ = run_cpu_workload(args.workload, spec)
    for key, value in result.outputs.items():
        text = repr(value)
        print(f"  {key}: {text[:100] + '...' if len(text) > 100 else text}")
    return 0


def cmd_characterize(args) -> int:
    from .arch.machine import describe
    from .harness import characterize
    from .harness.runner import SCALED_XEON
    spec = _spec(args)
    print(f"dataset: {spec}")
    print(f"machine: {describe(SCALED_XEON)}")
    row = characterize(args.workload, spec)
    for key, value in sorted(row.cpu.summary().items()):
        print(f"  {key:22s} {value:12.4f}")
    return 0


def cmd_gpu(args) -> int:
    from .gpu import run_gpu_workload
    spec = _spec(args)
    print(f"dataset: {spec}")
    _, metrics = run_gpu_workload(args.workload, spec)
    for key, value in sorted(metrics.summary().items()):
        print(f"  {key:18s} {value:12.6f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="GraphBIG reproduction: run and characterize "
                    "graph-computing workloads")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 13 workloads (Table 4)")
    sub.add_parser("datasets", help="list the dataset registry (Table 5)")

    def add_common(sp):
        sp.add_argument("workload", help="workload name, e.g. BFS")
        sp.add_argument("--dataset", default="ldbc",
                        help="registry dataset key (default: ldbc)")
        sp.add_argument("--scale", type=float, default=0.25,
                        help="dataset scale factor (default: 0.25)")
        sp.add_argument("--seed", type=int, default=0)

    add_common(sub.add_parser("run", help="run a workload, print outputs"))
    add_common(sub.add_parser(
        "characterize", help="run + CPU architectural characterization"))
    add_common(sub.add_parser("gpu", help="run the GPU kernel + metrics"))
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"list": cmd_list, "datasets": cmd_datasets, "run": cmd_run,
               "characterize": cmd_characterize, "gpu": cmd_gpu}
    try:
        return handler[args.command](args)
    except KeyError as e:   # unknown workload/dataset names
        print(f"error: {e}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
