"""Unit tests for the execution tracer (repro.core.trace)."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core import trace as T
from repro.core.trace import FrozenTrace, Tracer


class TestEventRecording:
    def test_reads_and_writes(self):
        t = Tracer()
        t.r(100)
        t.w(200)
        ft = t.freeze()
        assert list(ft.addrs) == [100, 200]
        assert list(ft.rw) == [0, 1]

    def test_instruction_index_at_access(self):
        t = Tracer()
        t.i(5)
        t.r(1)
        t.i(3)
        t.w(2)
        ft = t.freeze()
        assert list(ft.iat) == [5, 8]
        assert ft.n_instrs == 8

    def test_branches(self):
        t = Tracer()
        t.br(T.B_EDGE_LOOP, True)
        t.br(T.B_EDGE_LOOP, False)
        ft = t.freeze()
        assert ft.n_branches == 2
        assert list(ft.branch_taken) == [1, 0]

    def test_aliases(self):
        t = Tracer()
        t.read(1)
        t.write(2)
        t.instr(3)
        t.branch(1, True)
        ft = t.freeze()
        assert ft.n_accesses == 2
        assert ft.n_instrs == 3
        assert ft.n_branches == 1

    def test_bulk_reads_writes(self):
        t = Tracer()
        t.bulk_reads([10, 20], instrs_per_access=3)
        t.bulk_writes([30])
        ft = t.freeze()
        assert list(ft.addrs) == [10, 20, 30]
        assert ft.n_instrs == 3 + 3 + 2


class TestRegions:
    def test_enter_leave_tracks_region(self):
        t = Tracer()
        t.r(1)
        t.enter(T.R_FIND_VERTEX)
        t.r(2)
        t.leave()
        t.r(3)
        ft = t.freeze()
        assert list(ft.acc_region) == [T.R_IDLE, T.R_FIND_VERTEX, T.R_IDLE]

    def test_unbalanced_leave_raises(self):
        t = Tracer()
        with pytest.raises(TraceError):
            t.leave()

    def test_framework_instruction_split(self):
        t = Tracer()
        t.i(10)                      # user (R_IDLE)
        t.enter(T.R_ADD_EDGE)
        t.i(30)                      # framework
        t.leave()
        ft = t.freeze()
        assert ft.fw_instrs == 30
        assert ft.user_instrs == 10
        assert ft.framework_fraction() == pytest.approx(0.75)

    def test_framework_access_split(self):
        t = Tracer()
        t.r(1)
        t.enter(T.R_NEIGHBORS)
        t.r(2)
        t.r(3)
        t.leave()
        assert t.fw_accesses == 2

    def test_empty_trace_fraction_zero(self):
        assert Tracer().freeze().framework_fraction() == 0.0

    def test_region_sequence_records_visits(self):
        t = Tracer()
        t.enter(T.R_FIND_VERTEX)
        t.leave()
        t.enter(T.R_ADD_EDGE)
        t.leave()
        ft = t.freeze()
        seq = list(ft.region_seq)
        assert T.R_FIND_VERTEX in seq
        assert T.R_ADD_EDGE in seq
        assert seq[0] == T.R_IDLE

    def test_region_instr_attribution(self):
        t = Tracer()
        t.enter(T.R_PROP_GET)
        t.i(7)
        t.leave()
        ft = t.freeze()
        idx = list(ft.region_seq).index(T.R_PROP_GET)
        assert ft.region_instrs[idx] == 7


class TestRegistration:
    def test_register_region_ids_monotone(self):
        t = Tracer()
        r1 = t.register_region("k1")
        r2 = t.register_region("k2", code_bytes=512)
        assert r2 == r1 + 1
        assert r1 >= T.USER_REGION_BASE
        assert t.regions[r2].code_bytes == 512
        assert not t.regions[r1].framework

    def test_register_branch_site(self):
        t = Tracer()
        s1 = t.register_branch_site()
        s2 = t.register_branch_site()
        assert s2 == s1 + 1
        assert s1 >= T.USER_BRANCH_BASE

    def test_framework_regions_predefined(self):
        t = Tracer()
        assert t.regions[T.R_NEIGHBORS].framework
        assert not t.regions[T.R_IDLE].framework


class TestReset:
    def test_reset_clears_events(self):
        t = Tracer()
        t.i(5)
        t.r(1)
        t.br(1, True)
        t.enter(T.R_FIND_VERTEX)
        t.leave()
        t.reset()
        ft = t.freeze()
        assert ft.n_accesses == 0
        assert ft.n_instrs == 0
        assert ft.n_branches == 0
        assert list(ft.region_seq) == [T.R_IDLE]

    def test_reset_keeps_registrations(self):
        t = Tracer()
        rid = t.register_region("kern")
        t.reset()
        assert rid in t.regions


def test_frozen_dtypes():
    t = Tracer()
    t.i(1)
    t.r(12345)
    ft = t.freeze()
    assert ft.addrs.dtype == np.uint64
    assert ft.rw.dtype == np.uint8
    assert ft.acc_region.dtype == np.uint32
    assert isinstance(ft, FrozenTrace)
