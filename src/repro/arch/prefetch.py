"""Hardware-prefetcher models — probing the paper's "opportunity".

Section 5.2.2: "The major inefficiency of graph workloads comes from
memory subsystem.  Their extremely low cache hit rate introduces
challenges as well as opportunities for future graph architecture/system
research."  The first thing an architect tries is a prefetcher; these
models quantify why the standard ones barely help pointer-chasing
workloads (and why they do help CSR streaming):

* :class:`NextLinePrefetcher` — on a miss to line L, also fetch L+1.
* :class:`StridePrefetcher` — per-PC-ish stride table (here keyed by the
  traced code region, the closest analogue to a load PC) issuing a
  prefetch when a reference stride repeats.

Both are evaluated *offline* over a trace: a prefetch is useful iff the
predicted line is the next line referenced within the lookahead window —
an optimistic (timeliness-free) upper bound, which makes the "prefetchers
don't save graph traversals" conclusion conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import FrozenTrace
from .cache import Cache, CacheConfig


@dataclass
class PrefetchStats:
    """Outcome of an offline prefetcher evaluation."""

    issued: int
    useful: int
    demand_misses: int        # baseline misses without prefetching
    covered: int              # baseline misses removed by useful prefetches

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of demand misses eliminated."""
        return (self.covered / self.demand_misses
                if self.demand_misses else 0.0)


class NextLinePrefetcher:
    """Fetch line L+1 alongside every demand miss to L."""

    def __init__(self, config: CacheConfig, lookahead: int = 64):
        self.config = config
        self.lookahead = lookahead

    def evaluate(self, trace: FrozenTrace) -> PrefetchStats:
        lines = (np.asarray(trace.addrs, dtype=np.uint64)
                 // np.uint64(self.config.line))
        base = Cache(self.config)
        miss = base.simulate(trace.addrs)
        demand = int(miss.sum())
        # a next-line prefetch at miss i is useful iff line+1 appears in
        # the next `lookahead` references
        issued = demand
        useful = 0
        lines_list = lines.tolist()
        n = len(lines_list)
        for i in np.flatnonzero(miss).tolist():
            target = lines_list[i] + 1
            window = lines_list[i + 1:i + 1 + self.lookahead]
            if target in window:
                useful += 1
        return PrefetchStats(issued=issued, useful=useful,
                             demand_misses=demand, covered=useful)


class StridePrefetcher:
    """Region-keyed stride predictor (an idealized IP-stride prefetcher).

    Tracks, per traced code region, the last address and last stride;
    when the stride repeats, the next address is predicted.  Useful iff
    the prediction matches that region's next reference.
    """

    def __init__(self, config: CacheConfig):
        self.config = config

    def evaluate(self, trace: FrozenTrace) -> PrefetchStats:
        base = Cache(self.config)
        miss = base.simulate(trace.addrs)
        demand = int(miss.sum())
        line = self.config.line
        addrs = trace.addrs.tolist()
        regions = trace.acc_region.tolist()
        last_addr: dict[int, int] = {}
        last_stride: dict[int, int] = {}
        prediction: dict[int, int] = {}
        issued = 0
        useful = 0
        covered = 0
        miss_list = miss.tolist()
        for i, (a, r) in enumerate(zip(addrs, regions)):
            pred = prediction.pop(r, None)
            if pred is not None and abs(a - pred) < line:
                useful += 1
                if miss_list[i]:
                    covered += 1
            prev = last_addr.get(r)
            if prev is not None:
                stride = a - prev
                if stride != 0 and last_stride.get(r) == stride:
                    prediction[r] = a + stride
                    issued += 1
                last_stride[r] = stride
            last_addr[r] = a
        return PrefetchStats(issued=issued, useful=useful,
                             demand_misses=demand, covered=covered)


def prefetch_comparison(trace: FrozenTrace, config: CacheConfig
                        ) -> dict[str, PrefetchStats]:
    """Evaluate both prefetchers over one trace."""
    return {"next-line": NextLinePrefetcher(config).evaluate(trace),
            "stride": StridePrefetcher(config).evaluate(trace)}
