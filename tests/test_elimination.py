"""Tests for exact inference by variable elimination."""

import numpy as np
import pytest

from repro.bayes import (
    BayesianNetwork,
    exact_marginals_brute_force,
    gibbs_sample,
    munin_like,
)
from repro.bayes.elimination import (
    Factor,
    eliminate_marginal,
    exact_marginals,
)


class TestFactor:
    def test_rank_check(self):
        with pytest.raises(ValueError):
            Factor((0, 1), np.zeros(3))

    def test_multiply_disjoint(self):
        f = Factor((0,), np.array([1.0, 2.0]))
        g = Factor((1,), np.array([10.0, 20.0, 30.0]))
        h = f.multiply(g)
        assert h.vars == (0, 1)
        assert h.table.shape == (2, 3)
        assert h.table[1, 2] == 60.0

    def test_multiply_shared_axis(self):
        f = Factor((0, 1), np.arange(6, dtype=float).reshape(2, 3))
        g = Factor((1,), np.array([1.0, 0.0, 2.0]))
        h = f.multiply(g)
        assert h.table[1, 1] == 0.0
        assert h.table[1, 2] == f.table[1, 2] * 2

    def test_multiply_commutes(self):
        rng = np.random.default_rng(0)
        f = Factor((0, 2), rng.random((2, 4)))
        g = Factor((2, 1), rng.random((4, 3)))
        a = f.multiply(g)
        b = g.multiply(f)
        # same values over possibly different axis orders
        perm = [b.vars.index(v) for v in a.vars]
        assert np.allclose(a.table, np.transpose(b.table, perm))

    def test_sum_out(self):
        f = Factor((0, 1), np.arange(6, dtype=float).reshape(2, 3))
        s = f.sum_out(0)
        assert s.vars == (1,)
        assert list(s.table) == [3.0, 5.0, 7.0]
        assert f.sum_out(99) is f

    def test_reduce(self):
        f = Factor((0, 1), np.arange(6, dtype=float).reshape(2, 3))
        r = f.reduce(1, 2)
        assert r.vars == (0,)
        assert list(r.table) == [2.0, 5.0]

    def test_scalar(self):
        assert Factor((), np.array(3.5)).scalar == 3.5
        with pytest.raises(ValueError):
            Factor((0,), np.ones(2)).scalar


def _random_net(n, seed, max_arity=3, window=None):
    """Random sparse net; a parent ``window`` bounds the induced width
    (local chains, like layered diagnostic networks)."""
    rng = np.random.default_rng(seed)
    bn = BayesianNetwork(rng.integers(2, max_arity + 1, n).tolist())
    for v in range(1, n):
        lo = 0 if window is None else max(0, v - window)
        k = int(rng.integers(0, min(v - lo, 3) + 1))
        parents = tuple((lo + rng.choice(v - lo, size=k,
                                         replace=False)).tolist())
        bn.set_parents(v, parents)
    bn.randomize_cpts(rng)
    return bn


class TestEliminationVsBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_evidence(self, seed):
        bn = _random_net(7, seed)
        exact = exact_marginals_brute_force(bn)
        for q in range(bn.n):
            ve = eliminate_marginal(bn, q)
            assert np.allclose(ve, exact[q], atol=1e-9), q

    @pytest.mark.parametrize("seed", range(3))
    def test_with_evidence(self, seed):
        bn = _random_net(6, seed + 10)
        ev = {0: 1, 3: 0}
        exact = exact_marginals_brute_force(bn, evidence=ev)
        for q in range(bn.n):
            ve = eliminate_marginal(bn, q, evidence=ev)
            assert np.allclose(ve, exact[q], atol=1e-9), q

    def test_query_is_evidence(self):
        bn = _random_net(4, 2)
        m = eliminate_marginal(bn, 0, evidence={0: 1})
        assert m[1] == 1.0


class TestEliminationAtScale:
    def test_beyond_brute_force_cap(self):
        """Exact inference on a sparse 200-variable net — far beyond the
        brute-force cap (the point of variable elimination)."""
        bn = _random_net(200, seed=3, max_arity=3, window=6)
        marg = exact_marginals(bn, queries=[0, 50, 199])
        for m in marg.values():
            assert m.sum() == pytest.approx(1.0)
            assert (m >= 0).all()

    def test_width_explosion_raises_cleanly(self):
        """High-arity diagnostic nets (like the real MUNIN) can exceed
        the tractable induced width; the failure must be a clear error,
        not a memory blowup."""
        bn = munin_like(n_vertices=400, n_edges=560, target_params=40000,
                        seed=3)
        try:
            eliminate_marginal(bn, 0,
                               max_factor_entries=100_000)
        except ValueError as e:
            assert "induced width" in str(e)

    def test_gibbs_converges_to_elimination(self):
        """The Gibbs workload's estimates approach the exact marginals on
        a network too big for brute force."""
        bn = _random_net(30, seed=7, max_arity=2)
        _, gibbs = gibbs_sample(bn, n_sweeps=6000, burn_in=500, seed=4)
        for q in (0, 7, 29):
            ve = eliminate_marginal(bn, q)
            assert np.allclose(gibbs[q], ve, atol=0.05), q
