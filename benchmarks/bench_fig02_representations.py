"""Figure 2 / Section 2 "Data representation" — CSR vs vertex-centric.

Paper: CSR's compact format brings better locality and cache performance,
but only supports static graphs; graph systems adopt the flexible
vertex-centric layout anyway (and the CSR-on-GPU locality advantage feeds
Fig. 12).  Measured: the same BFS traversal's cache behaviour over (a) the
dynamic vertex-centric representation on an aged heap and (b) the packed
CSR arrays, plus the memory-footprint comparison.
"""

import numpy as np

from benchmarks.conftest import show
from repro.arch import MemoryHierarchy
from repro.core.trace import Tracer
from repro.harness import format_table, paper_note
from repro.workloads import BFS, common_edge_schema, common_vertex_schema


def _vertex_centric_trace(spec, root):
    t = Tracer()
    g = spec.build(vertex_schema=common_vertex_schema(),
                   edge_schema=common_edge_schema())
    BFS().run(g, tracer=t, root=root)
    return t.freeze(), g.alloc.footprint


def _csr_trace(spec, root):
    """The same level-synchronous BFS over CSR's compact arrays."""
    csr = spec.csr()
    t = Tracer()
    rid = t.register_region("bfs_csr_kernel", 448)
    t.enter(rid)
    level = np.full(csr.n, -1)
    level[root] = 0
    frontier = [root]
    lvl_base = csr.base_vprop
    while frontier:
        nxt = []
        for v in frontier:
            t.i(6)
            for dst in csr.traced_neighbors(v, t):
                t.i(4)
                t.r(lvl_base + 8 * dst)
                if level[dst] < 0:
                    level[dst] = level[v] + 1
                    t.w(lvl_base + 8 * dst)
                    nxt.append(dst)
        frontier = nxt
    t.leave()
    return t.freeze(), csr.alloc.footprint


def test_fig02_representations(suite, benchmark):
    spec = suite.ldbc
    root = int(np.argmax(spec.out_degrees()))
    vc_trace, vc_foot = _vertex_centric_trace(spec, root)
    csr_trace, csr_foot = _csr_trace(spec, root)

    def simulate():
        out = {}
        for name, tr in (("vertex-centric", vc_trace), ("CSR", csr_trace)):
            res = MemoryHierarchy(suite.machine).simulate(tr.addrs, tr.rw)
            out[name] = res
        return out

    res = benchmark(simulate)
    rows = [[name, r.l1.hit_rate, int(r.l3.misses),
             (vc_foot if name == "vertex-centric" else csr_foot) / 1024]
            for name, r in res.items()]
    show(format_table(
        ["representation", "l1d_hit", "dram_fetches", "footprint_KiB"],
        rows, title="Fig. 2 — data-representation contrast (BFS)")
        + paper_note("CSR's compact format saves memory and brings better "
                     "locality; vertex-centric is kept for dynamism"))
    # CSR is more compact and moves less data from DRAM for the same
    # traversal (the locality advantage the GPU inherits, Fig. 12)
    assert csr_foot < vc_foot
    assert res["CSR"].l3.misses < res["vertex-centric"].l3.misses
