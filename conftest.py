"""Root conftest: keep the pytest config valid without pytest-timeout.

pyproject.toml sets a global per-test timeout via the pytest-timeout
plugin so a hung workload (or a deadlocked subprocess-isolation test)
fails fast instead of wedging the suite.  When the plugin isn't installed
we register its ini options as inert no-ops, so both ``pytest tests/``
and ``pytest benchmarks/`` run warning-free either way.
"""

try:
    import pytest_timeout  # noqa: F401
except ImportError:
    def pytest_addoption(parser):
        parser.addini("timeout", "per-test timeout (pytest-timeout absent:"
                      " inert)", default=None)
        parser.addini("timeout_method", "timeout method (pytest-timeout "
                      "absent: inert)", default=None)
