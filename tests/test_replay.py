"""Cross-validation of the fused one-pass replay engine (repro.arch.replay)
against the multi-pass reference simulators — including hypothesis-generated
geometries and traces.  The reference stays in the tree as the oracle; the
fused engine must be bitwise identical to it."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.arch import MemoryHierarchy, TLB, replay
from repro.arch.cache import Cache, CacheConfig, line_ids
from repro.arch.machine import SCALED_XEON, TEST_MACHINE, MachineConfig
from repro.arch.tlb import TLBConfig

# small geometries that keep hypothesis runs fast but still exercise
# conflict misses, eviction, and multi-set indexing
_GEOMETRIES = [
    # (l1 size, l1 assoc, l2 size, l2 assoc, l3 size, l3 assoc)
    (256, 1, 512, 2, 2048, 4),
    (512, 2, 1024, 4, 4096, 4),
    (512, 4, 2048, 8, 8192, 8),
    (1024, 4, 4096, 2, 8192, 16),
]


def _machine(geom_idx: int, tlb_entries: int = 8) -> MachineConfig:
    s1, a1, s2, a2, s3, a3 = _GEOMETRIES[geom_idx % len(_GEOMETRIES)]
    return MachineConfig(
        name=f"hyp-{geom_idx}",
        l1d=CacheConfig("L1D", size=s1, assoc=a1, line=64, latency=4),
        l2=CacheConfig("L2", size=s2, assoc=a2, line=64, latency=12),
        l3=CacheConfig("L3", size=s3, assoc=a3, line=64, latency=42),
        icache=CacheConfig("L1I", size=4096, assoc=4, line=64, latency=4),
        tlb=TLBConfig(entries=tlb_entries, assoc=4, walk_latency=36),
    )


def _reference(machine, addrs, rw):
    hier = MemoryHierarchy(machine).simulate(addrs, rw)
    tlb = TLB(machine.tlb)
    tlb_miss = tlb.simulate(addrs)
    return hier, tlb.stats(), tlb_miss


def _assert_equal(machine, addrs, rw):
    ref_hier, ref_tlb, ref_tlb_miss = _reference(machine, addrs, rw)
    rep = replay(addrs, rw, machine)
    assert np.array_equal(ref_hier.l1_miss, rep.hierarchy.l1_miss)
    assert np.array_equal(ref_hier.l2_miss, rep.hierarchy.l2_miss)
    assert np.array_equal(ref_hier.l3_miss, rep.hierarchy.l3_miss)
    assert np.array_equal(ref_hier.latency, rep.hierarchy.latency)
    assert ref_hier.l1 == rep.hierarchy.l1
    assert ref_hier.l2 == rep.hierarchy.l2
    assert ref_hier.l3 == rep.hierarchy.l3
    assert np.array_equal(ref_tlb_miss, rep.tlb_miss)
    assert ref_tlb == rep.tlb


class TestFusedVsReference:
    @given(geom=st.integers(0, 3),
           seed=st.integers(0, 2**31 - 1),
           n=st.integers(0, 600))
    @settings(max_examples=40, deadline=None)
    def test_random_traces_bitwise_identical(self, geom, seed, n):
        rng = np.random.default_rng(seed)
        machine = _machine(geom)
        addrs = rng.integers(0, 1 << 20, size=n, dtype=np.uint64)
        rw = rng.integers(0, 2, size=n, dtype=np.uint8)
        _assert_equal(machine, addrs, rw)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_rw_none_matches(self, seed):
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 1 << 18, size=300, dtype=np.uint64)
        _assert_equal(_machine(seed % 4), addrs, None)

    def test_shipped_machines(self):
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 22, size=20000, dtype=np.uint64)
        rw = rng.integers(0, 2, size=20000, dtype=np.uint8)
        for m in (TEST_MACHINE, SCALED_XEON):
            _assert_equal(m, addrs, rw)

    def test_empty_trace(self):
        rep = replay(np.empty(0, np.uint64), np.empty(0, np.uint8),
                     TEST_MACHINE)
        assert rep.hierarchy.l1.accesses == 0
        assert rep.tlb.accesses == 0
        assert len(rep.hierarchy.latency) == 0

    def test_id_cache_reused_across_machines(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 20, size=2000, dtype=np.uint64)
        cache: dict = {}
        r1 = replay(addrs, None, TEST_MACHINE, id_cache=cache)
        live_grans = {k[1] for k in cache
                      if isinstance(k, tuple) and k[0] == "live"}
        assert live_grans == {64, 4096}
        r2 = replay(addrs, None, SCALED_XEON, id_cache=cache)
        ref1, _, _ = _reference(TEST_MACHINE, addrs, None)
        ref2, _, _ = _reference(SCALED_XEON, addrs, None)
        assert np.array_equal(r1.hierarchy.l1_miss, ref1.l1_miss)
        assert np.array_equal(r2.hierarchy.l1_miss, ref2.l1_miss)

    def test_l2_stage_memo_across_llc_variants(self):
        """Machines sharing L1+L2 geometry but different L3s: replays
        after the first reuse the memoized L2-miss stream (an L3-only
        walk) and must stay bitwise identical to fresh references."""
        import dataclasses
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 1 << 21, size=4000, dtype=np.uint64)
        rw = rng.integers(0, 2, size=4000, dtype=np.uint8)
        base = SCALED_XEON
        variants = [base] + [
            dataclasses.replace(
                base, name=f"llc/{div}",
                l3=dataclasses.replace(base.l3, size=base.l3.size // div))
            for div in (2, 4, 8)]
        cache: dict = {}
        for m in variants:
            rep = replay(addrs, rw, m, id_cache=cache)
            ref, ref_tlb, ref_tlb_miss = _reference(m, addrs, rw)
            assert np.array_equal(ref.l1_miss, rep.hierarchy.l1_miss)
            assert np.array_equal(ref.l2_miss, rep.hierarchy.l2_miss)
            assert np.array_equal(ref.l3_miss, rep.hierarchy.l3_miss)
            assert np.array_equal(ref.latency, rep.hierarchy.latency)
            assert ref.l1 == rep.hierarchy.l1
            assert ref.l2 == rep.hierarchy.l2
            assert ref.l3 == rep.hierarchy.l3
            assert np.array_equal(ref_tlb_miss, rep.tlb_miss)
            assert ref_tlb == rep.tlb
        assert any(isinstance(k, tuple) and k[0] == "l2stage"
                   for k in cache)


class TestCpuModelFastPath:
    def test_fast_equals_slow_on_workload(self):
        from repro.arch.cpu import CPUModel
        from repro.datagen.registry import make
        from repro.harness.runner import run_cpu_workload

        spec = make("ldbc", scale=0.03, seed=0)
        result, _ = run_cpu_workload("BFS", spec, machine=TEST_MACHINE)
        fast = CPUModel(TEST_MACHINE).run(result.trace, fast=True)
        slow = CPUModel(TEST_MACHINE).run(result.trace, fast=False)
        assert fast.summary() == slow.summary()
        assert np.array_equal(fast.hierarchy.l1_miss,
                              slow.hierarchy.l1_miss)
        assert fast.dtlb == slow.dtlb


class TestCacheLinesFastPath:
    def test_lines_param_matches_addrs(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 16, size=500, dtype=np.uint64)
        cfg = CacheConfig("t", size=1024, assoc=4, line=64)
        m1 = Cache(cfg).simulate(addrs)
        m2 = Cache(cfg).simulate(None, lines=line_ids(addrs, 64))
        m3 = Cache(cfg).simulate(None, lines=line_ids(addrs, 64).tolist())
        assert np.array_equal(m1, m2)
        assert np.array_equal(m1, m3)

    def test_line_ids_pow2_and_non_pow2(self):
        addrs = np.array([0, 63, 64, 4095, 4096, 12345], dtype=np.uint64)
        assert np.array_equal(line_ids(addrs, 64), addrs // 64)
        assert np.array_equal(line_ids(addrs, 4096), addrs // 4096)
        assert np.array_equal(line_ids(addrs, 96), addrs // 96)
