"""One cluster shard: a :class:`~repro.service.server.GraphService`
that owns a subset of the dataset keyspace.

A shard is the full single-node serving stack — caches, pool, scheduler,
metrics registry — plus three cluster behaviours:

* ``shard_info`` answers the shard's identity, ownership, and load
  (the router's topology probe);
* ``health``/``ping`` responses carry the shard id, so a probe knows
  *which* process answered on a recycled port;
* single-dataset ops (``run``/``characterize``) for a dataset the shard
  does not own fail with a typed
  :class:`~repro.core.errors.WrongShard` — loudly surfacing a stale
  ring or misrouted request instead of silently duplicating another
  shard's cache tier;
* the ``datasets`` op reports only the owned slice of the registry, so
  the router's scatter-gather union *is* the cluster's serving surface
  (a dead shard's exclusive datasets visibly drop out).

``datasets=None`` means "owns everything" — a single-shard cluster (or
a plain service promoted into one) needs no ownership list.
"""

from __future__ import annotations

from typing import Any

from .. import __version__
from ..core.errors import WrongShard
from ..service.protocol import DYNAMIC_OPS, PROTOCOL_VERSION, Request
from ..service.server import GraphService


class ShardService(GraphService):
    """A GraphService owning a subset of datasets in a cluster."""

    def __init__(self, shard_id: str,
                 datasets: "frozenset[str] | None" = None, **kwargs: Any):
        super().__init__(**kwargs)
        self.shard_id = shard_id
        self.datasets = None if datasets is None else frozenset(datasets)
        # known registry keys, cached: ownership rejection applies only
        # to datasets that exist — an unknown name falls through to the
        # server's BadRequest, which names the real mistake
        from ..datagen.registry import REGISTRY
        self._known = frozenset(REGISTRY)

    def owns(self, dataset: str) -> bool:
        return self.datasets is None or dataset in self.datasets

    def _query_dataset(self, q: Any) -> "str | None":
        """The known source dataset of a DSL query (None when the text
        is malformed — the engine will then raise its own typed error,
        which names the real mistake instead of a routing one)."""
        if not isinstance(q, str):
            return None
        try:
            from ..query import parse, source_info
            dataset = source_info(parse(q)).dataset
        except Exception:  # noqa: BLE001 — defer to the engine's error
            return None
        return dataset if dataset in self._known else None

    def shard_info(self) -> dict[str, Any]:
        return {"shard": self.shard_id,
                "datasets": (None if self.datasets is None
                             else sorted(self.datasets)),
                "server": __version__,
                "protocol": PROTOCOL_VERSION,
                "connections": self.connections,
                "pending": self.scheduler.pending}

    async def _dispatch(self, req: Request) -> Any:
        if req.op == "shard_info":
            self.op_counts[req.op] = self.op_counts.get(req.op, 0) + 1
            return self.shard_info()
        if req.op in ("run", "characterize") or req.op in DYNAMIC_OPS:
            dataset = req.params.get("dataset", "ldbc")
            if (isinstance(dataset, str) and dataset in self._known
                    and not self.owns(dataset)):
                raise WrongShard(dataset, self.shard_id)
        if req.op in ("query", "explain") and "part" not in req.params:
            # an un-partitioned DSL query is keyed routing: it must land
            # on the source dataset's owner.  A part-request is the
            # router's scatter — any shard computes any partition (the
            # graph is deterministically generated everywhere), which is
            # what lets failed parts reassign to survivors.
            dataset = self._query_dataset(req.params.get("q"))
            if dataset is not None and not self.owns(dataset):
                raise WrongShard(dataset, self.shard_id)
        result = await super()._dispatch(req)
        if req.op == "datasets" and self.datasets is not None:
            result = [row for row in result
                      if row.get("key") in self.datasets]
        if req.op in ("ping", "health") and isinstance(result, dict):
            result["shard"] = self.shard_id
        return result

    def stats(self) -> dict[str, Any]:
        out = super().stats()
        out["shard"] = self.shard_id
        out["datasets"] = (None if self.datasets is None
                           else sorted(self.datasets))
        return out
