"""Tests for the content-addressed trace store (repro.core.tracestore)
and its harness/resilience/service wiring."""

import json

import numpy as np
import pytest

from repro.arch.cpu import CPUModel
from repro.arch.machine import SCALED_XEON, TEST_MACHINE
from repro.core.tracestore import (
    TRACE_FORMAT_VERSION,
    TraceStore,
    TraceStoreKeyError,
)
from repro.datagen.registry import make as make_dataset
from repro.harness.runner import (
    cache_stats,
    characterize,
    clear_cache,
    run_cpu_workload,
    set_default_trace_store,
)


@pytest.fixture
def spec():
    return make_dataset("ldbc", scale=0.02, seed=0)


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "traces")


class TestKeying:
    def test_key_is_deterministic(self, store, spec):
        assert store.key_for("BFS", spec) == store.key_for("BFS", spec)

    def test_different_seeds_never_collide(self, store):
        a = make_dataset("ldbc", scale=0.02, seed=0)
        b = make_dataset("ldbc", scale=0.02, seed=1)
        assert store.key_for("BFS", a) != store.key_for("BFS", b)

    def test_different_params_never_collide(self, store, spec):
        keys = {store.key_for("BFS", spec),
                store.key_for("BFS", spec, {"root": 3}),
                store.key_for("BFS", spec, {"root": 4}),
                store.key_for("GUp", spec, {"fraction": 0.1}),
                store.key_for("GUp", spec, {"fraction": 0.2})}
        assert len(keys) == 5

    def test_different_workloads_and_sizes_never_collide(self, store, spec):
        other = make_dataset("ldbc", scale=0.04, seed=0)
        keys = {store.key_for(w, s) for w in ("BFS", "kCore", "CComp")
                for s in (spec, other)}
        assert len(keys) == 6

    def test_ndarray_params_keyed_by_content(self, store, spec):
        e1 = np.array([[0, 1], [1, 2]], dtype=np.int64)
        e2 = np.array([[0, 1], [2, 1]], dtype=np.int64)
        k1 = store.key_for("GCons", spec, {"edges": e1})
        k2 = store.key_for("GCons", spec, {"edges": e1.copy()})
        k3 = store.key_for("GCons", spec, {"edges": e2})
        assert k1 == k2
        assert k1 != k3

    def test_uncacheable_params_raise(self, store, spec):
        with pytest.raises(TraceStoreKeyError):
            store.key_for("Gibbs", spec, {"bn": object()})


class TestRoundTrip:
    def test_store_load_gives_identical_metrics(self, store, spec):
        result, fresh = run_cpu_workload("BFS", spec, machine=TEST_MACHINE)
        key = store.key_for("BFS", spec)
        store.save(key, result.trace, footprint_bytes=1234,
                   outputs={"depth": 5}, params={"root": 1})
        loaded = store.load(key)
        assert loaded is not None
        for f in ("addrs", "rw", "iat", "acc_region", "branch_sites",
                  "branch_taken", "region_seq", "region_instrs"):
            assert np.array_equal(getattr(result.trace, f),
                                  getattr(loaded.trace, f)), f
        assert loaded.trace.regions == result.trace.regions
        assert loaded.footprint_bytes == 1234
        assert loaded.outputs == {"depth": 5}
        replayed = CPUModel(TEST_MACHINE).run(loaded.trace)
        direct = CPUModel(TEST_MACHINE).run(result.trace)
        assert replayed.summary() == direct.summary()

    def test_missing_key_is_miss(self, store):
        assert store.load("0" * 64) is None
        assert store.stats.misses == 1

    def test_corrupt_sidecar_fails_open(self, store, spec):
        result, _ = run_cpu_workload("BFS", spec, machine=TEST_MACHINE)
        key = store.key_for("BFS", spec)
        store.save(key, result.trace)
        (store.root / f"{key}.json").write_text("{not json")
        assert store.load(key) is None
        assert store.stats.invalid == 1

    def test_format_version_mismatch_fails_open(self, store, spec):
        result, _ = run_cpu_workload("BFS", spec, machine=TEST_MACHINE)
        key = store.key_for("BFS", spec)
        path = store.save(key, result.trace)
        meta = json.loads(path.read_text())
        meta["format_version"] = TRACE_FORMAT_VERSION + 1
        path.write_text(json.dumps(meta))
        assert store.load(key) is None
        assert store.stats.invalid == 1

    def test_len_and_keys(self, store, spec):
        result, _ = run_cpu_workload("BFS", spec, machine=TEST_MACHINE)
        key = store.key_for("BFS", spec)
        assert len(store) == 0
        store.save(key, result.trace)
        assert len(store) == 1
        assert store.keys() == [key]
        assert key in store


class TestHarnessIntegration:
    def test_machine_sweep_executes_once(self, store, spec):
        machines = [TEST_MACHINE, SCALED_XEON]
        for m in machines:
            run_cpu_workload("kCore", spec, machine=m, trace_store=store)
        assert store.stats.stores == 1
        assert store.stats.hits == 1
        # replayed metrics match a fresh execution on the second machine
        _, replayed = run_cpu_workload("kCore", spec, machine=SCALED_XEON,
                                       trace_store=store)
        _, fresh = run_cpu_workload("kCore", spec, machine=SCALED_XEON)
        assert replayed.summary() == fresh.summary()

    def test_characterize_uses_store(self, store, spec):
        clear_cache()
        characterize("BFS", spec, machine=TEST_MACHINE, memo=False,
                     trace_store=store)
        row = characterize("BFS", spec, machine=SCALED_XEON, memo=False,
                           trace_store=store)
        assert store.stats.stores == 1
        assert store.stats.hits == 1
        fresh = characterize("BFS", spec, machine=SCALED_XEON, memo=False)
        assert row.cpu.summary() == fresh.cpu.summary()

    def test_custom_gibbs_bn_bypasses_store(self, store, spec):
        from repro.bayes import munin_like
        bn = munin_like(n_vertices=40, n_edges=60, target_params=500, seed=1)
        run_cpu_workload("Gibbs", spec, machine=TEST_MACHINE,
                         gibbs_bn=bn, trace_store=store)
        assert store.stats.stores == 0
        assert len(store) == 0

    def test_default_store_and_cache_stats(self, tmp_path, spec):
        assert cache_stats()["trace_store"] is None
        store = set_default_trace_store(tmp_path / "default-traces")
        try:
            run_cpu_workload("BFS", spec, machine=TEST_MACHINE)
            run_cpu_workload("BFS", spec, machine=SCALED_XEON)
            stats = cache_stats()
            assert stats["trace_store"]["hits"] == 1
            assert stats["trace_store"]["stores"] == 1
            assert "rows" in stats
        finally:
            set_default_trace_store(None)
        assert cache_stats()["trace_store"] is None
        assert store.stats.hits == 1

    def test_replay_span_recorded(self, store, spec):
        from repro.obs import SpanTracer
        from repro.obs.tracing import set_global_tracer
        run_cpu_workload("BFS", spec, machine=TEST_MACHINE,
                         trace_store=store)
        tracer = SpanTracer()
        set_global_tracer(tracer)
        try:
            run_cpu_workload("BFS", spec, machine=SCALED_XEON,
                             trace_store=store)
        finally:
            set_global_tracer(None)
        spans = tracer.find("replay:BFS")
        assert len(spans) == 1
        assert spans[0].args.get("served") == "trace-store"

    def test_bind_metrics_exports_counters(self, store, spec):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        store.bind_metrics(registry)
        run_cpu_workload("BFS", spec, machine=TEST_MACHINE,
                         trace_store=store)
        run_cpu_workload("BFS", spec, machine=SCALED_XEON,
                         trace_store=store)
        snap = registry.snapshot()
        assert snap["trace_store_hits_total"]["samples"][0]["value"] == 1.0
        assert (snap["trace_store_misses_total"]["samples"][0]["value"]
                == 1.0)


class TestResilienceIntegration:
    def test_matrix_cells_carry_store(self, tmp_path):
        from repro.resilience import matrix_cells
        cells = matrix_cells(["BFS"], ["ldbc"], scale=0.02,
                             machine="test", trace_store=str(tmp_path))
        assert cells[0].trace_store == str(tmp_path)
        # not part of identity: old journal records must still match
        assert "trace_store" not in cells[0].cell_id

    def test_run_cell_populates_store(self, tmp_path):
        from repro.resilience.cell import Cell, run_cell
        clear_cache()
        cell = Cell(workload="BFS", dataset="ldbc", scale=0.02,
                    machine="test", trace_store=str(tmp_path / "ts"))
        run_cell(cell)
        assert len(TraceStore(tmp_path / "ts")) == 1

    def test_cell_from_dict_without_store_field(self):
        from repro.resilience.cell import Cell
        cell = Cell.from_dict({"workload": "BFS", "dataset": "ldbc",
                               "scale": 0.02, "seed": 0,
                               "machine": "test", "with_gpu": False})
        assert cell.trace_store is None
