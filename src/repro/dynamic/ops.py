"""Mutation operations: the typed write vocabulary of a dynamic graph.

One :class:`MutOp` is one logical change — add/delete a vertex, add/
delete an edge, or set a vertex property.  A batch of them is what a
``mutate`` wire request carries and what a
:class:`~repro.dynamic.store.SnapshotStore` commit applies atomically
(one commit = one new snapshot version, never a half-applied batch).

Ops travel the wire as flat JSON dicts (``{"op": "add_edge", "src": 3,
"dst": 7}``) — the same self-describing record discipline every other
frame uses — and :func:`parse_ops` is the single validation point both
the service and the store trust.  :func:`churn_ops` generates the
deterministic random edge-churn batches the load generator and the
mutation benchmark drive traffic with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..core.errors import BadRequest

#: The write vocabulary.  ``set_prop`` targets vertex properties (edge
#: properties stay static in this layer — none of the incremental
#: kernels read them).
OP_KINDS = ("add_vertex", "del_vertex", "add_edge", "del_edge",
            "set_prop")

#: Hard cap on one batch — a mutate frame is a delta, not a bulk load
#: (bulk loads belong in dataset generation, where they are versioned as
#: the base).
MAX_BATCH_OPS = 10_000


@dataclass(frozen=True)
class MutOp:
    """One validated mutation operation."""

    kind: str                       # one of OP_KINDS
    src: int = -1                   # vertex id (vertex/prop ops) or arc src
    dst: int = -1                   # arc dst (edge ops only)
    name: str = ""                  # property name (set_prop only)
    value: Any = None               # property value (set_prop only)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"op": self.kind}
        if self.kind in ("add_vertex", "del_vertex", "set_prop"):
            out["vid"] = self.src
        else:
            out["src"] = self.src
            out["dst"] = self.dst
        if self.kind == "set_prop":
            out["name"] = self.name
            out["value"] = self.value
        return out


def _as_vid(raw: Any, field: str) -> int:
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise BadRequest(f"mutation field {field!r} must be an integer "
                         f"vertex id, got {raw!r}")
    if raw < 0:
        raise BadRequest(f"mutation field {field!r} must be >= 0, "
                         f"got {raw}")
    return raw


def parse_op(raw: Any) -> MutOp:
    """Validate one wire-shaped op dict into a :class:`MutOp`."""
    if not isinstance(raw, dict):
        raise BadRequest(f"mutation op must be an object, got "
                         f"{type(raw).__name__}")
    kind = raw.get("op")
    if kind not in OP_KINDS:
        raise BadRequest(f"unknown mutation op {kind!r}; choose from "
                         f"{', '.join(OP_KINDS)}")
    if kind in ("add_vertex", "del_vertex"):
        return MutOp(kind, src=_as_vid(raw.get("vid"), "vid"))
    if kind in ("add_edge", "del_edge"):
        return MutOp(kind, src=_as_vid(raw.get("src"), "src"),
                     dst=_as_vid(raw.get("dst"), "dst"))
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise BadRequest("set_prop requires a non-empty 'name' string")
    value = raw.get("value")
    if isinstance(value, (dict, list)):
        raise BadRequest("set_prop value must be a scalar")
    return MutOp(kind, src=_as_vid(raw.get("vid"), "vid"),
                 name=name, value=value)


def parse_ops(raw: Any) -> list[MutOp]:
    """Validate a wire batch (the ``ops`` param of a ``mutate``
    request)."""
    if not isinstance(raw, (list, tuple)):
        raise BadRequest(f"'ops' must be a list of mutation objects, "
                         f"got {type(raw).__name__}")
    if not raw:
        raise BadRequest("'ops' is empty — a mutate request must carry "
                         "at least one operation")
    if len(raw) > MAX_BATCH_OPS:
        raise BadRequest(f"batch of {len(raw)} ops exceeds "
                         f"{MAX_BATCH_OPS}")
    return [parse_op(item) for item in raw]


def single_op(kind: str, params: dict[str, Any]) -> MutOp:
    """Build the one-op batch behind the flat wire ops (``add_edge`` as
    its own request, etc.) from request params."""
    raw = {"op": kind}
    for field in ("vid", "src", "dst", "name", "value"):
        if field in params:
            raw[field] = params[field]
    return parse_op(raw)


def churn_ops(rng: random.Random, n_vertices: int, size: int, *,
              recent: "Sequence[tuple[int, int]] | None" = None
              ) -> list[dict[str, Any]]:
    """One deterministic edge-churn batch, wire-shaped.

    Roughly 70% edge inserts between random resident vertices, 20%
    deletes (drawn from ``recent`` inserts when the caller tracks them,
    else random pairs that mostly no-op), 10% property writes.  Vertex
    id 0 is never deleted so a BFS rooted there stays meaningful across
    any schedule.
    """
    if n_vertices < 2:
        raise ValueError("churn needs at least 2 vertices")
    ops: list[dict[str, Any]] = []
    for _ in range(size):
        roll = rng.random()
        if roll < 0.70:
            src = rng.randrange(n_vertices)
            dst = rng.randrange(n_vertices)
            if src == dst:
                dst = (dst + 1) % n_vertices
            ops.append({"op": "add_edge", "src": src, "dst": dst})
        elif roll < 0.90:
            if recent:
                src, dst = recent[rng.randrange(len(recent))]
            else:
                src = rng.randrange(n_vertices)
                dst = rng.randrange(n_vertices)
                if src == dst:
                    dst = (dst + 1) % n_vertices
            ops.append({"op": "del_edge", "src": src, "dst": dst})
        else:
            ops.append({"op": "set_prop",
                        "vid": rng.randrange(n_vertices),
                        "name": "state", "value": rng.randrange(4)})
    return ops


def ops_as_wire(ops: Iterable[MutOp]) -> list[dict[str, Any]]:
    """Flatten parsed ops back to their wire shape."""
    return [op.as_dict() for op in ops]
