"""CComp — connected components (topological analytics, CompStruct).

The paper implements the CPU side "with BFS traversals" (Section 4.2):
repeatedly seed a BFS from every unlabelled vertex over the undirected
view, labelling the ``comp`` property.  Scanning all vertices plus
traversing every edge with no single hot frontier is what drives CComp's
very high L3 MPKI (101.3) and DTLB penalty (21.1 %) in Figs. 6–7.
(The GPU side uses Soman's algorithm — see ``repro.gpu.kernels.ccomp``.)

``kernel_loop`` is the original per-vertex implementation (the oracle);
``kernel_vec`` (default) runs the same seeded traversals on a numpy CSR
snapshot and emits the identical event stream through the bulk-trace API.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core import trace as T
from ..core.graph import (
    V_HEAD_OFF, V_ID_OFF, V_INREF_OFF, V_PROP_OFF, PropertyGraph,
)
from ..core.taxonomy import ComputationType, WorkloadCategory
from ._bulk import GraphView, I64, offsets_of, ragged_arange, stack_addr_of
from .base import ENTRY, NullTracer, TracedQueue, Workload


class CComp(Workload):
    """Connected-component label per vertex (undirected view), in the
    ``comp`` property; labels are the smallest vertex id per component."""

    NAME = "CComp"
    CTYPE = ComputationType.COMP_STRUCT
    CATEGORY = WorkloadCategory.ANALYTICS
    HAS_GPU = True
    USE_VEC = True

    def kernel(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        if self.USE_VEC:
            return self.kernel_vec(g, t)
        return self.kernel_loop(g, t)

    def kernel_loop(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_fresh = t.register_branch_site()
        comp: dict[int, int] = {}
        n_components = 0
        q = TracedQueue(g, t)
        for v in g.vertices():
            t.i(3)
            unlabelled = g.vget(v, "comp") < 0
            t.br(site_fresh, unlabelled)
            if not unlabelled:
                continue
            n_components += 1
            label = v.vid
            g.vset(v, "comp", label)
            comp[v.vid] = label
            q.push(v)
            while q:
                u = q.pop()
                nbrs = [dst for dst, _ in g.neighbors(u)]
                nbrs.extend(g.in_neighbors(u))
                for dst in nbrs:
                    w = g.find_vertex(dst)
                    t.i(3)
                    if g.vget(w, "comp") < 0:
                        g.vset(w, "comp", label)
                        comp[dst] = label
                        q.push(w)
        return {"comp": comp, "n_components": n_components}

    def kernel_vec(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_fresh = t.register_branch_site()
        q = TracedQueue(g, t)
        gv = GraphView(g)
        n = gv.n

        # seeded-BFS simulation over the undirected view.  Pops of one
        # component are contiguous; per pop the target stream is its
        # out-list then its in-list; queue FIFO order makes global push
        # order == global pop order.
        seen = np.zeros(n, bool)
        label = np.full(n, -1, I64)
        seed_mask = np.zeros(n, bool)
        pop_parts, dst_parts, fresh_parts = [], [], []
        comp_sizes: list[int] = []
        for row in range(n):
            if seen[row]:
                continue
            seed_mask[row] = True
            seen[row] = True
            label[row] = gv.vids[row]
            frontier = np.asarray([row], I64)
            csize = 0
            while len(frontier):
                pop_parts.append(frontier)
                csize += len(frontier)
                od, idg = gv.deg[frontier], gv.indeg[frontier]
                cnt = od + idg
                starts, tot = offsets_of(cnt)
                dsts = np.empty(tot, I64)
                opos = ragged_arange(od) + np.repeat(starts, od)
                dsts[opos] = gv.out_dst[gv.out_edges_of(frontier)]
                ipos = ragged_arange(idg) + np.repeat(starts + od, idg)
                dsts[ipos] = gv.in_src[gv.in_edges_of(frontier)]
                cand = ~seen[dsts]
                fresh = np.zeros(tot, bool)
                sub = dsts[cand]
                if len(sub):
                    _, first = np.unique(sub, return_index=True)
                    fsub = np.zeros(len(sub), bool)
                    fsub[first] = True
                    fresh[np.flatnonzero(cand)] = fsub
                new_rows = dsts[fresh]
                seen[new_rows] = True
                label[new_rows] = gv.vids[row]
                dst_parts.append(dsts)
                fresh_parts.append(fresh)
                frontier = new_rows
            comp_sizes.append(csize)

        pops = (np.concatenate(pop_parts) if pop_parts
                else np.empty(0, I64))
        dsts = (np.concatenate(dst_parts) if dst_parts
                else np.empty(0, I64))
        fresh = (np.concatenate(fresh_parts) if fresh_parts
                 else np.empty(0, bool))

        cslot = g.vschema.slot("comp")
        for r, lab in zip(range(n), label.tolist()):
            gv.vs[r].props[cslot] = lab
        comp = dict(zip(gv.vids.tolist(), label.tolist()))

        if not isinstance(t, NullTracer):
            self._emit(g, t, gv, q, pops, dsts, fresh, seed_mask,
                       np.asarray(comp_sizes, I64), site_fresh)
        return {"comp": comp, "n_components": len(comp_sizes)}

    def _emit(self, g: PropertyGraph, t, gv: GraphView, q: TracedQueue,
              pops, dsts, fresh, seed_mask, comp_sizes, site_fresh) -> None:
        """Emit the loop kernel's exact stream.  Segments, in order: one
        scan item per vertex (vertex-scan step + comp probe, seeds add the
        label write and push); after each seed, its component's pop groups
        (queue pop, out-list drain, in-list drain, then per target the
        find-vertex + comp probe, fresh ones adding label write + push);
        one scan-exit tail."""
        krid = t._cur_rid
        n, P, D = gv.n, len(pops), len(dsts)
        C = len(comp_sizes)
        od = gv.deg[pops]
        idg = gv.indeg[pops]
        cnt = od + idg
        seed_rows = np.flatnonzero(seed_mask)
        off_c = V_PROP_OFF + g.vschema.offset("comp")

        # pop position lookup (push order == pop order)
        pop_pos = np.empty(n, I64)
        pop_pos[pops] = np.arange(P, dtype=I64)

        # --- segment positions -------------------------------------------
        grp_seg = 3 + cnt                       # prologue + drains + dsts
        comp_first, _ = offsets_of(comp_sizes)
        comp_of_pop = np.repeat(np.arange(C, dtype=I64), comp_sizes)
        comp_seg = np.bincount(comp_of_pop, weights=grp_seg,
                               minlength=C).astype(I64) if P else \
            np.zeros(C, I64)
        shift = np.zeros(n + 1, I64)
        np.add.at(shift, seed_rows + 1, comp_seg)
        pos_scan = np.arange(n, dtype=I64) + np.cumsum(shift)[:n]
        g_excl, _ = offsets_of(grp_seg)
        pgb = (pos_scan[seed_rows][comp_of_pop] + 1
               + g_excl - g_excl[comp_first[comp_of_pop]])
        dst_pop = np.repeat(np.arange(P, dtype=I64), cnt)
        ld = ragged_arange(cnt)                 # target index within pop
        nseg = n + 3 * P + D + 1
        s_scan, s_prol, s_out, s_in = pos_scan, pgb, pgb + 1, pgb + 2
        s_dst = pgb[dst_pop] + 3 + ld
        s_tail = nseg - 1

        sd = seed_mask.astype(I64)
        fr = fresh.astype(I64)
        comp_last = np.zeros(P, bool)
        if P:
            comp_last[comp_first + comp_sizes - 1] = True
        # per-pop trailing +3: the next pop's dequeue charge accrues to
        # this pop group's final visit unless the component is done
        z_pop = np.where(comp_last, 0, 3)
        z_dst = np.where((ld == cnt[dst_pop] - 1) & ~comp_last[dst_pop],
                         3, 0)

        def table(scan_w, prol_w, out_w, in_w, dst_w, tail_w):
            w = np.zeros(nseg, I64)
            w[s_scan] = scan_w
            w[s_prol] = prol_w
            w[s_out] = out_w
            w[s_in] = in_w
            if D:
                w[s_dst] = dst_w
            w[s_tail] = tail_w
            return offsets_of(w)

        acc_off, n_acc = table(5 + 3 * sd, 1, 1 + 2 * od, 1 + idg,
                               5 + 3 * fr, 0)
        ins_off, n_ins = table(21 + 12 * sd, 3, 2 + 16 * od, 2 + 16 * idg,
                               25 + 12 * fr, 0)
        br_off, n_br = table(2, 0, od + 1, idg + 1, 1, 1)
        vis_off, n_vis = table(4 + 2 * sd, 0, 2 + 2 * od, 2 + 2 * idg,
                               4 + 2 * fr, 2)
        stk_off, n_stk = table(2 + sd, 0, od, 0, 2 + fr, 0)

        addr = np.empty(n_acc, I64)
        rw = np.zeros(n_acc, np.uint8)
        iat = np.empty(n_acc, I64)
        reg = np.empty(n_acc, np.uint32)
        sord = np.zeros(n_acc, I64)

        def put(pos, a, region, ioff, *, wr=False, stk=None):
            addr[pos] = a
            reg[pos] = region
            iat[pos] = ioff
            if wr:
                rw[pos] = 1
            if stk is not None:
                sord[pos] = stk

        rows = np.arange(n, dtype=I64)
        pa, pi, ps = acc_off[s_scan], ins_off[s_scan], stk_off[s_scan]
        put(pa, 0, T.R_VERTEX_SCAN, pi + 10, stk=ps + 1)
        put(pa + 1, gv.idx_addr[rows], T.R_VERTEX_SCAN, pi + 10)
        put(pa + 2, gv.vaddr + V_ID_OFF, T.R_VERTEX_SCAN, pi + 10)
        put(pa + 3, 0, T.R_PROP_GET, pi + 21, stk=ps + 2)
        put(pa + 4, gv.vaddr + off_c, T.R_PROP_GET, pi + 21)
        if C:
            sa, si, ss = pa[seed_rows], pi[seed_rows], ps[seed_rows]
            put(sa + 5, 0, T.R_PROP_SET, si + 30, stk=ss + 3)
            put(sa + 6, gv.vaddr[seed_rows] + off_c, T.R_PROP_SET,
                si + 30, wr=True)
            put(sa + 7, q.base + (pop_pos[seed_rows] % q.cap) * ENTRY,
                krid, si + 33, wr=True)
        if P:
            put(acc_off[s_prol],
                q.base + (np.arange(P, dtype=I64) % q.cap) * ENTRY,
                krid, ins_off[s_prol] + 3)
            vap = gv.vaddr[pops]
            put(acc_off[s_out], vap + V_HEAD_OFF, T.R_NEIGHBORS,
                ins_off[s_out] + 2)
            put(acc_off[s_in], vap + V_INREF_OFF, T.R_NEIGHBORS,
                ins_off[s_in] + 2)
            le_o = ragged_arange(od)
            epo = np.repeat(acc_off[s_out], od) + 1 + 2 * le_o
            eio = np.repeat(ins_off[s_out], od) + 16 * (le_o + 1) + 2
            put(epo, 0, T.R_NEIGHBORS, eio,
                stk=np.repeat(stk_off[s_out], od) + le_o + 1)
            put(epo + 1, gv.out_eaddr[gv.out_edges_of(pops)],
                T.R_NEIGHBORS, eio)
            le_i = ragged_arange(idg)
            put(np.repeat(acc_off[s_in], idg) + 1 + le_i,
                gv.vaddr[gv.in_src[gv.in_edges_of(pops)]] + V_ID_OFF,
                T.R_NEIGHBORS,
                np.repeat(ins_off[s_in], idg) + 16 * (le_i + 1) + 2)
        if D:
            da, di, ds = acc_off[s_dst], ins_off[s_dst], stk_off[s_dst]
            wad = gv.vaddr[dsts]
            put(da, 0, T.R_FIND_VERTEX, di + 14, stk=ds + 1)
            put(da + 1, gv.idx_addr[dsts], T.R_FIND_VERTEX, di + 14)
            put(da + 2, wad + V_ID_OFF, T.R_FIND_VERTEX, di + 14)
            put(da + 3, 0, T.R_PROP_GET, di + 25, stk=ds + 2)
            put(da + 4, wad + off_c, T.R_PROP_GET, di + 25)
            if fresh.any():
                fa, fi, fs = da[fresh], di[fresh], ds[fresh]
                wf = wad[fresh]
                put(fa + 5, 0, T.R_PROP_SET, fi + 34, stk=fs + 3)
                put(fa + 6, wf + off_c, T.R_PROP_SET, fi + 34, wr=True)
                put(fa + 7,
                    q.base + (pop_pos[dsts[fresh]] % q.cap) * ENTRY,
                    krid, fi + 37, wr=True)

        stk_mask = sord > 0
        addr[stk_mask] = stack_addr_of(gv.stack_base, g._sp, sord[stk_mask])
        g._sp = (g._sp + n_stk) & 3
        iat += t.n

        # --- branch stream ----------------------------------------------
        sites = np.empty(n_br, np.uint32)
        taken = np.empty(n_br, np.uint8)
        pb = br_off[s_scan]
        sites[pb], taken[pb] = T.B_VERTEX_SCAN, 1
        sites[pb + 1] = site_fresh
        taken[pb + 1] = seed_mask
        if P:
            for s_seg, deg_seg, le in ((s_out, od, le_o), (s_in, idg, le_i)):
                ep = np.repeat(br_off[s_seg], deg_seg) + le
                sites[ep], taken[ep] = T.B_EDGE_LOOP, 1
                fp = br_off[s_seg] + deg_seg
                sites[fp], taken[fp] = T.B_EDGE_LOOP, 0
        if D:
            db = br_off[s_dst]
            sites[db], taken[db] = T.B_FIND_HIT, 1
        sites[br_off[s_tail]], taken[br_off[s_tail]] = T.B_VERTEX_SCAN, 0

        # --- region visits ----------------------------------------------
        vseq = np.empty(n_vis, np.uint32)
        vcnt = np.empty(n_vis, I64)
        pv = vis_off[s_scan]
        vseq[pv], vcnt[pv] = T.R_VERTEX_SCAN, 10
        vseq[pv + 1], vcnt[pv + 1] = krid, 3
        vseq[pv + 2], vcnt[pv + 2] = T.R_PROP_GET, 8
        vseq[pv + 3], vcnt[pv + 3] = krid, 0
        if C:
            sv = pv[seed_rows]
            vseq[sv + 4], vcnt[sv + 4] = T.R_PROP_SET, 9
            vseq[sv + 5], vcnt[sv + 5] = krid, 6   # push + first dequeue
        if P:
            for s_seg, deg_seg, le in ((s_out, od, le_o), (s_in, idg, le_i)):
                base_v = vis_off[s_seg]
                vseq[base_v] = T.R_NEIGHBORS
                vcnt[base_v] = 2 + 16 * (deg_seg > 0)
                ev = np.repeat(base_v, deg_seg) + 1 + 2 * le
                vseq[ev], vcnt[ev] = krid, 0
                vseq[ev + 1] = T.R_NEIGHBORS
                vcnt[ev + 1] = np.where(le < np.repeat(deg_seg, deg_seg) - 1,
                                        16, 0)
                fin = base_v + 1 + 2 * deg_seg
                vseq[fin], vcnt[fin] = krid, 0
            # a pop with no targets: the in-drain exit takes the charge
            none_d = cnt == 0
            if none_d.any():
                fin0 = vis_off[s_in[none_d]] + 1 + 2 * idg[none_d]
                vcnt[fin0] = z_pop[none_d]
        if D:
            dv = vis_off[s_dst]
            vseq[dv], vcnt[dv] = T.R_FIND_VERTEX, 14
            vseq[dv + 1], vcnt[dv + 1] = krid, 3
            vseq[dv + 2], vcnt[dv + 2] = T.R_PROP_GET, 8
            vseq[dv + 3] = krid
            vcnt[dv + 3] = np.where(fresh, 0, z_dst)
            if fresh.any():
                fv = dv[fresh]
                vseq[fv + 4], vcnt[fv + 4] = T.R_PROP_SET, 9
                vseq[fv + 5], vcnt[fv + 5] = krid, 3 + z_dst[fresh]
        tl = vis_off[s_tail]
        vseq[tl], vcnt[tl] = T.R_VERTEX_SCAN, 0
        vseq[tl + 1], vcnt[tl + 1] = krid, 0

        Eo, Ei = int(od.sum()), int(idg.sum())
        Df = int(fresh.sum())
        t.bulk_emit(addr.astype(np.uint64), rw, iat.astype(np.uint64), reg,
                    n_instrs=n_ins,
                    fw_instrs=(18 * n + 9 * C + 4 * P
                               + 16 * (Eo + Ei) + 22 * D + 9 * Df),
                    fw_accesses=(5 * n + 2 * C + 2 * P
                                 + 2 * Eo + Ei + 5 * D + 2 * Df),
                    head_instrs=0,
                    region_seq=vseq, region_instrs=vcnt)
        t.bulk_branch_events(sites, taken)

    @staticmethod
    def reference(spec) -> int:
        """networkx number of connected components (undirected view)."""
        import networkx as nx
        import networkx.algorithms.components as comps
        und = nx.Graph(spec.nx())
        return comps.number_connected_components(und)
