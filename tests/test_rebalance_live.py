"""Tests for hot-shard detection and live rebalance execution: replica-
aware movement bounds, shard admin ownership/handoff forwarding, cross-
replica version convergence, the hotspot detector, and an end-to-end
live migration onto a spare shard with continuous availability."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.cluster import (
    ClusterSpec,
    ClusterThread,
    HashRing,
    plan_rebalance,
    synthetic_keys,
)
from repro.core.errors import WrongShard
from repro.dynamic.ops import churn_ops
from repro.obs import MetricsRegistry
from repro.service import ServiceClient
from repro.tenancy import HotspotDetector, RebalanceExecutor

DATASETS = ("twitter", "knowledge", "watson", "roadnet", "ldbc")

# placements are a pure function of the names (SHA-1-based), so the
# fixtures below are stable: on the 2-shard ring, shard-0 is primary for
# knowledge/roadnet/ldbc and a spare-0 join relocates exactly those three
TWO_SHARDS = ("shard-0", "shard-1")


def _cluster(n: int = 2, replication: int = 1, **kwargs):
    spec = ClusterSpec.of(n, replication=replication, datasets=DATASETS)
    defaults = dict(router_kwargs=dict(attempt_timeout_s=30,
                                       fanout_timeout_s=10,
                                       probe_interval_s=0.2))
    defaults.update(kwargs)
    return ClusterThread(spec, **defaults)


# -- replica-aware movement bounds (plans, no sockets) -----------------------

class TestReplicaPlans:
    def test_join_moves_about_one_nth_of_replica_sets(self):
        """With ``replicas > 1`` a single join still relocates ~1/N of
        the keyspace per replica slot, nowhere near a reshuffle."""
        keys = synthetic_keys(2000)
        before = HashRing([f"s{i}" for i in range(4)])
        after = before.with_node("s4")
        changed = sum(1 for k in keys
                      if set(before.owners(k, 2)) != set(after.owners(k, 2)))
        # each of the 2 replica slots moves ~1/5 of keys independently;
        # the union of changed sets stays well under double the ideal
        assert 0.05 < changed / len(keys) < 0.65
        # and primary movement alone obeys the classic bound
        plan = plan_rebalance(before, after, keys)
        assert 0.05 < plan.fraction_moved < 0.45

    def test_no_key_loses_every_owner_across_a_single_change(self):
        """A one-node membership change must leave every key with at
        least one surviving owner — that owner is where the migration
        copies state *from* while reads keep flowing."""
        keys = synthetic_keys(1500)
        base = HashRing([f"s{i}" for i in range(4)])
        for changed in (base.with_node("s4"), base.without_node("s2")):
            for k in keys:
                old = set(base.owners(k, 2))
                new = set(changed.owners(k, 2))
                assert old & new, (k, old, new)

    def test_summary_caps_moved_key_listing(self):
        keys = synthetic_keys(1000)
        before = HashRing(["s0", "s1"])
        plan = plan_rebalance(before, before.with_node("s2"), keys)
        assert len(plan.moved) > 5
        s = plan.summary(max_moved_keys=5)
        assert len(s["moved_keys"]) == 5
        assert s["moved_keys_omitted"] == len(plan.moved) - 5
        for k, mv in s["moved_keys"].items():
            assert mv == {"from": plan.moved[k][0],
                          "to": plan.moved[k][1]}
        # the default cap still lists everything for small plans
        small = plan_rebalance(HashRing(TWO_SHARDS),
                               HashRing(TWO_SHARDS).with_node("s2"),
                               list(DATASETS))
        assert "moved_keys_omitted" not in small.summary()


# -- hotspot detection -------------------------------------------------------

class _FakeRouter:
    def __init__(self, shards=("shard-0", "shard-1")):
        self.registry = MetricsRegistry()
        self.shards = {s: None for s in shards}
        self.ring = HashRing(shards)
        self.key_route_counts: dict[str, int] = {}
        self._m = self.registry.counter(
            "cluster_route_total", "test", labels=("shard", "outcome"))

    def hit(self, shard: str, n: int, outcome: str = "ok"):
        self._m.labels(shard=shard, outcome=outcome).inc(n)


class TestHotspotDetector:
    def test_first_sample_primes_and_never_reports_hot(self):
        router = _FakeRouter()
        router.hit("shard-0", 500)
        det = HotspotDetector(router, min_total=10)
        report = det.sample()
        assert not report.hot
        assert report.shard_deltas["shard-0"] == 500.0

    def test_skewed_window_names_shard_and_its_keys(self):
        router = _FakeRouter()
        det = HotspotDetector(router, ratio=1.5, min_total=50)
        det.sample()                    # prime
        router.hit("shard-0", 90)
        router.hit("shard-1", 10)
        hot_key = next(k for k in DATASETS
                       if router.ring.owner(k) == "shard-0")
        cold_key = next(k for k in DATASETS
                        if router.ring.owner(k) == "shard-1")
        router.key_route_counts[hot_key] = 80
        router.key_route_counts[cold_key] = 10
        report = det.sample()
        assert report.hot_shards == ("shard-0",)
        assert hot_key in report.hot_keys
        assert cold_key not in report.hot_keys
        assert report.as_dict()["hot"] is True

    def test_errors_are_not_load(self):
        router = _FakeRouter()
        det = HotspotDetector(router, ratio=1.5, min_total=50)
        det.sample()
        router.hit("shard-0", 200, outcome="error")
        router.hit("shard-1", 30)
        assert not det.sample().hot     # error storm != served load

    def test_quiet_window_is_never_hot(self):
        router = _FakeRouter()
        det = HotspotDetector(router, min_total=50)
        det.sample()
        router.hit("shard-0", 20)       # below min_total
        assert not det.sample().hot


# -- shard admin + handoff forwarding ----------------------------------------

class TestAdminHandoff:
    def test_ownership_adopt_drop_round_trip(self):
        with _cluster(2) as ct:
            owner = ct.spec.ring().owner("twitter")
            addr = ct.shard_addresses[owner]
            with ServiceClient(addr.host, addr.port) as shard:
                own = shard.request("admin", action="ownership")
                assert "twitter" in own["datasets"]
                shard.request("admin", action="drop", dataset="twitter")
                assert "twitter" not in shard.request(
                    "admin", action="ownership")["datasets"]
                shard.request("admin", action="adopt", dataset="twitter")
                assert "twitter" in shard.request(
                    "admin", action="ownership")["datasets"]

    def test_drop_with_forward_answers_through_new_owner(self):
        with _cluster(2) as ct:
            ring = ct.spec.ring()
            owner = ring.owner("twitter")           # shard-1
            other = next(s for s in TWO_SHARDS if s != owner)
            old = ct.shard_addresses[owner]
            new = ct.shard_addresses[other]
            with ServiceClient(new.host, new.port) as target:
                target.request("admin", action="adopt",
                               dataset="twitter")
            with ServiceClient(old.host, old.port) as shard:
                shard.request(
                    "admin", action="drop", dataset="twitter",
                    forward={"host": new.host, "port": new.port},
                    window_s=30.0)
                out = shard.dyn_query("BFS", "twitter", scale=0.02)
                assert out["forwarded_by"] == owner
                assert out["version"] == 0
                info = shard.request("admin", action="ownership")
                assert info["forwarded"] == 1
                assert "twitter" in info["forwards"]

    def test_forward_window_expires_back_to_wrong_shard(self):
        with _cluster(2) as ct:
            owner = ct.spec.ring().owner("twitter")
            addr = ct.shard_addresses[owner]
            with ServiceClient(addr.host, addr.port) as shard:
                shard.request(
                    "admin", action="drop", dataset="twitter",
                    forward={"host": addr.host, "port": addr.port},
                    window_s=0.05)
                time.sleep(0.1)
                with pytest.raises(WrongShard):
                    shard.dyn_query("BFS", "twitter", scale=0.02)


# -- cross-replica version convergence (satellite: staleness bound) ---------

class TestReplicaConvergence:
    def test_replicas_converge_to_primary_head_version(self):
        """After a synchronously-replicated write burst, every replica
        answers at the primary's head version (lag bound 0 once the
        last write is acked — the router awaits replica fan-out before
        responding, and any lagging replica is disclosed per write)."""
        with _cluster(3, replication=2) as ct:
            ring = ct.spec.ring()
            owners = ring.owners("ldbc", 2)
            rng = random.Random(7)
            with ServiceClient(port=ct.router_port) as client:
                last = None
                for _ in range(5):
                    last = client.mutate("ldbc",
                                         churn_ops(rng, 200, 6),
                                         scale=0.05, seed=0)
                assert last["shard"] == owners[0]
                # every write disclosed full replica coverage
                assert last.get("replica_failures") in (None, [], {})
            versions = {}
            for shard in owners:
                addr = ct.shard_addresses[shard]
                with ServiceClient(addr.host, addr.port) as direct:
                    out = direct.dyn_query("BFS", "ldbc", scale=0.05)
                    versions[shard] = out["version"]
            head = versions[owners[0]]
            assert head == 5
            lags = {s: head - v for s, v in versions.items()}
            assert all(lag == 0 for lag in lags.values()), lags


# -- end-to-end live rebalance ----------------------------------------------

class TestLiveRebalance:
    def test_hotspot_to_spare_migration_with_zero_downtime(self):
        """The full autoscale story: skewed traffic marks shard-0 hot,
        a spare joins, the plan executes live, and a concurrent client
        sees every request answered — no WrongShard, no lost writes,
        version continuity across the cutover."""
        with _cluster(2, spares=("spare-0",)) as ct:
            router = ct.router
            ring = ct.spec.ring()
            rng = random.Random(3)
            failures: list[BaseException] = []
            answered = [0]
            stop = threading.Event()

            with ServiceClient(port=ct.router_port) as client:
                # mutated state that must survive the move (ldbc is one
                # of the three keys the spare-0 join relocates)
                for _ in range(3):
                    client.mutate("ldbc", churn_ops(rng, 200, 6),
                                  scale=0.05, seed=0)
                pre = client.dyn_query("BFS", "ldbc", scale=0.05)
                assert pre["version"] == 3
                assert pre["shard"] == ring.owner("ldbc") == "shard-0"

                # skewed traffic: the detector names shard-0 hot and
                # ldbc as its busiest key
                det = HotspotDetector(router, ratio=1.4, min_total=10)
                det.sample()
                for _ in range(12):
                    client.dyn_query("BFS", "ldbc", scale=0.05)
                report = det.sample()
                assert "shard-0" in report.hot_shards
                assert "ldbc" in report.hot_keys

            def checker():
                with ServiceClient(port=ct.router_port,
                                   timeout_s=30) as c:
                    i = 0
                    while not stop.is_set():
                        ds = DATASETS[i % len(DATASETS)]
                        try:
                            c.dyn_query("BFS", ds, scale=0.05)
                            if ds == "ldbc":
                                c.mutate("ldbc",
                                         churn_ops(rng, 200, 2),
                                         scale=0.05, seed=0)
                            answered[0] += 1
                        except BaseException as e:  # noqa: BLE001
                            failures.append(e)
                            return
                        i += 1

            thread = threading.Thread(target=checker, daemon=True)
            thread.start()
            time.sleep(0.3)             # checker mid-flight

            plan = plan_rebalance(ring, ring.with_node("spare-0"),
                                  list(DATASETS))
            assert set(plan.moved) == {"knowledge", "roadnet", "ldbc"}
            executor = RebalanceExecutor(
                router,
                {**ct.shard_addresses, **ct.spare_addresses},
                handoff_window_s=10.0)
            migration = executor.execute(
                plan, join=ct.spare_addresses["spare-0"])

            time.sleep(0.3)             # checker crosses the new ring
            stop.set()
            thread.join(timeout=30)

            assert not failures, failures
            assert answered[0] > 0
            assert migration.keys == ("knowledge", "ldbc", "roadnet")
            assert migration.adopted["ldbc"] == ("spare-0",)
            assert migration.dropped["ldbc"] == ("shard-0",)
            assert migration.stores_shipped["ldbc"] == 1
            # knowledge/roadnet were never mutated: nothing to ship,
            # the new owner regenerates the deterministic base
            assert migration.stores_shipped["knowledge"] == 0

            with ServiceClient(port=ct.router_port) as client:
                post = client.dyn_query("BFS", "ldbc", scale=0.05)
                # answered by the spare, at a version no older than the
                # pre-migration head: the mutated store actually moved
                assert post["shard"] == "spare-0"
                assert post["version"] >= 3
                # writes keep landing on the new owner
                out = client.mutate("ldbc", churn_ops(rng, 200, 4),
                                    scale=0.05, seed=0)
                assert out["shard"] == "spare-0"
                assert out["version"] == post["version"] + 1
                stats = client.stats()
            assert "spare-0" in stats["ring"]["shards"]
            assert stats["rebalance"]["paused_writes"] == []

    def test_read_promotion_spreads_keyed_reads(self):
        """Promoting an extra replica widens the keyed-read chain: after
        the target adopts the dataset, rotated reads land on both."""
        with _cluster(2) as ct:
            ring = ct.spec.ring()
            owner = ring.owner("twitter")           # shard-1
            other = next(s for s in TWO_SHARDS if s != owner)
            addr = ct.shard_addresses[other]
            with ServiceClient(addr.host, addr.port) as direct:
                direct.request("admin", action="adopt",
                               dataset="twitter")
            ct.router.promote_replicas("twitter", (other,))
            served = set()
            with ServiceClient(port=ct.router_port) as client:
                for _ in range(6):
                    out = client.dyn_query("BFS", "twitter",
                                           scale=0.02)
                    served.add(out["shard"])
            assert served == {owner, other}
            ct.router.demote_replicas("twitter")
            with ServiceClient(port=ct.router_port) as client:
                out = client.dyn_query("BFS", "twitter", scale=0.02)
                assert out["shard"] == owner
