"""Multi-tenant quality-of-service: identity, isolation, autoscaling.

GraphBIG's framing is industrial — real graph deployments multiplex many
workloads with wildly different cost profiles onto shared infrastructure
(SC'15 §2: the use-case survey spans interactive queries next to batch
analytics).  This package is the layer that keeps those co-tenants from
hurting each other:

* :mod:`~repro.tenancy.qos` — per-tenant admission quotas (token
  buckets), weighted-fair scheduling over the service's execution slots,
  and bounded-share row-cache partitions, all behind one
  :class:`~repro.tenancy.qos.TenantGovernor`.
* :mod:`~repro.tenancy.hotspot` — a router-side detector that watches
  ``cluster_route_total{shard}`` deltas for shards running hot under the
  zipf skew the load generator produces.
* :mod:`~repro.tenancy.migrate` — the executor that turns a report-only
  :class:`~repro.cluster.ring.RebalancePlan` into a live key migration:
  drain, copy, atomic ring swap, and a handoff window in which the old
  owner forwards instead of raising ``WrongShard``.
"""

from .hotspot import HotspotDetector, HotspotReport
from .migrate import MigrationReport, RebalanceExecutor
from .qos import (
    DEFAULT_TENANT,
    FairGate,
    QosConfig,
    TenantGovernor,
    TenantPolicy,
    TokenBucket,
)

__all__ = [
    "DEFAULT_TENANT",
    "FairGate",
    "HotspotDetector",
    "HotspotReport",
    "MigrationReport",
    "QosConfig",
    "RebalanceExecutor",
    "TenantGovernor",
    "TenantPolicy",
    "TokenBucket",
]
