"""Tests for the observability subsystem: the metrics registry
(counters, gauges, histograms, labels, collectors, snapshot/delta),
span tracing and its Chrome Trace export, structured JSON logging,
Prometheus exposition, and the live-scrape path end to end (the
``stats`` wire op, the ``repro stats`` CLI, ``--trace-out``)."""

from __future__ import annotations

import io
import json
import logging
import math
import threading

import pytest

from repro.core.errors import MetricError
from repro.obs import (
    JsonFormatter,
    MetricsRegistry,
    SpanTracer,
    counter_total,
    escape_label_value,
    get_logger,
    maybe_span,
    percentile,
    quantile_from_snapshot,
    render_prometheus,
    set_global_tracer,
    setup_logging,
)
from repro.resilience import Cell, ChaosSpec, Fault
from repro.service import (
    CONNECTION_FAILURE_KIND,
    GraphService,
    LoadGenerator,
    PoolConfig,
    Query,
    ServiceClient,
    ServiceThread,
)


# -- nearest-rank percentile (shared with the load generator) ----------------

class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_sample_is_every_percentile(self):
        for q in (1, 50, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_nearest_rank_is_an_observation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == 2.0
        assert percentile(samples, 75) == 3.0
        assert percentile(samples, 76) == 4.0
        assert percentile(samples, 100) == 4.0

    @pytest.mark.parametrize("q", [0, -1, 101])
    def test_out_of_range_q_rejected(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)


# -- counters, gauges, labels ------------------------------------------------

class TestCounterGauge:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.dec(2)
        assert g.value == 3.0

    def test_callback_gauge_reads_lazily(self):
        reg = MetricsRegistry()
        state = {"v": 1.0}
        g = reg.gauge("live", callback=lambda: state["v"])
        state["v"] = 42.0
        assert g.value == 42.0
        with pytest.raises(MetricError):
            g.set(0)

    def test_labels_give_independent_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("ops_total", labels=("op",))
        fam.labels(op="run").inc(3)
        fam.labels(op="ping").inc()
        assert fam.labels(op="run").value == 3.0
        assert fam.labels(op="ping").value == 1.0

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("ops_total", labels=("op",))
        with pytest.raises(MetricError):
            fam.labels(kind="x")
        with pytest.raises(MetricError):
            fam.labels(op="run", extra="y")
        with pytest.raises(MetricError):
            fam.inc()          # labeled family has no unlabeled child

    def test_reregistration_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        assert reg.counter("x_total") is not None   # same shape: fine
        with pytest.raises(MetricError):
            reg.gauge("x_total")
        with pytest.raises(MetricError):
            reg.counter("x_total", labels=("op",))

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total", labels=("op",))
        c.labels(op="run").inc()
        c.inc()
        assert reg.snapshot() == {}

    def test_thread_safety_under_concurrent_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0))
        n_threads, per_thread = 8, 2000

        def work():
            for i in range(per_thread):
                c.inc()
                h.observe(float(i % 12))

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread
        assert h.count == n_threads * per_thread
        assert h.bucket_counts()[-1] == ("+Inf", n_threads * per_thread)


# -- histograms --------------------------------------------------------------

class TestHistogram:
    def test_empty_quantile_is_nan(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms")
        assert math.isnan(h.quantile(50))

    def test_single_sample(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        h.observe(7.0)
        for q in (1, 50, 100):
            assert h.quantile(q) == 10.0     # its bucket's upper bound

    def test_overflow_lands_in_inf_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0,))
        h.observe(5.0)
        assert h.quantile(50) == float("inf")
        assert h.bucket_counts() == [("1", 0), ("+Inf", 1)]

    def test_quantiles_from_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            h.observe(v)
        assert h.quantile(50) == 1.0
        assert h.quantile(75) == 10.0
        assert h.quantile(100) == 100.0
        assert h.sum == pytest.approx(56.1)

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("a", buckets=())
        with pytest.raises(MetricError):
            reg.histogram("b", buckets=(1.0, 1.0))

    @pytest.mark.parametrize("q", [0, 101])
    def test_out_of_range_q_rejected(self, q):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(q)

    def test_quantile_from_snapshot_round_trips_json(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", labels=("op",))
        for v in (0.15, 3.0, 3.0, 40.0):
            h.labels(op="run").observe(v)
        snap = json.loads(json.dumps(reg.snapshot()))
        sample = snap["lat_ms"]["samples"][0]
        assert quantile_from_snapshot(sample, 50) == 5.0
        assert quantile_from_snapshot(sample, 100) == 50.0
        assert math.isnan(quantile_from_snapshot({"count": 0}, 50))


# -- snapshot / delta / collectors -------------------------------------------

class TestSnapshotDelta:
    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("a_total", labels=("k",)).labels(k="x").inc()
        reg.gauge("g").set(2)
        reg.histogram("h_ms").observe(1.0)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == json.loads(
            json.dumps(snap))
        assert snap["a_total"]["type"] == "counter"
        assert snap["h_ms"]["samples"][0]["count"] == 1

    def test_delta_counts_growth(self):
        reg = MetricsRegistry()
        c = reg.counter("a_total")
        h = reg.histogram("h_ms")
        c.inc(2)
        h.observe(1.0)
        before = reg.snapshot()
        c.inc(3)
        h.observe(2.0)
        d = MetricsRegistry.delta(before, reg.snapshot())
        assert d["a_total"]["samples"][0]["value"] == 3.0
        assert d["h_ms"]["samples"][0]["count"] == 1

    def test_collector_merges_at_snapshot_time(self):
        reg = MetricsRegistry()
        calls = []

        def collect():
            calls.append(1)
            return {"side_total": {
                "type": "counter", "help": "from a collector",
                "samples": [{"labels": {}, "value": 7.0}]}}

        reg.register_collector(collect)
        assert not calls                    # lazy: nothing until snapshot
        snap = reg.snapshot()
        assert snap["side_total"]["samples"][0]["value"] == 7.0
        assert counter_total(snap, "side_total") == 7.0

    def test_counter_total_filters_by_labels(self):
        reg = MetricsRegistry()
        fam = reg.counter("e_total", labels=("tier", "event"))
        fam.labels(tier="rows", event="hits").inc(2)
        fam.labels(tier="rows", event="misses").inc(1)
        fam.labels(tier="datasets", event="hits").inc(5)
        snap = reg.snapshot()
        assert counter_total(snap, "e_total") == 8.0
        assert counter_total(snap, "e_total", tier="rows") == 3.0
        assert counter_total(snap, "e_total", event="hits") == 7.0


# -- Prometheus exposition ---------------------------------------------------

class TestExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests",
                    labels=("op",)).labels(op="run").inc(3)
        reg.gauge("depth", "queue depth").set(2)
        text = render_prometheus(reg.snapshot())
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="run"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "latency", labels=("op",),
                          buckets=(1.0, 10.0))
        h.labels(op="run").observe(0.5)
        h.labels(op="run").observe(5.0)
        text = render_prometheus(reg.snapshot())
        assert 'lat_ms_bucket{op="run",le="1"} 1' in text
        assert 'lat_ms_bucket{op="run",le="10"} 2' in text
        assert 'lat_ms_bucket{op="run",le="+Inf"} 2' in text
        assert 'lat_ms_sum{op="run"} 5.5' in text
        assert 'lat_ms_count{op="run"} 2' in text

    def test_label_values_escaped(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("k",)).labels(k='say "hi"').inc()
        assert 'x_total{k="say \\"hi\\""} 1' in render_prometheus(
            reg.snapshot())


# -- span tracing ------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


class TestTracing:
    def test_span_timing_with_injected_clock(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer"):
            clock.t += 0.010
            with tracer.span("inner", detail=1):
                clock.t += 0.002
        outer, = tracer.find("outer")
        inner, = tracer.find("inner")
        assert outer.dur_us == pytest.approx(12_000)
        assert inner.dur_us == pytest.approx(2_000)
        assert inner.parent == "outer" and inner.depth == 1
        assert tracer.children_of("outer") == [inner]

    def test_raising_span_tagged_with_error(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span, = tracer.find("doomed")
        assert span.args["error"] == "RuntimeError"

    def test_body_annotates_args(self):
        tracer = SpanTracer()
        with tracer.span("req") as args:
            args["served"] = "cache"
        assert tracer.find("req")[0].args["served"] == "cache"

    def test_chrome_trace_schema(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock, process_name="test-proc")
        with tracer.span("a"):
            clock.t += 0.001
        doc = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        completes = [e for e in events if e["ph"] == "X"]
        assert {e["ph"] for e in events} == {"M", "X"}
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "test-proc" for e in metas)
        assert any(e["name"] == "thread_name" for e in metas)
        (span,) = completes
        assert span["name"] == "a" and span["cat"] == "repro"
        assert span["dur"] == pytest.approx(1_000)
        assert isinstance(span["ts"], (int, float))
        assert isinstance(span["pid"], int)
        assert isinstance(span["tid"], int)

    def test_write_chrome_trace(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert any(e.get("name") == "a" for e in doc["traceEvents"])

    def test_per_thread_nesting(self):
        tracer = SpanTracer()

        def worker():
            with tracer.span("w"):
                pass

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        w, = tracer.find("w")
        assert w.parent is None and w.depth == 0   # not nested under main
        main, = tracer.find("main")
        assert w.tid != main.tid

    def test_maybe_span_without_tracer_is_noop(self):
        with maybe_span(None, "x", a=1) as args:
            assert args == {"a": 1}

    def test_maybe_span_falls_back_to_global(self):
        tracer = SpanTracer()
        set_global_tracer(tracer)
        try:
            with maybe_span(None, "g"):
                pass
        finally:
            set_global_tracer(None)
        assert len(tracer.find("g")) == 1


# -- structured logging ------------------------------------------------------

class TestLogs:
    def test_json_formatter_includes_extras(self):
        stream = io.StringIO()
        root = setup_logging("info", json_mode=True, stream=stream)
        try:
            get_logger("service.test").warning(
                "cell %s failed", "BFS:ldbc", extra={"attempts": 3})
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_obs", False):
                    root.removeHandler(h)
        rec = json.loads(stream.getvalue())
        assert rec["msg"] == "cell BFS:ldbc failed"
        assert rec["level"] == "warning"
        assert rec["logger"] == "repro.service.test"
        assert rec["attempts"] == 3
        assert "ts" in rec

    def test_setup_is_idempotent(self):
        stream = io.StringIO()
        root = setup_logging("warning", stream=stream)
        root = setup_logging("warning", stream=stream)
        try:
            ours = [h for h in root.handlers
                    if getattr(h, "_repro_obs", False)]
            assert len(ours) == 1
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_obs", False):
                    root.removeHandler(h)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("loud")

    def test_exception_serialized(self):
        import sys
        fmt = JsonFormatter()
        try:
            raise ValueError("bad")
        except ValueError:
            record = logging.LogRecord(
                "repro.t", logging.ERROR, __file__, 1, "failed", (),
                exc_info=sys.exc_info())
        rec = json.loads(fmt.format(record))
        assert "ValueError: bad" in rec["exc"]


# -- live scrape: the stats op end to end ------------------------------------

def _inline_service(**kwargs) -> GraphService:
    defaults = dict(pool_config=PoolConfig(size=4, isolation="inline"))
    defaults.update(kwargs)
    return GraphService(**defaults)


class TestStatsScrape:
    def test_stats_op_carries_registry_snapshot(self):
        with ServiceThread(_inline_service()) as st:
            with ServiceClient(st.host, st.port) as c:
                c.ping()
                c.run("BFS", scale=0.02)
                c.run("BFS", scale=0.02)       # second one hits the cache
                with pytest.raises(Exception):
                    c.run("PageRank", scale=0.02)
                stats = c.stats()

        m = stats["metrics"]
        # per-op latency histograms with every request accounted for
        lat = {tuple(sorted(s["labels"].items())): s
               for s in m["service_request_latency_ms"]["samples"]}
        assert lat[(("op", "run"),)]["count"] == 3
        assert lat[(("op", "ping"),)]["count"] == 1
        assert quantile_from_snapshot(lat[(("op", "run"),)], 50) > 0
        # requests_total derives from the same observations
        assert counter_total(m, "service_requests_total", op="run") == 3
        # the bad workload surfaced as a typed error counter
        assert counter_total(m, "service_errors_total",
                             op="run", kind="bad-request") == 1
        # cache hit/miss migrated onto the registry without breaking
        # the legacy dict surface
        assert counter_total(m, "cache_events_total",
                             tier="rows", event="hits") == 1
        assert counter_total(m, "cache_events_total",
                             tier="rows", event="misses") == 1
        assert stats["cache"]["rows"]["hits"] == 1     # legacy shape
        # queue depth gauge present (drained by scrape time)
        assert m["scheduler_pending"]["samples"][0]["value"] == 0
        assert stats["scheduler"]["pending"] == 0
        # pool counters, including the worker-restart counter
        assert counter_total(m, "pool_executions_total") == 1
        assert counter_total(m, "pool_worker_restarts_total") == 0
        assert "worker_restarts" in stats["pool"]

    def test_worker_restart_counter_counts_crashes(self):
        doomed = Cell(workload="BFS", dataset="ldbc", scale=0.02,
                      seed=0, machine="scaled")
        chaos = ChaosSpec(faults={doomed.cell_id: Fault("crash")})
        with ServiceThread(_inline_service(chaos=chaos)) as st:
            with ServiceClient(st.host, st.port) as c:
                with pytest.raises(Exception):
                    c.run("BFS", scale=0.02)
                m = c.stats()["metrics"]
        assert counter_total(m, "pool_worker_restarts_total") >= 1
        assert counter_total(m, "pool_failures_total", kind="crash") >= 1

    def test_prometheus_render_of_live_snapshot(self):
        with ServiceThread(_inline_service()) as st:
            with ServiceClient(st.host, st.port) as c:
                c.run("CComp", scale=0.02)
                text = render_prometheus(c.stats()["metrics"])
        assert 'service_request_latency_ms_bucket{op="run",le="+Inf"} 1' \
            in text
        assert "# TYPE scheduler_pending gauge" in text
        assert "# TYPE cache_events_total counter" in text

    def test_stats_cli_scrapes_live_server(self, capsys):
        from repro.cli import main
        with ServiceThread(_inline_service()) as st:
            with ServiceClient(st.host, st.port) as c:
                c.run("BFS", scale=0.02)
            for fmt in ("table", "json", "prom"):
                assert main(["stats", "--port", str(st.port),
                             "--format", fmt]) == 0
        out = capsys.readouterr().out
        assert "latency/run" in out                       # table
        assert '"service_request_latency_ms"' in out      # json
        assert "service_bytes_sent_total" in out          # prom

    def test_stats_cli_connection_refused_exits_2(self, capsys):
        from repro.cli import main
        with ServiceThread(_inline_service()) as st:
            port = st.port                 # free again after shutdown
        assert main(["stats", "--port", str(port)]) == 2
        assert "error:" in capsys.readouterr().err


# -- load generator hardening ------------------------------------------------

class _FlakyClient:
    """Scripted stand-in for ServiceClient: fail N requests, then serve."""

    def __init__(self, plan):
        self._plan = plan                  # shared mutable failure budget
        self.closed = False

    def request(self, op, **params):
        if self._plan["failures"] > 0:
            self._plan["failures"] -= 1
            raise ConnectionResetError("peer reset")
        return {"served": "cache"}

    def close(self):
        self.closed = True


class TestLoadgenHardening:
    def test_connection_failure_reconnects_and_drains_plan(self):
        plan_state = {"failures": 3}
        made = []

        def factory():
            client = _FlakyClient(plan_state)
            made.append(client)
            return client

        gen = LoadGenerator("127.0.0.1", 1, concurrency=2,
                            client_factory=factory)
        queries = [Query(op="run", params={"workload": "BFS"})
                   for _ in range(10)]
        report = gen.run(queries)
        # every request accounted for: 3 connection failures, 7 ok
        assert report.failed == 3
        assert report.ok == 7
        assert report.failures_by_kind == {CONNECTION_FAILURE_KIND: 3}
        # each failure reconnected: 2 initial + 3 replacements
        assert len(made) == 5
        assert all(c.closed for c in made)

    def test_tracer_tags_failed_requests(self):
        tracer = SpanTracer()
        state = {"failures": 1}          # shared across reconnects
        gen = LoadGenerator(
            "127.0.0.1", 1, concurrency=1, tracer=tracer,
            client_factory=lambda: _FlakyClient(state))
        gen.run([Query(op="run", params={}) for _ in range(2)])
        spans = tracer.find("request:run")
        assert len(spans) == 2
        tags = sorted(s.args.get("failed", s.args.get("served"))
                      for s in spans)
        assert tags == ["cache", CONNECTION_FAILURE_KIND]

    def test_report_zero_elapsed_guard(self):
        from repro.service import LoadReport
        report = LoadReport(requests=0, ok=0, failed=0,
                            failures_by_kind={}, elapsed_s=0.0,
                            latencies_ms=[], served={})
        assert report.throughput_rps == 0.0
        s = report.summary()
        assert s["throughput_rps"] == 0.0
        assert s["latency_ms"]["p50"] is None
        assert "0.0 req/s" in report.format()

    def test_report_percentiles_match_shared_definition(self):
        from repro.service import LoadReport
        lat = sorted([5.0, 1.0, 9.0, 3.0])
        report = LoadReport(requests=4, ok=4, failed=0,
                            failures_by_kind={}, elapsed_s=1.0,
                            latencies_ms=lat, served={"cache": 4})
        assert report.latency_ms(50) == percentile(lat, 50)
        assert report.latency_ms(99) == 9.0


# -- trace plumbing through matrix / harness ---------------------------------

class TestMatrixTracing:
    def test_matrix_cells_and_retries_become_spans(self, tmp_path):
        from repro.resilience import (
            ExecutorConfig,
            RetryPolicy,
            matrix_cells,
            run_matrix,
        )
        cells = matrix_cells(["BFS"], ["ldbc"], scale=0.02,
                             machine="scaled")
        chaos = ChaosSpec(faults={
            cells[0].cell_id: Fault("crash", until_attempt=1)})
        tracer = SpanTracer()
        registry = MetricsRegistry()
        config = ExecutorConfig(
            isolation="inline",
            policy=RetryPolicy(max_retries=2, base_delay=0.0))
        result = run_matrix(cells, config=config, chaos=chaos,
                            sleep=lambda _s: None, tracer=tracer,
                            registry=registry)
        assert result.complete
        cell_span, = tracer.find("cell:")
        assert cell_span.args["attempts"] == 2
        attempts = tracer.children_of(cell_span.name)
        assert [a.name for a in attempts] == ["attempt:1", "attempt:2"]
        assert attempts[0].args["error"] == "CellCrash"
        snap = registry.snapshot()
        assert counter_total(snap, "matrix_cells_total", outcome="ok") == 1
        assert counter_total(snap, "matrix_retries_total") == 1
        # the exported trace is valid Chrome Trace JSON
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" and e["name"].startswith("cell:")
                   for e in doc["traceEvents"])

    def test_matrix_counts_faults_by_kind(self):
        from repro.resilience import (
            ExecutorConfig,
            RetryPolicy,
            matrix_cells,
            run_matrix,
        )
        cells = matrix_cells(["BFS"], ["ldbc"], scale=0.02)
        chaos = ChaosSpec(faults={cells[0].cell_id: Fault("crash")})
        registry = MetricsRegistry()
        config = ExecutorConfig(
            isolation="inline",
            policy=RetryPolicy(max_retries=1, base_delay=0.0))
        result = run_matrix(cells, config=config, chaos=chaos,
                            sleep=lambda _s: None, registry=registry)
        assert not result.complete
        snap = registry.snapshot()
        assert counter_total(snap, "matrix_cells_total",
                             outcome="failed") == 1
        assert counter_total(snap, "matrix_faults_total", kind="crash") == 1

    def test_characterize_spans_nest_under_attempt(self):
        from repro.datagen.registry import make as make_dataset
        from repro.harness import characterize

        tracer = SpanTracer()
        spec = make_dataset("ldbc", scale=0.02, seed=0)
        characterize("BFS", spec, memo=False, tracer=tracer)
        char, = tracer.find("characterize:BFS")
        assert char.args["served"] == "computed"
        cpu, = tracer.find("cpu:BFS")
        assert cpu.parent == char.name

    def test_characterize_memo_hit_tagged(self):
        from repro.datagen.registry import make as make_dataset
        from repro.harness import characterize, clear_cache

        clear_cache()
        spec = make_dataset("ldbc", scale=0.02, seed=1)
        tracer = SpanTracer()
        characterize("BFS", spec, tracer=tracer)
        characterize("BFS", spec, tracer=tracer)
        served = [s.args["served"]
                  for s in tracer.find("characterize:BFS")]
        assert served == ["computed", "memo"]
        clear_cache()
