"""Characterization runner: workload x dataset -> full metric rows.

Drives the paper's experimental matrix: build the dataset as a dynamic
vertex-centric graph (aged heap), run the workload kernel under a fresh
tracer, feed the trace to the CPU model — and, for GPU workloads, run the
SIMT kernel over the populated CSR/COO.  Results are memoized per
(workload, dataset, scale, seed, machine) so the per-figure benchmarks
share one characterization pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..arch.cpu import CPUMetrics, CPUModel
from ..arch.machine import SCALED_XEON, MachineConfig
from ..bayes.munin import munin_like
from ..core.errors import MetricsUnavailable
from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType
from ..core.trace import Tracer
from ..datagen.registry import make as make_dataset
from ..datagen.spec import GraphSpec
from ..gpu.device import K40, DeviceConfig, GPUMetrics
from ..gpu.runner import run_gpu_workload
from ..obs.tracing import maybe_span
from ..parallel.multicore import project_multicore
from ..service.cache import LRUCache
from ..workloads import WORKLOADS, build_bn_graph
from ..workloads.base import (
    WorkloadResult,
    common_edge_schema,
    common_vertex_schema,
)

#: Workloads that can take every input dataset (the paper's Fig. 9 set
#: excludes the ones that cannot — Gibbs needs a Bayesian network, GCons
#: consumes an edge list, TMorph needs a DAG).
DATA_SENSITIVE_WORKLOADS = ("BFS", "DFS", "SPath", "kCore", "CComp",
                            "TC", "DCentr")

#: The 12 CPU-characterized workloads of Figs. 5-8 (DFS included; the
#: paper's 12 CPU workloads).
CPU_WORKLOADS = ("BFS", "DFS", "GCons", "GUp", "TMorph", "SPath", "kCore",
                 "CComp", "GColor", "TC", "Gibbs", "DCentr", "BCentr")

#: GPU workload set (paper: 8 GPU workloads).
GPU_WORKLOAD_SET = ("BFS", "SPath", "kCore", "CComp", "GColor", "TC",
                    "DCentr", "BCentr")


@dataclass
class Row:
    """One characterization result: workload x dataset."""

    workload: str
    dataset: str
    ctype: ComputationType
    cpu: CPUMetrics | None = None
    gpu: GPUMetrics | None = None
    result: WorkloadResult | None = None
    extras: dict[str, Any] = field(default_factory=dict)


# Bounded LRU memo shared in implementation with the service's row tier
# (repro.service.cache): a full 13-workload x 5-dataset sweep with GPU
# variants fits with ample headroom, and a long-lived process (notebook,
# server) can no longer grow the memo without bound.
_CACHE = LRUCache(capacity=512)


def clear_cache() -> None:
    """Drop memoized characterization rows (for tests)."""
    _CACHE.clear()


def cache_stats() -> dict[str, float]:
    """Hit/miss/eviction counters of the characterization memo."""
    return _CACHE.stats.as_dict()


def _build_graph(spec: GraphSpec, tracer=None) -> PropertyGraph:
    return spec.build(vertex_schema=common_vertex_schema(),
                      edge_schema=common_edge_schema(), tracer=tracer)


def _traversal_root(spec: GraphSpec) -> int:
    """Highest-out-degree vertex: reaches the giant component."""
    return int(np.argmax(spec.out_degrees()))


def _dagify(spec: GraphSpec) -> list[tuple[int, int]]:
    """Acyclic orientation of the dataset: higher-degree endpoint ->
    lower-degree endpoint (degeneracy-style, bounded in-degrees — the
    shape of real DAG data such as diagnostic networks)."""
    e = spec.edges
    deg = spec.degrees_undirected()
    rank = np.lexsort((np.arange(spec.n), -deg))   # position by (-deg, id)
    order = np.empty(spec.n, dtype=np.int64)
    order[rank] = np.arange(spec.n)
    a, b = e[:, 0], e[:, 1]
    swap = order[a] > order[b]
    src = np.where(swap, b, a)
    dst = np.where(swap, a, b)
    keep = src != dst
    key = src[keep] * spec.n + dst[keep]
    _, idx = np.unique(key, return_index=True)
    return list(zip(src[keep][idx].tolist(), dst[keep][idx].tolist()))


def run_cpu_workload(name: str, spec: GraphSpec, *,
                     machine: MachineConfig = SCALED_XEON,
                     gibbs_bn=None,
                     params: dict[str, Any] | None = None
                     ) -> tuple[WorkloadResult, CPUMetrics]:
    """Run one CPU workload on ``spec`` and characterize its trace.

    Handles each workload's input discipline: GCons gets an empty graph
    plus the edge list, GUp deletes from a prebuilt graph, TMorph runs on
    the DAG-ified dataset, Gibbs on a MUNIN-like network.
    """
    wl = WORKLOADS[name]()
    tracer = Tracer()
    params = dict(params or {})
    if name == "GCons":
        g = PropertyGraph(common_vertex_schema(), common_edge_schema(),
                          directed=spec.directed)
        params.setdefault("n_vertices", spec.n)
        params.setdefault("edges", spec.edges)
    elif name == "TMorph":
        g = PropertyGraph(common_vertex_schema(), common_edge_schema())
        for v in range(spec.n):
            g.add_vertex(v)
        for s, d in _dagify(spec):
            g.add_edge(s, d)
    elif name == "Gibbs":
        bn = gibbs_bn if gibbs_bn is not None else munin_like()
        g = build_bn_graph(bn)
        params.setdefault("bn", bn)
        params.setdefault("n_sweeps", 8)
        params.setdefault("burn_in", 2)
    else:
        g = _build_graph(spec)
        if name in ("BFS", "DFS", "SPath"):
            params.setdefault("root", _traversal_root(spec))
        if name == "GUp":
            params.setdefault("fraction", 0.1)
        if name == "BCentr":
            params.setdefault("n_sources", 4)
    result = wl.run(g, tracer=tracer, **params)
    metrics = CPUModel(machine).run(result.trace,
                                    footprint_bytes=g.alloc.footprint)
    return result, metrics


def _gpu_params(name: str, spec: GraphSpec) -> dict[str, Any]:
    params: dict[str, Any] = {}
    if name in ("BFS", "SPath"):
        params["root"] = _traversal_root(spec)
    if name == "BCentr":
        params["n_sources"] = 4
    return params


def characterize(name: str, spec: GraphSpec, *,
                 machine: MachineConfig = SCALED_XEON,
                 device: DeviceConfig = K40,
                 with_gpu: bool = False,
                 cache_key: tuple | None = None,
                 memo: bool = True,
                 tracer=None) -> Row:
    """Full characterization of one workload on one dataset (memoized).

    ``memo=False`` bypasses the memo entirely (no lookup, no fill) —
    the service's cache-off baseline measures true recompute cost.
    With a ``tracer`` (or an installed global
    :class:`~repro.obs.SpanTracer`) the pass records a
    ``characterize:<workload>:<dataset>`` span with ``cpu``/``gpu``
    child phases; a memo hit closes immediately, tagged ``served=memo``.
    """
    # MachineConfig is a frozen dataclass: hashing the whole config (not
    # just its name) keeps two differently-tuned machines with the same
    # name from colliding; likewise spec.seed distinguishes same-sized
    # datasets generated from different seeds.
    key = cache_key or (name, spec.name, spec.n, spec.m, spec.seed,
                        machine, device.name if with_gpu else None,
                        with_gpu)
    with maybe_span(tracer, f"characterize:{name}:{spec.name}",
                    workload=name, dataset=spec.name,
                    n=spec.n, m=spec.m) as span_args:
        if memo:
            row = _CACHE.get(key)
            if row is not None:
                span_args["served"] = "memo"
                return row
        span_args["served"] = "computed"
        with maybe_span(tracer, f"cpu:{name}", workload=name):
            result, cpu = run_cpu_workload(name, spec, machine=machine)
        row = Row(workload=name, dataset=spec.name,
                  ctype=WORKLOADS[name].CTYPE, cpu=cpu, result=result)
        if with_gpu and name in GPU_WORKLOAD_SET:
            with maybe_span(tracer, f"gpu:{name}", workload=name):
                outputs, gpu = run_gpu_workload(name, spec, device=device,
                                                **_gpu_params(name, spec))
            row.gpu = gpu
            row.extras["gpu_outputs_keys"] = sorted(outputs)
        if memo:
            _CACHE.put(key, row)
        return row


def gpu_speedup(row: Row, *, machine: MachineConfig = SCALED_XEON,
                weights: np.ndarray | None = None) -> float:
    """Fig. 12's metric: 16-core CPU in-core time / GPU kernel time.

    Raises :class:`~repro.core.errors.MetricsUnavailable` when the row
    lacks either side; returns NaN for a degenerate (zero-time) GPU run so
    it cannot be confused with a genuine zero speedup.
    """
    if row.cpu is None or row.gpu is None:
        raise MetricsUnavailable(f"row {row.workload}/{row.dataset} lacks "
                                 "CPU or GPU metrics")
    barriers = 0
    out = row.result.outputs if row.result else {}
    for k in ("depth", "rounds", "launches"):
        if k in out:
            barriers = int(out[k])
            break
    mc = project_multicore(row.cpu.cycles, p=machine.n_cores,
                           weights=weights, barriers=barriers,
                           workload=row.workload)
    cpu_time = mc.time_seconds(machine.freq_ghz)
    if not row.gpu.exec_time:
        return float("nan")
    return cpu_time / row.gpu.exec_time


def default_dataset(scale: float = 1.0, seed: int = 0) -> GraphSpec:
    """The LDBC characterization graph of Table 7 (scaled)."""
    return make_dataset("ldbc", scale=scale, seed=seed)
