"""Fault-tolerant characterization: isolation, retries, checkpoint-resume.

The characterization matrix (workload x dataset x machine) is a
long-running batch sweep; this package keeps one hung traversal or
allocator blow-up from losing it:

* :mod:`~repro.resilience.cell` — the picklable unit of work and its
  JSON checkpoint serialization
* :mod:`~repro.resilience.executor` — worker-subprocess isolation with
  wall-clock timeouts and typed crash containment
* :mod:`~repro.resilience.retry` — bounded retries, exponential backoff,
  deterministic seeded jitter
* :mod:`~repro.resilience.checkpoint` — append-only JSON-lines journal
  enabling ``--resume``
* :mod:`~repro.resilience.chaos` — deterministic fault injection (hang /
  crash / OOM / corrupt) proving every recovery path fires
* :mod:`~repro.resilience.netchaos` — a deterministic TCP chaos proxy
  (latency, bandwidth caps, resets, corruption, black holes, slow-loris
  stalls) for network-level failure drills
* :mod:`~repro.resilience.matrix` — the resilient sweep driver with
  graceful degradation (failed cells become report entries, not aborts)
"""

from ..core.errors import (
    CellCrash,
    CellExecutionError,
    CellOOM,
    CellTimeout,
    HarnessError,
    MetricsUnavailable,
    RetriesExhausted,
)
from .cell import (
    MACHINES,
    Cell,
    RestoredMetrics,
    RestoredResult,
    record_to_row,
    row_to_record,
    run_cell,
)
from .chaos import FAULT_KINDS, ChaosSpec, Fault, FaultInjected
from .checkpoint import CheckpointStore
from .executor import (
    ExecutorConfig,
    run_cell_inline,
    run_cell_once,
    run_cell_resilient,
)
from .matrix import CellFailure, MatrixResult, matrix_cells, run_matrix
from .netchaos import ChaosProxy, NetFaultSpec
from .retry import RetryPolicy, backoff_schedule, run_with_retries

__all__ = [
    "Cell", "CellCrash", "CellExecutionError", "CellFailure", "CellOOM",
    "CellTimeout", "ChaosProxy", "ChaosSpec", "CheckpointStore",
    "ExecutorConfig", "FAULT_KINDS", "Fault", "FaultInjected",
    "HarnessError", "MACHINES", "MatrixResult", "MetricsUnavailable",
    "NetFaultSpec", "RestoredMetrics",
    "RestoredResult", "RetriesExhausted", "RetryPolicy",
    "backoff_schedule", "matrix_cells", "record_to_row", "row_to_record",
    "run_cell", "run_cell_inline", "run_cell_once", "run_cell_resilient",
    "run_matrix", "run_with_retries",
]
