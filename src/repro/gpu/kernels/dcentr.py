"""GPU DCentr: degree centrality with atomic in-degree accumulation.

One thread per vertex writes its out-degree, then walks its out-edges
issuing ``atomicAdd`` on each target's in-degree counter: extremely
data-intensive, degree-variance-divergent, and address-scattered — the
paper's "extremely high divergence in both sides" corner of Fig. 10, with
throughput kept high by sheer access intensity but performance dragged
down by the atomics (Fig. 11 discussion).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..simt import KernelAccum, slots_for_loop, warp_of
from .base import GPUKernel


class GPUDcentr(GPUKernel):
    NAME = "DCentr"
    MODEL = "thread-centric"

    def kernel(self, csr, coo, acc: KernelAccum,
               **_: Any) -> dict[str, Any]:
        n = csr.n
        acc.launch()
        threads = np.arange(n)
        deg = np.diff(csr.row_ptr).astype(np.int64)
        # read own row pointers (coalesced), write own out-degree
        acc.uniform_op(np.ones(n, dtype=bool), 3.0)
        acc.mem_op(warp_of(threads), csr.base_row + 4 * threads)
        acc.mem_op(warp_of(threads), csr.base_row + 4 * (threads + 1))
        acc.mem_op(warp_of(threads), csr.base_vprop + 4 * threads,
                   is_write=True)
        # in-degree accumulation: degree-length loops + scattered atomics
        acc.loop(deg, 3.0)
        t_ids, steps, slots = slots_for_loop(deg)
        indeg = np.zeros(n, dtype=np.int64)
        if len(t_ids):
            epos = csr.row_ptr[t_ids] + steps
            nbr = csr.col_idx[epos]
            acc.mem_op(slots, csr.base_col + 4 * epos)
            acc.atomic_op(slots, csr.base_vprop + 4 * nbr)
            np.add.at(indeg, nbr, 1)
        dc = deg + indeg
        return {"dc": dc, "out_deg": deg, "in_deg": indeg}
