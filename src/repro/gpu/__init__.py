"""GPU SIMT model: warp/divergence accounting, coalescing, K40-like device
timing, the 8 GPU kernels, and the populate (CPU->GPU transfer) step."""

from .device import K40, DeviceConfig, GPUMetrics, time_kernel
from .kernels import GPU_KERNELS, UNDIRECTED_KERNELS, GPUKernel
from .populate import PopulateResult, populate
from .runner import run_gpu_workload
from .simt import (
    SEGMENT,
    WARP_SIZE,
    KernelAccum,
    KernelStats,
    slots_for_loop,
    warp_of,
)

__all__ = [
    "GPU_KERNELS", "GPUKernel", "GPUMetrics", "K40", "DeviceConfig",
    "KernelAccum", "KernelStats", "PopulateResult", "SEGMENT",
    "UNDIRECTED_KERNELS", "WARP_SIZE", "populate", "run_gpu_workload",
    "slots_for_loop", "time_kernel", "warp_of",
]
