"""Tests for the NDP projection (the paper's future-work extension)."""

import pytest

from repro.arch import CPUModel, NDPConfig, SCALED_XEON, project_ndp
from repro.core.trace import Tracer
from repro.core import trace as T

import numpy as np


def _metrics(scattered=True, n=4000):
    rng = np.random.default_rng(0)
    t = Tracer()
    for _ in range(n):
        t.enter(T.R_VERTEX_SCAN)
        t.i(8)
        if scattered:
            t.r(int(rng.integers(0, 1 << 24)) & ~7)
        else:
            t.r(64)
        t.leave()
    return CPUModel(SCALED_XEON).run(t.freeze())


class TestNDPProjection:
    def test_memory_bound_workload_wins(self):
        proj = project_ndp(_metrics(scattered=True))
        assert proj.speedup > 1.5
        assert proj.memory_bound_fraction > 0.5

    def test_compute_bound_workload_gains_less(self):
        mem = project_ndp(_metrics(scattered=True))
        cpu = project_ndp(_metrics(scattered=False))
        # relative gain is larger for the miss-dominated run
        assert mem.speedup > cpu.speedup

    def test_more_vaults_help(self):
        m = _metrics()
        few = project_ndp(m, NDPConfig(n_vaults=4))
        many = project_ndp(m, NDPConfig(n_vaults=32))
        assert many.ndp_cycles < few.ndp_cycles

    def test_locality_matters(self):
        m = _metrics()
        local = project_ndp(m, locality=0.95)
        remote = project_ndp(m, locality=0.05)
        assert local.speedup > remote.speedup

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            project_ndp(_metrics(), locality=1.5)

    def test_projection_fields(self):
        proj = project_ndp(_metrics())
        assert proj.baseline_cycles > 0
        assert proj.ndp_cycles > 0
        assert 0 <= proj.memory_bound_fraction <= 1


class TestNDPOnRealWorkload:
    def test_bfs_projection(self):
        from repro.datagen import ldbc
        from repro.harness import characterize, clear_cache
        clear_cache()
        spec = ldbc(400, avg_degree=8, seed=1)
        row = characterize("BFS", spec, machine=SCALED_XEON)
        proj = project_ndp(row.cpu)
        # CompStruct traversals are the NDP sweet spot
        assert proj.speedup > 1.0
