"""Property-based tests: graph invariants under random operation sequences."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.errors import DuplicateEdge, EdgeNotFound, VertexNotFound
from repro.core.graph import PropertyGraph
from repro.core.properties import Field, Schema
from repro.core.trace import Tracer

N_IDS = 12

op = st.one_of(
    st.tuples(st.just("addv"), st.integers(0, N_IDS - 1)),
    st.tuples(st.just("delv"), st.integers(0, N_IDS - 1)),
    st.tuples(st.just("adde"), st.integers(0, N_IDS - 1),
              st.integers(0, N_IDS - 1)),
    st.tuples(st.just("dele"), st.integers(0, N_IDS - 1),
              st.integers(0, N_IDS - 1)),
)


def apply_ops(g: PropertyGraph, ops) -> None:
    for o in ops:
        try:
            if o[0] == "addv":
                g.add_vertex(o[1])
            elif o[0] == "delv":
                g.delete_vertex(o[1])
            elif o[0] == "adde":
                g.add_edge(o[1], o[2])
            else:
                g.delete_edge(o[1], o[2])
        except (VertexNotFound, EdgeNotFound, DuplicateEdge, Exception):
            pass


def check_invariants(g: PropertyGraph) -> None:
    # arc count equals recount
    arcs = sum(len(g.find_vertex(v).out) for v in g.vertex_ids())
    assert arcs == g.num_edges
    for vid in list(g.vertex_ids()):
        v = g.find_vertex(vid)
        # every out-edge target exists and records us as in-neighbour
        for dst in v.out:
            assert dst in g
            assert vid in g.find_vertex(dst).inn
        # every in-neighbour exists and has the arc
        for src in v.inn:
            assert src in g
            assert vid in g.find_vertex(src).out


@given(st.lists(op, max_size=60))
@settings(max_examples=120, deadline=None)
def test_random_ops_keep_invariants(ops):
    g = PropertyGraph(Schema([Field("x")]))
    apply_ops(g, ops)
    check_invariants(g)


@given(st.lists(op, max_size=60))
@settings(max_examples=60, deadline=None)
def test_random_ops_traced_matches_untraced(ops):
    g1 = PropertyGraph(Schema([Field("x")]))
    t = Tracer()
    g2 = PropertyGraph(Schema([Field("x")]), tracer=t)
    apply_ops(g1, ops)
    apply_ops(g2, ops)
    assert set(g1.vertex_ids()) == set(g2.vertex_ids())
    assert g1.num_edges == g2.num_edges
    # tracer region stack stays balanced through error paths
    assert len(t._rstack) == 1


@given(st.lists(op, max_size=60))
@settings(max_examples=60, deadline=None)
def test_random_ops_undirected_symmetry(ops):
    g = PropertyGraph(Schema([Field("x")]), directed=False)
    apply_ops(g, ops)
    for vid in g.vertex_ids():
        for dst in g.find_vertex(vid).out:
            assert vid in g.find_vertex(dst).out, \
                f"missing mirror arc {dst}->{vid}"


@given(st.lists(st.integers(0, 200), min_size=1, max_size=80, unique=True))
@settings(max_examples=50, deadline=None)
def test_vertex_addresses_never_overlap(ids):
    g = PropertyGraph(Schema([Field("x")]))
    size = g._vsize
    addrs = sorted(g.add_vertex(i).addr for i in ids)
    for a, b in zip(addrs, addrs[1:]):
        assert b - a >= size
