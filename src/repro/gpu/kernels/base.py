"""GPU kernel base: thread-centric vs edge-centric SIMT kernels over CSR/COO.

GraphBIG's GPU benchmarks share the CPU core code but organize device data
as CSR/COO (Section 4.1).  Two mapping models appear (Section 5.3):

* **thread-centric** — one thread per vertex; the per-thread working set is
  the vertex's degree, whose warp-level variance produces branch
  divergence (BFS, SPath, kCore, GColor, DCentr, BCentr);
* **edge-centric** — one thread per edge; per-thread work is uniform, so
  BDR stays low and only memory divergence remains (CComp per Soman,
  TC per-edge intersection).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ...formats.coo import COOGraph
from ...formats.csr import CSRGraph
from ..simt import KernelAccum, KernelStats, warp_of


class GPUKernel(ABC):
    """One GPU workload kernel; :meth:`run` returns (outputs, stats)."""

    NAME: str = ""
    MODEL: str = "thread-centric"       # or "edge-centric"

    def run(self, csr: CSRGraph, coo: COOGraph | None = None,
            l2_bytes: int = 32 * 1024, fused: bool = True,
            **params: Any) -> tuple[dict[str, Any], KernelStats]:
        """Execute the kernel; ``fused=False`` forces the inline
        reference L2 accounting (the cross-validation oracle)."""
        acc = KernelAccum(l2_bytes=l2_bytes, fused=fused)
        outputs = self.kernel(csr, coo, acc, **params)
        return outputs, acc.stats

    @abstractmethod
    def kernel(self, csr: CSRGraph, coo: COOGraph | None,
               acc: KernelAccum, **params: Any) -> dict[str, Any]:
        """Algorithm + SIMT accounting body."""


def frontier_expand(acc: KernelAccum, csr: CSRGraph,
                    active: np.ndarray, body_instrs: float = 4.0
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared thread-centric edge-expansion accounting.

    Every thread (vertex) checks its frontier membership (one coalesced
    property load + compare); active threads read their row pointers and
    walk their neighbour lists.  Returns ``(threads, steps, slots)`` flat
    arrays — one entry per traversed edge — for the caller's own
    neighbour-data accounting, plus the neighbour ids via
    ``csr.col_idx[csr.row_ptr[threads] + steps]``.
    """
    from ..simt import slots_for_loop
    n = csr.n
    all_threads = np.arange(n)
    # membership check: coalesced read of the per-vertex property array
    acc.uniform_op(np.ones(n, dtype=bool), 2.0)
    acc.mem_op(warp_of(all_threads), csr.base_vprop + 4 * all_threads)
    trips = np.where(active, np.diff(csr.row_ptr), 0)
    av = np.flatnonzero(active)
    if len(av):
        # row-pointer loads by active lanes (mostly coalesced)
        acc.mem_op(warp_of(av), csr.base_row + 4 * av)
        acc.mem_op(warp_of(av), csr.base_row + 4 * (av + 1))
    acc.loop(trips, body_instrs)
    threads, steps, slots = slots_for_loop(trips)
    if len(threads):
        epos = csr.row_ptr[threads] + steps
        # neighbour-id loads: sequential per lane, divergent across lanes
        acc.mem_op(slots, csr.base_col + 4 * epos)
    return threads, steps, slots
