"""Tests for the multi-tenant QoS layer: token buckets, weighted-fair
queueing, the governor's admission/cache/slot composition, scheduler
integration, tenant identity on the wire, and the loadgen tenant
stamping."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.errors import QuotaExceeded
from repro.resilience import Cell
from repro.service import (
    CacheTiers,
    GraphService,
    PoolConfig,
    Scheduler,
    SchedulerConfig,
    ServiceClient,
    ServiceThread,
    decode_frame,
    encode_request,
    error_to_payload,
    parse_request,
    payload_to_error,
)
from repro.tenancy import (
    DEFAULT_TENANT,
    FairGate,
    QosConfig,
    TenantGovernor,
    TenantPolicy,
    TokenBucket,
)


class _Clock:
    """Manual monotonic clock for deterministic refill tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- token bucket ------------------------------------------------------------

class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = _Clock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_spend() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_spend()
        assert retry == pytest.approx(0.1)      # 1 token at 10/s

    def test_refills_at_rate_up_to_burst(self):
        clock = _Clock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            bucket.try_spend()
        clock.advance(1.0)                      # +2 tokens
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)                    # clamped at burst
        assert bucket.tokens == pytest.approx(4.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


# -- weighted-fair gate ------------------------------------------------------

class TestFairGate:
    def test_uncontended_grants_synchronously(self):
        async def main():
            gate = FairGate(2)
            await gate.acquire("a")
            await gate.acquire("b")
            assert gate.active == 2
            assert gate.queue_depth() == 0
            gate.release()
            gate.release()
            assert gate.active == 0

        asyncio.run(main())

    def test_weighted_drain_favours_heavy_tenant(self):
        """With weights 2:1, the heavy tenant drains ~2 of every 3
        grants under sustained contention."""

        async def main():
            gate = FairGate(1)
            order: list[str] = []
            await gate.acquire("holder")        # force contention

            async def waiter(tenant: str, weight: float):
                await gate.acquire(tenant, weight)
                order.append(tenant)
                gate.release()

            tasks = []
            for i in range(6):
                tasks.append(asyncio.ensure_future(
                    waiter("heavy", 2.0)))
                await asyncio.sleep(0)          # enqueue in arrival order
            for i in range(3):
                tasks.append(asyncio.ensure_future(
                    waiter("light", 1.0)))
                await asyncio.sleep(0)
            gate.release()                      # start the drain
            await asyncio.gather(*tasks)
            return order

        order = asyncio.run(main())
        assert len(order) == 9
        # tag spacing: heavy advances by 1/2 per grant, light by 1/1 —
        # the first three grants cannot all be the heavy tenant's
        assert "light" in order[:3]
        # and the heavy tenant still gets the majority overall
        assert order.count("heavy") == 6

    def test_queue_bound_rejects_the_flooder_only(self):
        async def main():
            gate = FairGate(1, max_queue=2)
            await gate.acquire("hold")
            flood = [asyncio.ensure_future(gate.acquire("noisy"))
                     for _ in range(2)]
            await asyncio.sleep(0)
            with pytest.raises(QuotaExceeded) as exc:
                await gate.acquire("noisy")
            assert exc.value.reason == "queue"
            # a different tenant still queues fine
            quiet = asyncio.ensure_future(gate.acquire("quiet"))
            await asyncio.sleep(0)
            assert gate.queue_depth("quiet") == 1
            # drain order is tag order: the quiet tenant's first request
            # (tag 1.0) jumps ahead of the flooder's second (tag 2.0)
            gate.release()
            await flood[0]
            gate.release()
            await quiet
            gate.release()
            await flood[1]
            gate.release()

        asyncio.run(main())


# -- governor ----------------------------------------------------------------

class TestTenantGovernor:
    def _gov(self, clock=None, **policies):
        cfg = QosConfig(policies=dict(policies),
                        default_policy=TenantPolicy(),
                        row_capacity=100)
        return TenantGovernor(cfg, clock=clock or time.monotonic)

    def test_unmetered_default_always_admits(self):
        gov = self._gov()
        for _ in range(1000):
            gov.admit(gov.resolve(None))
        assert gov.stats()["tenants"][DEFAULT_TENANT]["admitted"] == 1000

    def test_metered_tenant_hits_rate_quota_with_retry_hint(self):
        clock = _Clock()
        gov = self._gov(clock=clock,
                        noisy=TenantPolicy(rate=10.0, burst=2.0))
        gov.admit("noisy")
        gov.admit("noisy")
        with pytest.raises(QuotaExceeded) as exc:
            gov.admit("noisy")
        assert exc.value.reason == "rate"
        assert exc.value.retry_after_s == pytest.approx(0.1)
        clock.advance(0.2)                      # bucket refills
        gov.admit("noisy")
        counts = gov.stats()["tenants"]["noisy"]
        assert counts == {"admitted": 3, "rejected_rate": 1}

    def test_cache_partition_sized_from_share(self):
        gov = self._gov(small=TenantPolicy(cache_share=0.1))
        part = gov.cache_for("small")
        assert part is not None and part.capacity == 10
        assert gov.cache_for("small") is part   # memoized
        assert gov.cache_for(DEFAULT_TENANT) is None  # shared tier

    def test_metrics_collector_shape(self):
        from repro.obs import MetricsRegistry
        gov = self._gov()
        reg = MetricsRegistry()
        gov.bind_metrics(reg)
        gov.admit(DEFAULT_TENANT)
        snap = reg.snapshot()
        samples = snap["tenant_requests_total"]["samples"]
        assert {tuple(sorted(s["labels"])) for s in samples} \
            == {("outcome", "tenant")}
        assert snap["tenant_gate_queued"]["samples"][0]["value"] == 0.0


# -- scheduler integration ---------------------------------------------------

class _FakePool:
    def __init__(self):
        self.calls = []

    async def run_record(self, cell):
        self.calls.append(cell.cell_id)
        await asyncio.sleep(0)
        return {"kind": "row", "cell": cell.cell_id,
                "workload": cell.workload, "dataset": cell.dataset,
                "ctype": "CompStruct", "outputs": {}}


def _cell(workload="BFS", dataset="ldbc", seed=0):
    return Cell(workload=workload, dataset=dataset, scale=0.05,
                seed=seed, machine="test")


class TestSchedulerWithGovernor:
    def test_rate_quota_surfaces_from_submit(self):
        clock = _Clock()
        gov = TenantGovernor(QosConfig(
            policies={"noisy": TenantPolicy(rate=5.0, burst=1.0)}),
            clock=clock)

        async def main():
            sched = Scheduler(_FakePool(), CacheTiers.disabled(),
                              SchedulerConfig(caching=False),
                              governor=gov)
            await sched.submit(_cell(seed=0), tenant="noisy")
            with pytest.raises(QuotaExceeded):
                await sched.submit(_cell(seed=1), tenant="noisy")
            # the quiet (unmetered) tenant is unaffected
            await sched.submit(_cell(seed=2), tenant="quiet")
            await sched.drain()

        asyncio.run(main())

    def test_tenant_cache_partition_isolates_fills(self):
        gov = TenantGovernor(QosConfig(
            policies={"vip": TenantPolicy(cache_share=0.5)},
            row_capacity=64))

        async def main():
            pool = _FakePool()
            sched = Scheduler(pool, CacheTiers.build(), governor=gov)
            first = await sched.submit(_cell(), tenant="vip")
            second = await sched.submit(_cell(), tenant="vip")
            # a shared-tier tenant missed the vip partition: re-executes
            third = await sched.submit(_cell(), tenant="other")
            await sched.drain()
            return pool.calls, first, second, third

        calls, first, second, third = asyncio.run(main())
        assert first["served"] == "executed"
        assert second["served"] == "cache"
        assert third["served"] == "executed"
        assert len(calls) == 2
        assert len(gov.cache_for("vip")) == 1

    def test_slots_released_after_execution(self):
        gov = TenantGovernor(QosConfig(fair_slots=2))

        async def main():
            sched = Scheduler(_FakePool(), CacheTiers.disabled(),
                              SchedulerConfig(caching=False),
                              governor=gov)
            await asyncio.gather(*[
                sched.submit(_cell(seed=i), tenant=f"t{i % 3}")
                for i in range(8)])
            await sched.drain()
            # gather returned, so every submit's future resolved; the
            # release callbacks run on task completion
            for _ in range(3):
                await asyncio.sleep(0)
            return gov.gate.active

        assert asyncio.run(main()) == 0


# -- wire protocol -----------------------------------------------------------

class TestTenantOnTheWire:
    def test_tenant_round_trips(self):
        wire = encode_request("run", "r1", {"workload": "BFS"},
                              tenant="acme")
        req = parse_request(decode_frame(wire))
        assert req.tenant == "acme"

    def test_tenantless_frame_is_byte_identical_to_legacy(self):
        wire = encode_request("run", "r1", {"workload": "BFS"})
        assert b"tenant" not in wire
        assert parse_request(decode_frame(wire)).tenant is None

    def test_invalid_tenant_rejected(self):
        from repro.core.errors import ProtocolError
        frame = decode_frame(encode_request("ping", "r1", {}))
        frame["tenant"] = 7
        with pytest.raises(ProtocolError):
            parse_request(frame)

    def test_quota_exceeded_rehydrates_with_retry_hint(self):
        payload = error_to_payload(QuotaExceeded("acme", "rate", 0.25))
        err = payload_to_error(payload)
        assert isinstance(err, QuotaExceeded)
        assert err.kind == "quota-exceeded"
        assert err.retry_after_s == 0.25
        assert "acme" in str(err)


# -- end to end --------------------------------------------------------------

class TestLiveQosService:
    def test_metered_tenant_rejected_while_quiet_tenant_serves(self):
        gov = TenantGovernor(QosConfig(
            policies={"noisy": TenantPolicy(rate=0.001, burst=1.0)}))
        service = GraphService(
            pool_config=PoolConfig(size=2, isolation="inline"),
            governor=gov)
        with ServiceThread(service) as st:
            with ServiceClient(st.host, st.port,
                               tenant="noisy") as noisy:
                noisy.run("BFS", "ldbc", scale=0.02, machine="test")
                with pytest.raises(QuotaExceeded) as exc:
                    noisy.run("CComp", "ldbc", scale=0.02,
                              machine="test")
                assert exc.value.retry_after_s > 0
            with ServiceClient(st.host, st.port,
                               tenant="quiet") as quiet:
                out = quiet.run("CComp", "ldbc", scale=0.02,
                                machine="test")
                assert out["outputs"]
                tenancy = quiet.stats()["tenancy"]
        assert tenancy["tenants"]["noisy"]["rejected_rate"] == 1
        assert tenancy["tenants"]["quiet"]["admitted"] >= 1

    def test_no_governor_stats_carry_no_tenancy_block(self):
        service = GraphService(
            pool_config=PoolConfig(size=1, isolation="inline"))
        with ServiceThread(service) as st:
            with ServiceClient(st.host, st.port) as client:
                assert "tenancy" not in client.stats()


# -- loadgen tenant stamping -------------------------------------------------

class TestAssignTenants:
    def test_content_unchanged_and_deterministic(self):
        from repro.service.loadgen import (
            assign_tenants,
            schedule,
            workload_mix,
        )
        mix = workload_mix(("BFS",), ("ldbc", "twitter"))
        plan = schedule(mix, 60, seed=5, dataset_skew=1.0)
        stamped = assign_tenants(plan, 3, skew=1.2, seed=5)
        assert [(q.op, q.params) for q in stamped] \
            == [(q.op, q.params) for q in plan]
        assert all(q.tenant is None for q in plan)
        again = assign_tenants(plan, 3, skew=1.2, seed=5)
        assert [q.tenant for q in again] \
            == [q.tenant for q in stamped]

    def test_skew_concentrates_on_first_tenant(self):
        from repro.service.loadgen import (
            assign_tenants,
            schedule,
            workload_mix,
        )
        plan = schedule(workload_mix(("BFS",)), 300, seed=0)
        stamped = assign_tenants(plan, 4, skew=1.5, seed=0)
        counts = {}
        for q in stamped:
            counts[q.tenant] = counts.get(q.tenant, 0) + 1
        assert counts["tenant-0"] == max(counts.values())
        assert counts["tenant-0"] > len(plan) / 4
        with pytest.raises(ValueError):
            assign_tenants(plan, 0)
