"""GPU BFS: level-synchronous thread-centric kernel.

One thread per vertex per launch; threads whose ``level`` equals the
current depth expand their neighbour lists and label undiscovered
neighbours.  Degree variance within warps plus the shrinking/growing
frontier ("varying working set size", Fig. 12 discussion) produce the
moderate divergence and lower speedup the paper reports for traversals.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..simt import KernelAccum
from .base import GPUKernel, frontier_expand


class GPUBfs(GPUKernel):
    NAME = "BFS"
    MODEL = "thread-centric"

    def kernel(self, csr, coo, acc: KernelAccum, *, root: int = 0,
               **_: Any) -> dict[str, Any]:
        n = csr.n
        levels = np.full(n, -1, dtype=np.int64)
        levels[root] = 0
        cur = 0
        while True:
            acc.launch()
            active = levels == cur
            if not active.any():
                break
            threads, steps, slots = frontier_expand(acc, csr, active)
            if len(threads) == 0:
                break
            nbr = csr.col_idx[csr.row_ptr[threads] + steps]
            # neighbour level check: scattered property reads
            acc.mem_op(slots, csr.base_vprop + 4 * nbr)
            fresh = levels[nbr] < 0
            if fresh.any():
                # discovered neighbours: scattered property writes
                acc.mem_op(slots[fresh], csr.base_vprop + 4 * nbr[fresh],
                           is_write=True)
                levels[np.unique(nbr[fresh])] = cur + 1
            cur += 1
        return {"levels": levels, "depth": cur,
                "visited": int((levels >= 0).sum())}
