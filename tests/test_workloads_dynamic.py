"""Correctness tests for the dynamic-graph workloads and Gibbs."""

import numpy as np
import pytest

from repro import workloads as W
from repro.bayes import gibbs_sample, moral_edges, munin_like
from repro.core.graph import PropertyGraph
from repro.core.trace import Tracer
from repro.workloads import (
    build_bn_graph,
    common_edge_schema,
    common_vertex_schema,
)


def empty_graph():
    return PropertyGraph(common_vertex_schema(), common_edge_schema())


class TestGCons:
    def test_builds_requested_graph(self, small_spec):
        g = empty_graph()
        res = W.run("GCons", g, n_vertices=small_spec.n,
                    edges=small_spec.edges)
        assert res.outputs["n_vertices"] == small_spec.n
        assert res.outputs["n_edges"] == small_spec.m
        assert g.num_edges == small_spec.m

    def test_duplicates_skipped(self):
        g = empty_graph()
        res = W.run("GCons", g, n_vertices=3,
                    edges=np.array([[0, 1], [0, 1], [1, 2]]))
        assert res.outputs["n_edges"] == 2

    def test_requires_empty_graph(self):
        g = empty_graph()
        g.add_vertex(0)
        with pytest.raises(ValueError):
            W.run("GCons", g, n_vertices=2, edges=np.array([[0, 1]]))

    def test_properties_initialized(self):
        g = empty_graph()
        W.run("GCons", g, n_vertices=2, edges=np.array([[0, 1]]))
        assert g.vget(0, "level") == 0
        assert g.eget(g.find_edge(0, 1), "weight") == 1.0


class TestGUp:
    def test_explicit_victims(self, small_spec):
        from tests.conftest import build
        g = build(small_spec)
        before_v, before_e = g.num_vertices, g.num_edges
        res = W.run("GUp", g, victims=[0, 1, 2])
        assert res.outputs["deleted_vertices"] == 3
        assert g.num_vertices == before_v - 3
        assert g.num_edges == before_e - res.outputs["deleted_edges"]
        for v in (0, 1, 2):
            assert v not in g

    def test_fraction_sampling(self, small_spec):
        from tests.conftest import build
        g = build(small_spec)
        res = W.run("GUp", g, fraction=0.25, seed=3)
        assert res.outputs["deleted_vertices"] == int(small_spec.n * 0.25)

    def test_missing_victims_skipped(self, small_spec):
        from tests.conftest import build
        g = build(small_spec)
        res = W.run("GUp", g, victims=[10 ** 6, 0])
        assert res.outputs["deleted_vertices"] == 1

    def test_bad_fraction(self, small_spec):
        from tests.conftest import build
        g = build(small_spec)
        with pytest.raises(ValueError):
            W.run("GUp", g, fraction=0.0)

    def test_remaining_graph_consistent(self, small_spec):
        from tests.conftest import build
        g = build(small_spec)
        W.run("GUp", g, fraction=0.3, seed=1)
        arcs = sum(len(g.find_vertex(v).out) for v in g.vertex_ids())
        assert arcs == g.num_edges
        for vid in g.vertex_ids():
            for dst in g.find_vertex(vid).out:
                assert dst in g


class TestTMorph:
    def _dag_graph(self, dag_edges, n):
        g = empty_graph()
        for v in range(n):
            g.add_vertex(v)
        for s, d in dag_edges:
            g.add_edge(s, d)
        return g

    def test_v_structure_married(self):
        g = self._dag_graph([(0, 2), (1, 2)], 3)
        res = W.run("TMorph", g)
        assert res.outputs["moral_edges"] == {(0, 1), (0, 2), (1, 2)}
        assert res.outputs["marriages"] == 1

    def test_matches_reference_on_random_dag(self, tiny_spec):
        dag = [(min(s, d), max(s, d)) for s, d in tiny_spec.edges
               if s != d]
        dag = list(dict.fromkeys(dag))
        g = self._dag_graph(dag, tiny_spec.n)
        res = W.run("TMorph", g)
        assert res.outputs["moral_edges"] == moral_edges(tiny_spec.n, dag)

    def test_on_bayes_network_dag(self):
        bn = munin_like(n_vertices=80, n_edges=110, target_params=2000,
                        seed=4)
        g = self._dag_graph(bn.edges(), bn.n)
        res = W.run("TMorph", g)
        assert res.outputs["moral_edges"] == moral_edges(bn.n, bn.edges())

    def test_moral_graph_is_undirected(self):
        g = self._dag_graph([(0, 2), (1, 2)], 3)
        res = W.run("TMorph", g)
        moral = res.outputs["moral_graph"]
        assert moral.has_edge(2, 0) and moral.has_edge(0, 2)

    def test_source_graph_unmodified(self):
        g = self._dag_graph([(0, 2), (1, 2)], 3)
        W.run("TMorph", g)
        assert g.num_edges == 2
        assert not g.has_edge(0, 1)


class TestGibbs:
    def test_matches_reference_sampler(self):
        bn = munin_like(n_vertices=50, n_edges=65, target_params=600,
                        seed=2)
        g = build_bn_graph(bn)
        res = W.run("Gibbs", g, bn=bn, n_sweeps=25, burn_in=5, seed=7)
        _, ref = gibbs_sample(bn, n_sweeps=25, burn_in=5, seed=7)
        for a, b in zip(res.outputs["marginals"], ref):
            assert np.array_equal(a, b)

    def test_evidence_clamped(self):
        bn = munin_like(n_vertices=30, n_edges=40, target_params=300,
                        seed=1)
        g = build_bn_graph(bn)
        res = W.run("Gibbs", g, bn=bn, n_sweeps=10, burn_in=2, seed=0,
                    evidence={0: 0})
        assert res.outputs["state"][0] == 0
        assert res.outputs["marginals"][0][0] == pytest.approx(1.0)

    def test_burn_in_validation(self):
        bn = munin_like(n_vertices=20, n_edges=25, target_params=200,
                        seed=0)
        g = build_bn_graph(bn)
        with pytest.raises(ValueError):
            W.run("Gibbs", g, bn=bn, n_sweeps=5, burn_in=5)

    def test_state_property_updated(self):
        bn = munin_like(n_vertices=20, n_edges=25, target_params=200,
                        seed=0)
        g = build_bn_graph(bn)
        res = W.run("Gibbs", g, bn=bn, n_sweeps=4, burn_in=1, seed=3)
        for v in range(bn.n):
            assert g.vget(v, "state") == res.outputs["state"][v]

    def test_traced_run_compprop_signature(self):
        bn = munin_like(n_vertices=40, n_edges=55, target_params=600,
                        seed=3)
        g = build_bn_graph(bn)
        t = Tracer()
        W.run("Gibbs", g, tracer=t, bn=bn, n_sweeps=4, burn_in=1)
        ft = t.freeze()
        assert ft.n_accesses > 0
        # payload (CPT) traffic dominates vertex-struct traffic
        from repro.core import trace as T
        payload = (ft.acc_region == T.R_PAYLOAD).sum()
        assert payload > 0.15 * ft.n_accesses
