"""Blocking client for the graph-query service.

One TCP connection, synchronous request/response over the JSON-lines
protocol.  Server-side failures come back as raised exceptions carrying
the wire taxonomy: :class:`~repro.core.errors.AdmissionRejected` for
backpressure, :class:`~repro.core.errors.ProtocolError` for framing
violations, :class:`~repro.core.errors.RemoteError` (with ``kind``
preserved — ``crash``, ``timeout``, ``bad-request`` ...) for everything
else.  A client is single-threaded by design; the load generator opens
one per worker.

``timeout_s`` bounds every request's *whole round trip* — connect, send,
and however many ``recv`` calls the response takes.  The socket timeout
is re-armed with the remaining budget before each blocking operation, so
a peer that dribbles one byte per interval (slow-loris) cannot hold a
request open forever; when the budget runs out the request fails with a
typed :class:`~repro.core.errors.DeadlineExceeded` (stage ``client``)
and the connection — possibly holding a half-read response — is dropped
so the next request starts on a clean stream.

``deadline_s`` on :meth:`request` additionally *propagates* the budget:
the frame carries an absolute deadline the server and router use to shed
work this client will no longer wait for.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from ..core.errors import DeadlineExceeded, ProtocolError, VersionMismatch
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_request,
    payload_to_error,
)

DEFAULT_PORT = 7421

_RECV_CHUNK = 1 << 16


class ServiceClient:
    """Synchronous connection to a :class:`~repro.service.server.GraphService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 *, timeout_s: float | None = 300.0,
                 tenant: str | None = None):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        #: optional tenant identity stamped on every request frame —
        #: ``None`` keeps the frames byte-identical to a pre-tenancy
        #: client's
        self.tenant = tenant
        self._sock: socket.socket | None = None
        self._buf = bytearray()
        self._seq = 0

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s)
            self._buf.clear()
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._buf.clear()

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- deadline-bounded transport -------------------------------------------

    def _arm(self, deadline: float | None, budget_s: float,
             t0: float) -> None:
        """Set the socket timeout to the remaining budget, raising the
        typed deadline error when it is already spent."""
        if deadline is None:
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            self.close()
            raise DeadlineExceeded("client", time.monotonic() - t0,
                                   budget_s)
        self._sock.settimeout(remaining)

    def _read_frame(self, deadline: float | None, budget_s: float,
                    t0: float) -> bytes:
        """One ``\\n``-terminated line, re-arming the timeout per recv."""
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._buf[:nl + 1])
                del self._buf[:nl + 1]
                return line
            if len(self._buf) > MAX_FRAME_BYTES:
                self.close()
                raise ProtocolError(
                    f"response frame exceeds {MAX_FRAME_BYTES} bytes")
            self._arm(deadline, budget_s, t0)
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                self.close()
                raise DeadlineExceeded(
                    "client", time.monotonic() - t0, budget_s) from None
            if not chunk:
                self.close()
                if self._buf:
                    raise ProtocolError("truncated response frame")
                raise ProtocolError("connection closed before response")
            self._buf.extend(chunk)

    # -- request/response ----------------------------------------------------

    def request(self, op: str, *, deadline_s: float | None = None,
                **params: Any) -> Any:
        """Send one request, block for its response, return the result.

        Raises the rehydrated typed error if the server answered with a
        failure frame, :class:`ProtocolError` if the connection died or
        the response could not be decoded, or
        :class:`~repro.core.errors.DeadlineExceeded` when the round trip
        outlives the budget (``deadline_s`` if given, else the client's
        ``timeout_s``).  ``deadline_s`` also rides the wire as an
        absolute deadline for downstream shedding.
        """
        t0 = time.monotonic()
        budget = deadline_s if deadline_s is not None else self.timeout_s
        deadline = t0 + budget if budget is not None else None
        wire_deadline = (time.time() + deadline_s
                         if deadline_s is not None else None)
        try:
            self.connect()
        except socket.timeout:
            raise DeadlineExceeded("client", time.monotonic() - t0,
                                   budget) from None
        self._seq += 1
        req_id = f"c{self._seq}"
        payload = encode_request(op, req_id, params,
                                 deadline=wire_deadline,
                                 tenant=self.tenant)
        try:
            self._arm(deadline, budget, t0)
            self._sock.sendall(payload)
        except socket.timeout:
            self.close()
            raise DeadlineExceeded("client", time.monotonic() - t0,
                                   budget) from None
        line = self._read_frame(deadline, budget, t0)
        # decode_frame raises VersionMismatch (a typed ProtocolError
        # subclass carrying both versions) when the server answers in a
        # protocol release this client does not speak — distinct from a
        # garbage/truncation decode failure, so callers can report "the
        # server is a different version" precisely
        frame = decode_frame(line)
        if frame.get("id") not in (req_id, None):
            raise ProtocolError(f"response id {frame.get('id')!r} does not "
                                f"match request id {req_id!r}")
        if frame.get("ok"):
            return frame.get("result")
        error = frame.get("error")
        if not isinstance(error, dict):
            raise ProtocolError(f"malformed failure frame: {frame!r}")
        raise payload_to_error(error)

    # -- convenience ---------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Liveness + version handshake.

        Raises :class:`~repro.core.errors.VersionMismatch` when the
        server *reports* a protocol release other than ours even though
        the frame itself decoded (a forward-compatible server answering
        a downlevel client in the client's framing).
        """
        result = self.request("ping")
        theirs = (result or {}).get("protocol")
        if theirs != PROTOCOL_VERSION:
            raise VersionMismatch(PROTOCOL_VERSION, theirs)
        return result

    def health(self) -> dict[str, Any]:
        return self.request("health")

    def shard_info(self) -> dict[str, Any]:
        return self.request("shard_info")

    def workloads(self) -> list[dict[str, Any]]:
        return self.request("workloads")

    def datasets(self) -> list[dict[str, Any]]:
        return self.request("datasets")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def run(self, workload: str, dataset: str = "ldbc", *,
            scale: float = 0.25, seed: int = 0, machine: str = "scaled",
            gpu: bool = False,
            deadline_s: float | None = None) -> dict[str, Any]:
        return self.request("run", deadline_s=deadline_s,
                            workload=workload, dataset=dataset,
                            scale=scale, seed=seed, machine=machine,
                            gpu=gpu)

    def characterize(self, workload: str, dataset: str = "ldbc", *,
                     scale: float = 0.25, seed: int = 0,
                     machine: str = "scaled",
                     gpu: bool = False,
                     deadline_s: float | None = None) -> dict[str, Any]:
        return self.request("characterize", deadline_s=deadline_s,
                            workload=workload,
                            dataset=dataset, scale=scale, seed=seed,
                            machine=machine, gpu=gpu)

    def mutate(self, dataset: str, ops: list[dict[str, Any]], *,
               scale: float = 0.05, seed: int = 0, strict: bool = False,
               deadline_s: float | None = None) -> dict[str, Any]:
        """Apply one atomic mutation batch; returns the new version."""
        return self.request("mutate", deadline_s=deadline_s,
                            dataset=dataset, scale=scale, seed=seed,
                            ops=ops, strict=strict)

    def query_lang(self, q: str, *,
                   deadline_s: float | None = None) -> dict[str, Any]:
        """Execute one pipeline-DSL query (``from twitter | ...``);
        returns the result table plus the plan digest that served it."""
        return self.request("query", deadline_s=deadline_s, q=q)

    def explain(self, q: str, *,
                deadline_s: float | None = None) -> dict[str, Any]:
        """Plan a pipeline-DSL query without executing it; returns the
        physical plan with per-stage cost estimates."""
        return self.request("explain", deadline_s=deadline_s, q=q)

    def dyn_query(self, workload: str, dataset: str = "ldbc", *,
                  root: int = 0, scale: float = 0.05, seed: int = 0,
                  deadline_s: float | None = None) -> dict[str, Any]:
        """Query the mutable graph; the response carries the snapshot
        ``version`` it answers at."""
        return self.request("dyn_query", deadline_s=deadline_s,
                            workload=workload, dataset=dataset,
                            root=root, scale=scale, seed=seed)
