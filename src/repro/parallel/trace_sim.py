"""Trace-driven multicore cache simulation.

The analytical projection in :mod:`repro.parallel.multicore` answers "how
fast", but the paper's pinned-thread runs also change *cache behaviour*:
each core keeps private L1/L2 slices of the working set while all cores
contend for the shared L3 (Table 6's 20 MB LLC).  This module replays a
workload trace as ``p`` interleaved threads — each executing a contiguous
slice of the work — through private L1/L2 hierarchies and one shared L3,
quantifying:

* the private-cache benefit (each core's slice is smaller than the whole),
* shared-LLC contention (interleaved miss streams evict each other).

Used by the multicore-contention ablation bench; the single-core case
(``p=1``) reduces exactly to :class:`~repro.arch.hierarchy.MemoryHierarchy`
(tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.cache import Cache, CacheStats
from ..arch.machine import MachineConfig
from ..core.trace import FrozenTrace


@dataclass
class MulticoreCacheResult:
    """Per-level aggregate behaviour of the p-core replay."""

    p: int
    l1: CacheStats            # summed over cores
    l2: CacheStats            # summed over cores
    l3: CacheStats            # the shared LLC
    per_core_accesses: list[int]

    def l3_miss_rate(self) -> float:
        return self.l3.miss_rate

    def mpki(self, n_instrs: int) -> dict[str, float]:
        return {"L1D": self.l1.mpki(n_instrs),
                "L2": self.l2.mpki(n_instrs),
                "L3": self.l3.mpki(n_instrs)}


def _chunk_owners(n: int, p: int, chunk: int) -> np.ndarray:
    """Owner core of each access: contiguous work chunks dealt round-robin
    (the block-cyclic schedule of a pinned OpenMP loop)."""
    return (np.arange(n) // chunk) % p


def simulate_multicore(trace: FrozenTrace, machine: MachineConfig,
                       p: int | None = None,
                       chunk: int = 256) -> MulticoreCacheResult:
    """Replay ``trace`` as ``p`` threads with private L1/L2 + shared L3.

    The access stream is split block-cyclically into per-core substreams
    (approximating a parallel loop's work distribution); private levels
    see only their core's stream, and the shared L3 sees the cores' miss
    streams interleaved chunk by chunk — the eviction interleaving that
    causes LLC contention.
    """
    if p is None:
        p = machine.n_cores
    if p <= 0:
        raise ValueError("p must be positive")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    addrs = trace.addrs
    n = len(addrs)
    agg_l1 = CacheStats("L1D")
    agg_l2 = CacheStats("L2")
    l3 = Cache(machine.l3)
    if n == 0:
        return MulticoreCacheResult(p, agg_l1, agg_l2, l3.stats, [0] * p)
    owners = _chunk_owners(n, p, chunk)
    # per-core private simulation, collecting L2-miss positions
    miss_positions: list[np.ndarray] = []
    per_core_accesses: list[int] = []
    for core in range(p):
        idx = np.flatnonzero(owners == core)
        per_core_accesses.append(len(idx))
        if len(idx) == 0:
            continue
        sub = addrs[idx]
        l1 = Cache(machine.l1d)
        m1 = l1.simulate(sub)
        l2 = Cache(machine.l2)
        pos1 = idx[m1]
        m2 = l2.simulate(addrs[pos1]) if len(pos1) else np.zeros(0, bool)
        for agg, st in ((agg_l1, l1.stats), (agg_l2, l2.stats)):
            agg.accesses += st.accesses
            agg.misses += st.misses
            agg.read_misses += st.read_misses
            agg.write_misses += st.write_misses
        miss_positions.append(pos1[m2])
    # shared L3 sees the cores' miss streams in global program order
    # (the block-cyclic schedule interleaves them chunk by chunk)
    if miss_positions:
        merged = np.sort(np.concatenate(miss_positions))
        l3.simulate(addrs[merged])
    return MulticoreCacheResult(p, agg_l1, agg_l2, l3.stats,
                                per_core_accesses)


def llc_contention(trace: FrozenTrace, machine: MachineConfig,
                   p: int | None = None) -> float:
    """Shared-LLC contention factor: p-core L3 misses / 1-core L3 misses.

    > 1 means the interleaved working sets evict each other (the
    multicore tax on Fig. 7's already-poor L3 behaviour).
    """
    solo = simulate_multicore(trace, machine, p=1)
    multi = simulate_multicore(trace, machine, p=p)
    if solo.l3.misses == 0:
        return 1.0
    return multi.l3.misses / solo.l3.misses
