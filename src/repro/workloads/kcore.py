"""kCore — k-core decomposition (topological analytics, CompStruct).

Matula & Beck's smallest-last peeling (the paper's stated algorithm):
repeatedly remove the minimum-degree vertex using O(1) bucket updates; the
removal order yields every vertex's core number.  The degree-bucket arrays
are hot, but each peel walks the victim's scattered neighbour lists — the
long dependent-load chains that give kCore its >90 % backend-stall share
(Fig. 5).
"""

from __future__ import annotations

from typing import Any

from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from .base import Workload

ENTRY = 8


class KCore(Workload):
    """Core number per vertex (undirected view: out- plus in-neighbours),
    written to the ``core`` property."""

    NAME = "kCore"
    CTYPE = ComputationType.COMP_STRUCT
    CATEGORY = WorkloadCategory.ANALYTICS
    HAS_GPU = True

    def kernel(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_shift = t.register_branch_site()
        # undirected adjacency snapshot via the block scan primitives
        # (whole lists are consumed, so the bulk API applies)
        ids = sorted(g.vertex_ids())
        adj: dict[int, set[int]] = {vid: set() for vid in ids}
        for v in g.scan_vertices():
            for dst in g.neighbor_ids(v):
                t.i(2)
                adj[v.vid].add(dst)
                adj[dst].add(v.vid)
        degree = {vid: len(adj[vid]) for vid in ids}
        maxdeg = max(degree.values(), default=0)
        # bucket arrays on the sim heap (Matula-Beck bookkeeping)
        bucket_base = g.alloc.alloc_array(maxdeg + 1, ENTRY, tag="kcore_bkt")
        pos_base = g.alloc.alloc_array(len(ids) + 1, ENTRY, tag="kcore_pos")
        buckets: list[set[int]] = [set() for _ in range(maxdeg + 1)]
        for vid in ids:
            buckets[degree[vid]].add(vid)
            t.i(2)
            t.w(bucket_base + degree[vid] * ENTRY)
        core: dict[int, int] = {}
        k = 0
        removed: set[int] = set()
        for _ in range(len(ids)):
            # find the lowest non-empty bucket
            d = 0
            while not buckets[d]:
                t.i(2)
                t.r(bucket_base + d * ENTRY)
                d += 1
            t.br(site_shift, d > k)
            k = max(k, d)
            vid = min(buckets[d])        # deterministic tie-break
            buckets[d].discard(vid)
            t.i(4)
            t.w(bucket_base + d * ENTRY)
            core[vid] = k
            removed.add(vid)
            v = g.find_vertex(vid)
            g.vset(v, "core", k)
            for u in adj[vid]:
                t.i(5)
                if u in removed:
                    continue
                du = degree[u]
                buckets[du].discard(u)
                degree[u] = du - 1
                buckets[du - 1].add(u)
                t.w(bucket_base + du * ENTRY)
                t.w(pos_base + (u % (len(ids) + 1)) * ENTRY)
                # touch the neighbour's struct (degree update readback)
                w = g.find_vertex(u)
                t.r(w.addr + 8)
        return {"core": core, "max_core": k}

    @staticmethod
    def reference(spec) -> dict[int, int]:
        """networkx core numbers on the undirected simple view."""
        import networkx as nx
        und = nx.Graph(spec.nx())
        und.remove_edges_from(nx.selfloop_edges(und))
        return nx.core_number(und)
