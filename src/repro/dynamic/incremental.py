"""Incremental kernels: O(delta) maintenance of hot query results.

A batch kernel answers a query by touching the whole graph; an
incremental kernel keeps the *answer* warm and repairs it per mutation
batch, touching only what the delta could have changed:

* :class:`IncrementalBFS` maintains shortest-path depths from a fixed
  root (the ``levels`` output of the batch BFS).  Arc inserts relax a
  multi-source frontier; arc deletes run the classic two-phase repair —
  cascade out vertices whose depth lost its support, then re-reach the
  orphaned region from the surviving boundary.
* :class:`IncrementalCComp` maintains connected-component labels over
  the undirected view (the ``comp``/``n_components`` outputs of the
  batch CComp).  Inserts are component merges (small-into-large, so a
  merge costs the smaller side); deletes use a bidirectional
  alternating search to decide "still connected?" in time proportional
  to the *smaller* side of any actual split — the common no-split case
  exits as soon as the two frontiers meet.

Both kernels fall back to a full recompute when the delta crosses
``recompute_fraction`` of the graph (repair work would exceed the
recompute), when their synced version fell out of the store's retention
window, or when the root vanishes.  Equivalence with the batch kernels
after every commit is enforced by test (``tests/test_dynamic.py``), so
"incremental" is an optimization, never a different answer.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..core.errors import SnapshotExpired
from .store import Delta, Snapshot, SnapshotStore

#: Delta size (fraction of live arcs) beyond which repair gives way to
#: recompute.
DEFAULT_RECOMPUTE_FRACTION = 0.25

_INF = float("inf")


@dataclass
class KernelStats:
    refreshes: int = 0
    incremental_batches: int = 0
    recomputes: int = 0
    arcs_applied: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"refreshes": self.refreshes,
                "incremental_batches": self.incremental_batches,
                "recomputes": self.recomputes,
                "arcs_applied": self.arcs_applied}


class _IncrementalKernel:
    """Shared refresh loop: sync the maintained result to the store
    head, delta by delta, falling back to recompute when the chain is
    gone or oversized."""

    def __init__(self, store: SnapshotStore, *,
                 recompute_fraction: float = DEFAULT_RECOMPUTE_FRACTION):
        if not 0 < recompute_fraction <= 1:
            raise ValueError("recompute_fraction must be in (0, 1]")
        self.store = store
        self.recompute_fraction = recompute_fraction
        self.version: int | None = None
        self.stats = KernelStats()

    def refresh(self) -> str:
        """Bring the result to the current head; returns how it was
        served: ``"fresh"`` (already synced), ``"incremental"``, or
        ``"recompute"``."""
        self.stats.refreshes += 1
        with self.store.snapshot() as snap:
            target = snap.version
            if self.version == target:
                return "fresh"
            if self.version is None:
                self._recompute(snap)
                self.stats.recomputes += 1
                self.version = target
                return "recompute"
            try:
                deltas = self.store.deltas_since(self.version)
            except SnapshotExpired:
                deltas = None
            if deltas is not None:
                # the chain may end past our pinned snapshot if a
                # writer raced in; clamp to the pinned version so the
                # result matches what this refresh claims
                deltas = [d for d in deltas if d.version <= target]
            size = sum(d.size for d in deltas) if deltas is not None \
                else None
            # store.n_arcs is the maintained alive counter (O(1));
            # snap.n_arcs would re-scan every span list per refresh,
            # swamping the O(delta) apply.  The snapshot is pinned at
            # the head, so the two agree.
            budget = self.recompute_fraction * max(64, self.store.n_arcs)
            if deltas is None or size > budget:
                self._recompute(snap)
                self.stats.recomputes += 1
                self.version = target
                return "recompute"
            for d in deltas:
                with self.store.snapshot(d.version) as at:
                    self._apply(at, d)
                self.stats.incremental_batches += 1
                self.stats.arcs_applied += (len(d.added_arcs)
                                            + len(d.removed_arcs))
            self.version = target
            return "incremental"

    # subclass interface
    def _recompute(self, snap: Snapshot) -> None:
        raise NotImplementedError

    def _apply(self, snap: Snapshot, delta: Delta) -> None:
        raise NotImplementedError

    def outputs(self) -> dict[str, Any]:
        raise NotImplementedError


class IncrementalBFS(_IncrementalKernel):
    """Maintained BFS depths from ``root`` (unit weights, directed over
    stored arcs — which is the undirected view when the store holds
    both arcs)."""

    def __init__(self, store: SnapshotStore, root: int = 0, **kw: Any):
        super().__init__(store, **kw)
        self.root = root
        self.dist: dict[int, int] = {}

    def outputs(self) -> dict[str, Any]:
        return {"levels": dict(self.dist), "visited": len(self.dist),
                "root": self.root}

    def _recompute(self, snap: Snapshot) -> None:
        self.dist = {}
        if not snap.has_vertex(self.root):
            return
        adj = snap.adjacency()
        dist = {self.root: 0}
        frontier = deque([self.root])
        while frontier:
            u = frontier.popleft()
            du = dist[u]
            for v in adj.get(u, ()):
                if v not in dist:
                    dist[v] = du + 1
                    frontier.append(v)
        self.dist = dist

    def _apply(self, snap: Snapshot, delta: Delta) -> None:
        if not snap.has_vertex(self.root):
            self.dist = {}
            return
        if self.root in delta.added_vertices or not self.dist:
            # root (re)appeared, or nothing was reachable before: the
            # reachable region may be arbitrary — recompute at this step
            self._recompute(snap)
            return
        dist = self.dist
        # phase 1: cascade out depths that lost their support.  A depth
        # d(v) is supported iff some in-neighbor sits at d(v)-1; the
        # root supports itself.
        suspects = deque()
        for u, v in delta.removed_arcs:
            if v in dist and dist[v] == dist.get(u, _INF) + 1:
                suspects.append(v)
        for vid in delta.removed_vertices:
            dist.pop(vid, None)
        orphan_seeds: set[int] = set()
        while suspects:
            v = suspects.popleft()
            if v == self.root or v not in dist:
                continue
            dv = dist[v]
            if any(dist.get(w, _INF) == dv - 1
                   for w in snap.in_neighbors(v)):
                continue
            del dist[v]
            orphan_seeds.add(v)
            for x in snap.out_neighbors(v):
                if x in dist and dist[x] == dv + 1:
                    suspects.append(x)
        # phase 2: multi-source relaxation over the post-batch graph —
        # new arcs may shorten paths, orphans may be re-reachable via
        # longer ones.  Lazy Dijkstra with unit weights; existing
        # entries only ever decrease.
        heap: list[tuple[int, int]] = []
        for u, v in delta.added_arcs:
            if u in dist and dist[u] + 1 < dist.get(v, _INF):
                heapq.heappush(heap, (dist[u] + 1, v))
        for v in orphan_seeds:
            best = min((dist[w] + 1 for w in snap.in_neighbors(v)
                        if w in dist), default=None)
            if best is not None:
                heapq.heappush(heap, (best, v))
        while heap:
            d, v = heapq.heappop(heap)
            if dist.get(v, _INF) <= d:
                continue
            dist[v] = d
            for x in snap.out_neighbors(v):
                if d + 1 < dist.get(x, _INF):
                    heapq.heappush(heap, (d + 1, x))


class IncrementalCComp(_IncrementalKernel):
    """Maintained connected-component labels (undirected view).

    Components are explicit member sets under arbitrary integer roots;
    the exported label is the minimum vertex id of the component —
    exactly what the batch CComp's ascending-order scan produces.
    """

    def __init__(self, store: SnapshotStore, **kw: Any):
        super().__init__(store, **kw)
        self.comp_of: dict[int, int] = {}      # vid -> root id
        self.members: dict[int, set[int]] = {}  # root id -> member vids
        self.label: dict[int, int] = {}        # root id -> min vid
        self._next_root = 0

    def outputs(self) -> dict[str, Any]:
        comp = {vid: self.label[root]
                for vid, root in self.comp_of.items()}
        return {"comp": comp, "n_components": len(self.members)}

    # -- component plumbing --------------------------------------------------

    def _new_component(self, vids: set[int]) -> int:
        root = self._next_root
        self._next_root += 1
        self.members[root] = vids
        self.label[root] = min(vids)
        for vid in vids:
            self.comp_of[vid] = root
        return root

    def _union(self, a: int, b: int) -> None:
        ra, rb = self.comp_of[a], self.comp_of[b]
        if ra == rb:
            return
        if len(self.members[ra]) < len(self.members[rb]):
            ra, rb = rb, ra
        small = self.members.pop(rb)
        self.members[ra].update(small)
        for vid in small:
            self.comp_of[vid] = ra
        self.label[ra] = min(self.label[ra], self.label.pop(rb))

    def _remove_vertex(self, vid: int) -> None:
        root = self.comp_of.pop(vid, None)
        if root is None:
            return
        mem = self.members[root]
        mem.discard(vid)
        if not mem:
            del self.members[root]
            del self.label[root]
        elif self.label[root] == vid:
            self.label[root] = min(mem)

    def _split_off(self, root: int, region: set[int]) -> None:
        """Detach ``region ∩ members(root)`` into its own component.

        ``region`` comes from a reachability search over the post-batch
        graph, so it may stray into *other* components via arcs added in
        the same batch — those vertices are not moved here (the
        added-arc union pass merges them afterwards if they really
        connect).
        """
        mem = self.members[root]
        side = region & mem
        if not side or side == mem:
            return
        mem -= side
        old_label = self.label[root]
        self._new_component(side)
        if old_label in side:
            self.label[root] = min(mem)

    @staticmethod
    def _still_connected(snap: Snapshot, u: int, v: int
                         ) -> set[int] | None:
        """Bidirectional alternating reachability over the undirected
        view.  Returns ``None`` when ``u`` and ``v`` are connected, else
        the full vertex set of the *smaller* side (the one whose
        frontier exhausted first)."""
        seen_u: set[int] = {u}
        seen_v: set[int] = {v}
        front_u: deque[int] = deque([u])
        front_v: deque[int] = deque([v])
        while front_u and front_v:
            # expand the side with the smaller explored set — cost is
            # bounded by the smaller component when a split is real
            if len(seen_u) <= len(seen_v):
                seen, other, front = seen_u, seen_v, front_u
            else:
                seen, other, front = seen_v, seen_u, front_v
            x = front.popleft()
            for y in snap.und_neighbors(x):
                if y in other:
                    return None
                if y not in seen:
                    seen.add(y)
                    front.append(y)
        return seen_u if not front_u else seen_v

    # -- kernel interface ----------------------------------------------------

    def _recompute(self, snap: Snapshot) -> None:
        self.comp_of = {}
        self.members = {}
        self.label = {}
        self._next_root = 0
        unvisited = set(snap.vertex_ids())
        while unvisited:
            seed = next(iter(unvisited))
            seen = {seed}
            frontier = deque([seed])
            while frontier:
                x = frontier.popleft()
                for y in snap.und_neighbors(x):
                    if y not in seen:
                        seen.add(y)
                        frontier.append(y)
            unvisited -= seen
            self._new_component(seen)

    def _apply(self, snap: Snapshot, delta: Delta) -> None:
        # deletions first: every removal can only split what already
        # exists; arcs added in this same batch are handled after, so a
        # transient over-split is immediately re-merged.
        for vid in delta.removed_vertices:
            neighbors_then = [w for w in
                              (u for u, v in delta.removed_arcs
                               if v == vid)
                              if w in self.comp_of]
            neighbors_then += [w for w in
                               (v for u, v in delta.removed_arcs
                                if u == vid)
                               if w in self.comp_of]
            self._remove_vertex(vid)
            self._resolve_splits(snap, sorted(set(neighbors_then)))
        arc_removals = [(u, v) for u, v in delta.removed_arcs
                        if u in self.comp_of and v in self.comp_of]
        for u, v in arc_removals:
            if self.comp_of.get(u) != self.comp_of.get(v):
                continue                      # an earlier split separated them
            side = self._still_connected(snap, u, v)
            if side is not None:
                self._split_off(self.comp_of[u], side)
        for vid in delta.added_vertices:
            if vid not in self.comp_of:
                self._new_component({vid})
        for u, v in delta.added_arcs:
            if u in self.comp_of and v in self.comp_of:
                self._union(u, v)

    def _resolve_splits(self, snap: Snapshot,
                        witnesses: list[int]) -> None:
        """After a vertex removal, its surviving former neighbors may
        now sit in different components: separate them pairwise."""
        for i in range(1, len(witnesses)):
            a, b = witnesses[0], witnesses[i]
            if a not in self.comp_of or b not in self.comp_of:
                continue
            if self.comp_of[a] != self.comp_of[b]:
                continue
            side = self._still_connected(snap, a, b)
            if side is not None:
                self._split_off(self.comp_of[a], side)
