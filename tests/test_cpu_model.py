"""Unit tests for the top-down CPU cycle model and machine configs."""

import numpy as np
import pytest

from repro.arch import (
    CPUModel,
    MemoryHierarchy,
    PAPER_XEON,
    SCALED_XEON,
    TEST_MACHINE,
    describe,
)
from repro.core import trace as T
from repro.core.trace import Tracer


def _trace(n_scatter=300, serial=False, seed=0):
    """Synthetic trace: scattered loads with instructions and branches."""
    rng = np.random.default_rng(seed)
    t = Tracer()
    region = T.R_NEIGHBORS if serial else T.R_VERTEX_SCAN
    for _ in range(n_scatter):
        t.enter(region)
        t.i(8)
        t.r(int(rng.integers(0, 1 << 22)) & ~7)
        t.br(T.B_EDGE_LOOP, True)
        t.leave()
    t.br(T.B_EDGE_LOOP, False)
    return t.freeze()


class TestCycleModel:
    def test_breakdown_sums_to_total(self):
        m = CPUModel(TEST_MACHINE).run(_trace())
        b = m.breakdown
        assert b.total == pytest.approx(m.cycles)
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_ipc_positive_and_bounded(self):
        m = CPUModel(TEST_MACHINE).run(_trace())
        assert 0 < m.ipc <= TEST_MACHINE.issue_width

    def test_scattered_trace_is_backend_bound(self):
        m = CPUModel(TEST_MACHINE).run(_trace())
        assert m.breakdown.fractions()["Backend"] > 0.5

    def test_serial_regions_lower_mlp(self):
        par = CPUModel(TEST_MACHINE).run(_trace(serial=False))
        ser = CPUModel(TEST_MACHINE).run(_trace(serial=True))
        assert ser.mlp <= par.mlp
        assert ser.cycles >= par.cycles

    def test_hot_trace_high_ipc(self):
        t = Tracer()
        for _ in range(500):
            t.i(8)
            t.r(64)           # always the same line
        m = CPUModel(TEST_MACHINE).run(t.freeze())
        assert m.ipc > 1.0
        assert m.breakdown.fractions()["Retiring"] > 0.5

    def test_dtlb_penalty_in_range(self):
        m = CPUModel(TEST_MACHINE).run(_trace())
        assert 0.0 <= m.dtlb_penalty < 1.0

    def test_summary_keys(self):
        s = CPUModel(TEST_MACHINE).run(_trace()).summary()
        for key in ("ipc", "l1d_mpki", "l2_mpki", "l3_mpki", "dtlb_penalty",
                    "branch_miss_rate", "icache_mpki", "cycles_backend",
                    "framework_fraction", "mlp"):
            assert key in s

    def test_deep_stack_raises_frontend(self):
        ft = _trace()
        flat = CPUModel(TEST_MACHINE).run(ft)
        deep = CPUModel(TEST_MACHINE).run(ft, stack_depth=8)
        assert (deep.breakdown.frontend > flat.breakdown.frontend)

    def test_footprint_recorded(self):
        m = CPUModel(TEST_MACHINE).run(_trace(), footprint_bytes=12345)
        assert m.footprint_bytes == 12345

    def test_empty_trace(self):
        # only the top-level region's compulsory ICache misses remain
        m = CPUModel(TEST_MACHINE).run(Tracer().freeze())
        assert m.breakdown.retiring == 0
        assert m.breakdown.backend == 0
        assert m.ipc == 0.0


class TestHierarchy:
    def test_miss_masks_nested(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 20, 2000).astype(np.uint64)
        res = MemoryHierarchy(TEST_MACHINE).simulate(addrs)
        # an L2 miss implies an L1 miss; an L3 miss implies an L2 miss
        assert not (res.l2_miss & ~res.l1_miss).any()
        assert not (res.l3_miss & ~res.l2_miss).any()

    def test_latencies_consistent(self):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 20, 2000).astype(np.uint64)
        res = MemoryHierarchy(TEST_MACHINE).simulate(addrs)
        assert (res.latency[~res.l1_miss] == 0).all()
        assert (res.latency[res.l3_miss] == TEST_MACHINE.mem_latency).all()

    def test_mpki_and_hit_rates(self):
        addrs = np.arange(0, 64 * 100, 64, dtype=np.uint64)
        res = MemoryHierarchy(TEST_MACHINE).simulate(addrs)
        m = res.mpki(100_000)
        assert m["L1D"] >= m["L2"] >= m["L3"]
        hr = res.hit_rates()
        assert all(0.0 <= v <= 1.0 for v in hr.values())


class TestMachineConfigs:
    def test_presets_valid(self):
        for mc in (SCALED_XEON, TEST_MACHINE, PAPER_XEON):
            assert mc.l1d.size < mc.l2.size < mc.l3.size
            assert mc.tlb.entries > 0
            assert mc.n_cores >= 1

    def test_describe(self):
        s = describe(SCALED_XEON)
        assert "L1D" in s and "cores" in s

    def test_scaled_l3_per_core(self):
        share = SCALED_XEON.scaled_l3_per_core()
        assert share.size <= SCALED_XEON.l3.size
        assert share.n_sets & (share.n_sets - 1) == 0
