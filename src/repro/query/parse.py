"""Hand-written lexer + recursive-descent parser for the pipeline DSL.

The grammar is small enough to read in one screen::

    pipeline  :=  source ( '|' stage )*
    source    :=  'from' IDENT arg*
    stage     :=  IDENT arg*
    arg       :=  IDENT cmp value          -- named:  root=42, depth<=3
               |  value                    -- positional:  degree, 10
    cmp       :=  '=' | '<' | '<=' | '>' | '>=' | '!='
    value     :=  NUMBER | BOOL | IDENT ( ',' IDENT )*

Every failure — garbage bytes, a truncated pipeline, a dangling
comparator — raises a typed :class:`~repro.core.errors.QueryError`
carrying the offending position; the parser never raises anything else,
so a malformed query can never crash a server (property-tested against
arbitrary input).  :func:`unparse` renders an AST back to canonical
text: ``parse(unparse(parse(s)))`` equals ``parse(s)`` for every
accepted ``s``.
"""

from __future__ import annotations

import re

from ..core.errors import QueryError
from .ast import Arg, Pipeline, Stage

#: Hard cap on query text: longer is a typo or an attack, not a query.
MAX_QUERY_CHARS = 4096

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<pipe>\|)
  | (?P<cmp><=|>=|!=|=|<|>)
  | (?P<comma>,)
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+[eE][+-]?\d+|-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
""", re.VERBOSE)


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.text!r}, {self.pos})"


def _lex(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QueryError(
                f"unexpected character {text[pos]!r}", position=pos)
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], length: int):
        self.tokens = tokens
        self.i = 0
        self.length = length          # for end-of-input positions

    def _peek(self) -> "_Token | None":
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self, expect: str) -> _Token:
        tok = self._peek()
        if tok is None:
            raise QueryError(f"truncated query: expected {expect}",
                             position=self.length)
        self.i += 1
        return tok

    def pipeline(self) -> Pipeline:
        source = self._stage(source=True)
        stages: list[Stage] = []
        while True:
            tok = self._peek()
            if tok is None:
                break
            if tok.kind != "pipe":
                raise QueryError(
                    f"expected '|' between stages, got {tok.text!r}",
                    position=tok.pos)
            self.i += 1
            stages.append(self._stage(source=False))
        return Pipeline(source=source, stages=tuple(stages))

    def _stage(self, *, source: bool) -> Stage:
        what = "'from'" if source else "a stage name"
        tok = self._next(what)
        if tok.kind != "ident":
            raise QueryError(f"expected {what}, got {tok.text!r}",
                             position=tok.pos)
        if source and tok.text != "from":
            raise QueryError(
                f"a pipeline starts with 'from <dataset>', got "
                f"{tok.text!r}", position=tok.pos)
        name = tok.text
        args: list[Arg] = []
        if source:
            ds = self._next("a dataset name")
            if ds.kind != "ident":
                raise QueryError(
                    f"expected a dataset name after 'from', got "
                    f"{ds.text!r}", position=ds.pos)
            args.append(Arg(None, "", ds.text))
        while True:
            tok = self._peek()
            if tok is None or tok.kind == "pipe":
                break
            args.append(self._arg())
        return Stage(name=name, args=tuple(args))

    def _arg(self) -> Arg:
        tok = self._next("an argument")
        if tok.kind == "number":
            return Arg(None, "", _number(tok))
        if tok.kind != "ident":
            raise QueryError(f"unexpected {tok.text!r} in argument list",
                             position=tok.pos)
        nxt = self._peek()
        if nxt is not None and nxt.kind == "cmp":
            self.i += 1
            return Arg(tok.text, nxt.text, self._value())
        if nxt is not None and nxt.kind == "comma":
            return Arg(None, "", self._ident_list(tok))
        return Arg(None, "", _bool_or_ident(tok.text))

    def _value(self):
        tok = self._next("a value")
        if tok.kind == "number":
            return _number(tok)
        if tok.kind == "ident":
            nxt = self._peek()
            if nxt is not None and nxt.kind == "comma":
                return self._ident_list(tok)
            return _bool_or_ident(tok.text)
        raise QueryError(f"expected a value, got {tok.text!r}",
                         position=tok.pos)

    def _ident_list(self, first: _Token) -> tuple[str, ...]:
        names = [first.text]
        while True:
            nxt = self._peek()
            if nxt is None or nxt.kind != "comma":
                return tuple(names)
            self.i += 1
            tok = self._next("an identifier after ','")
            if tok.kind != "ident":
                raise QueryError(
                    f"expected an identifier after ',', got {tok.text!r}",
                    position=tok.pos)
            names.append(tok.text)


def _number(tok: _Token):
    text = tok.text
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    return float(text)


def _bool_or_ident(text: str):
    if text == "true":
        return True
    if text == "false":
        return False
    return text


def parse(text: str) -> Pipeline:
    """Parse DSL text into a :class:`~repro.query.ast.Pipeline`.

    Raises :class:`~repro.core.errors.QueryError` — and only that — on
    any input the grammar does not accept.
    """
    if not isinstance(text, str):
        raise QueryError(f"query must be a string, got "
                         f"{type(text).__name__}")
    if len(text) > MAX_QUERY_CHARS:
        raise QueryError(f"query of {len(text)} chars exceeds "
                         f"{MAX_QUERY_CHARS}")
    if not text.strip():
        raise QueryError("empty query")
    tokens = _lex(text)
    parser = _Parser(tokens, len(text))
    pipeline = parser.pipeline()
    return pipeline


def unparse(pipeline: Pipeline) -> str:
    """Canonical text of a pipeline (the content-address input)."""
    return pipeline.render()
