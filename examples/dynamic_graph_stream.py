#!/usr/bin/env python
"""Dynamic graph computing: a streaming update scenario (CompDyn).

Simulates a living graph store — the situation the vertex-centric dynamic
representation exists for (Section 2): batches of inserts (GCons-style),
deletions (GUp-style), a topology morph, and analytics re-run between
batches.  Also shows the CompDyn architectural signature: construction's
bump-allocation locality vs deletion's random unlinking.

Run:  python examples/dynamic_graph_stream.py
"""

import numpy as np

from repro.arch import CPUModel, SCALED_XEON
from repro.core.graph import PropertyGraph
from repro.core.trace import Tracer
from repro.datagen import watson_gene
from repro.workloads import common_edge_schema, common_vertex_schema, run

rng = np.random.default_rng(4)
spec = watson_gene(n_vertices=1500, seed=4)
half = spec.m // 2

# --- phase 1: initial bulk load (GCons over the first half) ------------------
g = PropertyGraph(common_vertex_schema(), common_edge_schema())
t_cons = Tracer()
res = run("GCons", g, tracer=t_cons, n_vertices=spec.n,
          edges=spec.edges[:half])
print(f"loaded {res.outputs['n_vertices']} vertices, "
      f"{res.outputs['n_edges']} edges")

# --- phase 2: streaming inserts ----------------------------------------------
# bulk ingest: add_edges takes the raw (m, 2) edge block and skips the
# duplicates the feed replays — no per-edge unpacking loop needed
for batch_no, lo in enumerate(range(half, spec.m, max(half // 4, 1))):
    batch = spec.edges[lo:lo + max(half // 4, 1)]
    added = g.add_edges(batch)
    comp = run("CComp", g).outputs["n_components"]
    print(f"batch {batch_no}: +{added} edges -> {comp} components")

# --- phase 3: churn (GUp deletes a random 15 %) ------------------------------
t_up = Tracer()
res = run("GUp", g, tracer=t_up, fraction=0.15, seed=1)
print(f"\nchurn: deleted {res.outputs['deleted_vertices']} vertices and "
      f"{res.outputs['deleted_edges']} incident edges")

# --- phase 4: morph the surviving DAG into its moral graph -------------------
dag = PropertyGraph(common_vertex_schema(), common_edge_schema())
ids = sorted(g.vertex_ids())
for v in ids:
    dag.add_vertex(v)
for v in ids:
    for dst in g.find_vertex(v).out:
        if v < dst and dst in dag:
            dag.add_edge(v, dst)
morph = run("TMorph", dag)
print(f"TMorph: moral graph has {len(morph.outputs['moral_edges'])} "
      f"edges ({morph.outputs['marriages']} marriages)")

# --- the CompDyn signature (paper Fig. 7) ------------------------------------
model = CPUModel(SCALED_XEON)
m_cons = model.run(t_cons.freeze())
m_up = model.run(t_up.freeze())
print("\nCompDyn contrast (L3 MPKI):")
print(f"  GCons (immediate reuse after insertion): "
      f"{m_cons.summary()['l3_mpki']:.1f}")
print(f"  GUp   (random-order deletion):           "
      f"{m_up.summary()['l3_mpki']:.1f}")
