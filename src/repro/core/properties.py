"""Property schemas for vertices and edges.

GraphBIG's framework represents graphs as *property graphs*: user-defined
properties are associated with each vertex and edge (Section 2, "Framework").
Properties can be plain scalars (BFS level, color), or pointers to large
out-of-struct payloads (Bayesian CPTs, profile blobs).

A :class:`Schema` fixes the in-struct memory layout of the property area so
that the simulated heap (:mod:`repro.core.memmodel`) can assign a byte offset
to every property access.  This is what lets the architecture simulator see
the *same* address stream a C++ vertex-centric framework would generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .errors import SchemaError

#: Size in bytes of a property slot that stores a pointer to an
#: out-of-struct payload (CPTs, adjacency snapshots, blobs).
POINTER_SIZE = 8


@dataclass(frozen=True)
class Field:
    """One property slot in a schema.

    Parameters
    ----------
    name:
        Property name used by workloads (``g.vprop(v, "level")``).
    size:
        Size of the in-struct slot in bytes (8 for scalars/pointers).
    payload:
        If nonzero, the slot is a pointer to a separately-allocated payload
        of ``payload`` bytes (per-vertex, e.g. a CPT).  Reads/writes of
        payload elements are traced against the payload block's addresses.
    default:
        Initial Python value of the slot.
    """

    name: str
    size: int = 8
    payload: int = 0
    default: Any = None

    def __post_init__(self):
        if self.size <= 0:
            raise SchemaError(f"field {self.name!r}: size must be positive")
        if self.payload < 0:
            raise SchemaError(f"field {self.name!r}: payload must be >= 0")


class Schema:
    """Ordered collection of :class:`Field` with a fixed byte layout.

    The layout packs fields back to back with 8-byte alignment, matching the
    packed property area inside a vertex/edge struct of the vertex-centric
    representation (paper Fig. 2(c)).
    """

    __slots__ = ("fields", "offsets", "index", "nbytes")

    def __init__(self, fields: list[Field] | None = None):
        self.fields: tuple[Field, ...] = tuple(fields or ())
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in {names}")
        self.offsets: dict[str, int] = {}
        self.index: dict[str, int] = {}
        off = 0
        for i, f in enumerate(self.fields):
            aligned = (off + 7) & ~7
            self.offsets[f.name] = aligned
            self.index[f.name] = i
            off = aligned + f.size
        self.nbytes = (off + 7) & ~7

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self.index

    def slot(self, name: str) -> int:
        """Return the slot index of ``name`` (raises :class:`SchemaError`)."""
        try:
            return self.index[name]
        except KeyError:
            raise SchemaError(f"unknown property {name!r}") from None

    def offset(self, name: str) -> int:
        """Return the byte offset of ``name`` inside the property area."""
        try:
            return self.offsets[name]
        except KeyError:
            raise SchemaError(f"unknown property {name!r}") from None

    def defaults(self) -> list[Any]:
        """Fresh list of default values, one per slot."""
        return [f.default for f in self.fields]

    def extended(self, *extra: Field) -> "Schema":
        """Return a new schema with ``extra`` fields appended."""
        return Schema(list(self.fields) + list(extra))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(f.name for f in self.fields)
        return f"Schema([{names}], nbytes={self.nbytes})"


#: Schema with no properties — graphs used purely for topology.
EMPTY_SCHEMA = Schema()


@dataclass
class PropertyStats:
    """Aggregate counters of property traffic, used by the harness to
    classify a run's read/write/numeric intensity (paper Table 1)."""

    reads: int = 0
    writes: int = 0
    numeric_ops: int = 0
    payload_reads: int = 0
    payload_writes: int = 0

    def merge(self, other: "PropertyStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.numeric_ops += other.numeric_ops
        self.payload_reads += other.payload_reads
        self.payload_writes += other.payload_writes
