"""Distributed pipeline-DSL queries through the cluster router:
scatter-gather subplans merge to the exact single-node answer (every
template, before and after churn with a pinned version), typed shard
errors carry the originating shard id, and part reassignment keeps the
answer identical when a shard dies mid-topology."""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterSpec, ClusterThread
from repro.core.errors import QueryError, RemoteError
from repro.datagen.registry import scaled_vertices
from repro.dynamic import churn_ops
from repro.query import query_template_pool
from repro.service import (
    GraphService,
    PoolConfig,
    ServiceClient,
    ServiceThread,
)

DATASETS = ("twitter", "knowledge", "watson", "roadnet", "ldbc")
SCALE = 0.02
TEMPLATES = query_template_pool(DATASETS, scale=SCALE)


def _service() -> GraphService:
    return GraphService(pool_config=PoolConfig(size=2,
                                               isolation="inline"))


def _cluster(n: int = 4, **router_kwargs):
    spec = ClusterSpec.of(n, datasets=DATASETS)
    defaults = dict(attempt_timeout_s=60, fanout_timeout_s=60,
                    probe_interval_s=0.2)
    defaults.update(router_kwargs)
    return ClusterThread(spec, router_kwargs=defaults)


@pytest.fixture(scope="module")
def single_node():
    with ServiceThread(_service()) as st:
        with ServiceClient(st.host, st.port) as client:
            yield client


@pytest.fixture(scope="module")
def cluster():
    with _cluster(4) as ct:
        with ServiceClient(port=ct.router_port) as client:
            yield ct, client


class TestDistributedEquivalence:
    @pytest.mark.parametrize("q", TEMPLATES)
    def test_every_template_matches_single_node(self, q, single_node,
                                                cluster):
        _, router = cluster
        local = single_node.query_lang(q)
        dist = router.query_lang(q)
        assert dist["distributed"] is True and dist["parts"] == 4
        assert dist["table"] == local["table"]
        assert dist["plan"] == local["plan"]

    def test_explain_matches_single_node_plan(self, single_node,
                                              cluster):
        _, router = cluster
        q = f"from twitter scale={SCALE} | cc | topk comp 5"
        local = single_node.explain(q)
        dist = router.explain(q)
        assert dist["plan"] == local["plan"]
        assert dist["merge"] == local["merge"]
        assert dist["digest"] == local["digest"]
        assert dist["role"] == "router" and dist["parts"] == 4
        # deterministic for a fixed plan-cache state
        again = router.explain(q)
        assert again == {**dist, "plan_cached": True}


class TestDynamicRouting:
    def test_churned_version_pinned_answers_match(self):
        """The same churn batch applied to a standalone service and to
        the cluster's owner shard yields element-identical version-
        pinned answers — mutation state is deterministic, and the
        router's keyed routing reads the one true store."""
        dataset = "ldbc"
        ops = churn_ops(random.Random(13),
                        scaled_vertices(dataset, SCALE), 24)
        base = f"from {dataset} scale={SCALE}"
        queries = [f"{base} version=1 | cc | count",
                   f"{base} version=1 | topk degree 8",
                   f"{base} version=1 | bfs root=0 depth<=3 "
                   "| filter level<=2 | project level | limit 16"]
        with ServiceThread(_service()) as st, _cluster(4) as ct:
            with ServiceClient(st.host, st.port) as local, \
                    ServiceClient(port=ct.router_port) as router:
                a = local.mutate(dataset, ops, scale=SCALE)
                b = router.mutate(dataset, ops, scale=SCALE)
                assert a["version"] == b["version"] == 1
                for q in queries:
                    mine = local.query_lang(q)
                    theirs = router.query_lang(q)
                    assert theirs.get("distributed") is None, \
                        "dynamic queries must route keyed, not scatter"
                    assert theirs["table"] == mine["table"]
                    assert theirs["version"] == mine["version"] == 1

    def test_head_query_sees_routers_committed_write(self):
        dataset = "roadnet"
        with _cluster(4) as ct:
            with ServiceClient(port=ct.router_port) as router:
                q = f"from {dataset} scale={SCALE} dynamic=true | count"
                before = router.query_lang(q)
                router.request("add_vertex", dataset=dataset,
                               scale=SCALE, vid=10_500)
                after = router.query_lang(q)
                assert after["version"] == before["version"] + 1
                assert after["table"]["rows"][0][0] == \
                    before["table"]["rows"][0][0] + 1


class TestFailureHandling:
    def test_shard_error_carries_originating_shard(self, cluster):
        ct, router = cluster
        # the planner cannot bound-check a root against a graph it has
        # not materialized, so this fails *on the shards* — the typed
        # error must come back stamped with a real shard id
        with pytest.raises(QueryError) as exc_info:
            router.query_lang(f"from twitter scale={SCALE} "
                              "| bfs root=999999999 | count")
        assert getattr(exc_info.value, "shard", None) in ct.assignment

    def test_router_rejects_client_supplied_part(self, cluster):
        _, router = cluster
        with pytest.raises(RemoteError) as exc_info:
            router.request("query", q=f"from twitter scale={SCALE} "
                                      "| count", part=[0, 2])
        assert exc_info.value.kind == "bad-request"

    def test_parse_errors_fail_before_any_shard_traffic(self, cluster):
        _, router = cluster
        with pytest.raises(QueryError) as exc_info:
            router.query_lang("from twitter | zap")
        assert getattr(exc_info.value, "shard", None) is None

    def test_killed_shard_parts_reassign_and_answer_is_identical(self):
        q = (f"from knowledge scale={SCALE} | kcore k>=2 "
             "| topk core 12")
        with ServiceThread(_service()) as st:
            with ServiceClient(st.host, st.port) as local:
                expected = local.query_lang(q)["table"]
        with _cluster(4) as ct:
            with ServiceClient(port=ct.router_port) as router:
                victim = "shard-2"
                ct.kill_shard(victim)
                result = router.query_lang(q)
                assert result["table"] == expected
                assigned = set(result["assignments"].values())
                assert victim not in assigned
                assert len(result["assignments"]) == 4
