"""kCore — k-core decomposition (topological analytics, CompStruct).

Matula & Beck's smallest-last peeling (the paper's stated algorithm):
repeatedly remove the minimum-degree vertex using O(1) bucket updates; the
removal order yields every vertex's core number.  The degree-bucket arrays
are hot, but each peel walks the victim's scattered neighbour lists — the
long dependent-load chains that give kCore its >90 % backend-stall share
(Fig. 5).

``kernel_loop`` is the original implementation (the oracle).
``kernel_vec`` (default) runs the identical peeling untraced while
recording the per-peel event shape, then emits the whole bucket/peel
stream in one :meth:`Tracer.bulk_emit` block; the adjacency snapshot
phase reuses the block scan primitives both kernels share.  The peel
order, bucket probes and neighbour-set iteration orders are replicated
exactly, so the trace is per-element identical.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core import trace as T
from ..core.graph import V_PROP_OFF, PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from ._bulk import I64, offsets_of, ragged_arange, stack_addr_of
from .base import NullTracer, Workload

ENTRY = 8


class KCore(Workload):
    """Core number per vertex (undirected view: out- plus in-neighbours),
    written to the ``core`` property."""

    NAME = "kCore"
    CTYPE = ComputationType.COMP_STRUCT
    CATEGORY = WorkloadCategory.ANALYTICS
    HAS_GPU = True
    USE_VEC = True

    def kernel(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        if self.USE_VEC:
            return self.kernel_vec(g, t)
        return self.kernel_loop(g, t)

    def kernel_loop(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_shift = t.register_branch_site()
        # undirected adjacency snapshot via the block scan primitives
        # (whole lists are consumed, so the bulk API applies)
        ids = sorted(g.vertex_ids())
        adj: dict[int, set[int]] = {vid: set() for vid in ids}
        for v in g.scan_vertices():
            for dst in g.neighbor_ids(v):
                t.i(2)
                adj[v.vid].add(dst)
                adj[dst].add(v.vid)
        degree = {vid: len(adj[vid]) for vid in ids}
        maxdeg = max(degree.values(), default=0)
        # bucket arrays on the sim heap (Matula-Beck bookkeeping)
        bucket_base = g.alloc.alloc_array(maxdeg + 1, ENTRY, tag="kcore_bkt")
        pos_base = g.alloc.alloc_array(len(ids) + 1, ENTRY, tag="kcore_pos")
        buckets: list[set[int]] = [set() for _ in range(maxdeg + 1)]
        for vid in ids:
            buckets[degree[vid]].add(vid)
            t.i(2)
            t.w(bucket_base + degree[vid] * ENTRY)
        core: dict[int, int] = {}
        k = 0
        removed: set[int] = set()
        for _ in range(len(ids)):
            # find the lowest non-empty bucket
            d = 0
            while not buckets[d]:
                t.i(2)
                t.r(bucket_base + d * ENTRY)
                d += 1
            t.br(site_shift, d > k)
            k = max(k, d)
            vid = min(buckets[d])        # deterministic tie-break
            buckets[d].discard(vid)
            t.i(4)
            t.w(bucket_base + d * ENTRY)
            core[vid] = k
            removed.add(vid)
            v = g.find_vertex(vid)
            g.vset(v, "core", k)
            for u in adj[vid]:
                t.i(5)
                if u in removed:
                    continue
                du = degree[u]
                buckets[du].discard(u)
                degree[u] = du - 1
                buckets[du - 1].add(u)
                t.w(bucket_base + du * ENTRY)
                t.w(pos_base + (u % (len(ids) + 1)) * ENTRY)
                # touch the neighbour's struct (degree update readback)
                w = g.find_vertex(u)
                t.r(w.addr + 8)
        return {"core": core, "max_core": k}

    def kernel_vec(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_shift = t.register_branch_site()
        ids = sorted(g.vertex_ids())
        n = len(ids)
        adj: dict[int, set[int]] = {vid: set() for vid in ids}
        # adjacency snapshot: same block primitives as the loop kernel;
        # the per-target bookkeeping charge is batched into one i() call
        for v in g.scan_vertices():
            dsts = g.neighbor_ids(v)
            t.i(2 * len(dsts))
            avid = adj[v.vid]
            for dst in dsts:
                avid.add(dst)
                adj[dst].add(v.vid)
        degree = {vid: len(adj[vid]) for vid in ids}
        maxdeg = max(degree.values(), default=0)
        bucket_base = g.alloc.alloc_array(maxdeg + 1, ENTRY, tag="kcore_bkt")
        pos_base = g.alloc.alloc_array(n + 1, ENTRY, tag="kcore_pos")
        buckets: list[set[int]] = [set() for _ in range(maxdeg + 1)]
        deg0 = [degree[vid] for vid in ids]
        for vid in ids:
            buckets[degree[vid]].add(vid)
        core: dict[int, int] = {}
        k = 0
        removed: set[int] = set()
        # untraced peel with per-event recording (the bucket mutations and
        # the adj-set iteration orders are identical to the loop kernel)
        probes: list[int] = []
        shift_taken: list[bool] = []
        peel_vid: list[int] = []
        peel_k: list[int] = []
        peel_len: list[int] = []
        peel_nlive: list[int] = []
        u_all: list[int] = []
        u_live: list[bool] = []
        u_du: list[int] = []
        for _ in range(n):
            d = 0
            while not buckets[d]:
                d += 1
            probes.append(d)
            shift_taken.append(d > k)
            k = max(k, d)
            vid = min(buckets[d])
            buckets[d].discard(vid)
            core[vid] = k
            removed.add(vid)
            peel_vid.append(vid)
            peel_k.append(k)
            length = nl = 0
            for u in adj[vid]:
                length += 1
                u_all.append(u)
                if u in removed:
                    u_live.append(False)
                    u_du.append(0)
                    continue
                du = degree[u]
                buckets[du].discard(u)
                degree[u] = du - 1
                buckets[du - 1].add(u)
                u_live.append(True)
                u_du.append(du)
                nl += 1
            peel_len.append(length)
            peel_nlive.append(nl)

        cslot = g.vschema.slot("core")
        for vid, kk in core.items():
            g._v[vid].props[cslot] = kk

        if n and not isinstance(t, NullTracer):
            self._emit(g, t, ids, deg0, bucket_base, pos_base, site_shift,
                       np.asarray(probes, I64), np.asarray(shift_taken),
                       np.asarray(peel_vid, I64), np.asarray(peel_len, I64),
                       np.asarray(peel_nlive, I64), np.asarray(u_all, I64),
                       np.asarray(u_live, bool), np.asarray(u_du, I64))
        return {"core": core, "max_core": k}

    def _emit(self, g: PropertyGraph, t, ids, deg0, bucket_base, pos_base,
              site_shift, probes, shift_taken, peel_vid, peel_len,
              peel_nlive, u_all, u_live, u_du) -> None:
        """Emit the bucket-init and peel phases as one block.  Per peel:
        the empty-bucket probes, the victim's bucket write, its
        find-vertex and core write, then per *live* neighbour the two
        bucket-array writes, a find-vertex and the struct readback; stale
        neighbours only accrue instructions."""
        krid = t._cur_rid
        n, P, NLtot = len(ids), len(probes), int(u_live.sum())
        off_core = V_PROP_OFF + g.vschema.offset("core")
        ids_arr = np.asarray(ids, I64)
        vaddr_s = np.fromiter((g._v[v].addr for v in ids), I64, count=n)
        idx_s = (g._index_base
                 + 8 * (ids_arr % g._index_cap))

        def look(tbl, vids):
            return tbl[np.searchsorted(ids_arr, vids)]

        p = probes
        L, nl = peel_len, peel_nlive
        peel_of_u = np.repeat(np.arange(P, dtype=I64), L)
        j_u = ragged_arange(L)
        lb = np.zeros(len(u_all), I64)                # lives before, in peel
        if len(u_all):
            lb_g, _ = offsets_of(u_live.astype(I64))
            first_u, _ = offsets_of(L)
            lb = lb_g - lb_g[first_u][peel_of_u]

        # next peel's probe+dequeue charge accrues to this peel's last visit
        tail = np.zeros(P, I64)
        if P > 1:
            tail[:-1] = 2 * p[1:] + 4

        # --- instruction layout (absolute within the block) --------------
        ins_w = 2 * p + 27 + 5 * L + 14 * nl
        ins_st, n_ins = offsets_of(ins_w)
        ins_st = ins_st + 2 * n                        # after bucket init
        n_ins += 2 * n
        u_ins = (ins_st[peel_of_u] + 2 * p[peel_of_u] + 27
                 + 5 * j_u + 14 * lb)

        # --- access stream ----------------------------------------------
        acc_w = p + 6 + 6 * nl
        acc_st, n_acc = offsets_of(acc_w)
        acc_st = acc_st + n
        n_acc += n
        addr = np.empty(n_acc, I64)
        rw = np.zeros(n_acc, np.uint8)
        iat = np.empty(n_acc, I64)
        reg = np.full(n_acc, krid, np.uint32)
        sord = np.zeros(n_acc, I64)

        def put(pos, a, region, ioff, *, wr=False, stk=None):
            addr[pos] = a
            reg[pos] = region
            iat[pos] = ioff
            if wr:
                rw[pos] = 1
            if stk is not None:
                sord[pos] = stk

        # bucket init (sorted id order)
        bj = np.arange(n, dtype=I64)
        put(bj, bucket_base + np.asarray(deg0, I64) * ENTRY, krid,
            2 * (bj + 1), wr=True)
        # probes
        pp = np.repeat(acc_st, p) + ragged_arange(p)
        jp = ragged_arange(p)
        put(pp, bucket_base + jp * ENTRY, krid,
            np.repeat(ins_st, p) + 2 * (jp + 1))
        # victim dequeue + find + core write
        stk_st, n_stk = offsets_of(2 + nl)
        va = look(vaddr_s, peel_vid)
        hb = ins_st + 2 * p
        put(acc_st + p, bucket_base + probes * ENTRY, krid, hb + 4, wr=True)
        put(acc_st + p + 1, 0, T.R_FIND_VERTEX, hb + 18, stk=stk_st + 1)
        put(acc_st + p + 2, look(idx_s, peel_vid), T.R_FIND_VERTEX, hb + 18)
        put(acc_st + p + 3, va, T.R_FIND_VERTEX, hb + 18)
        put(acc_st + p + 4, 0, T.R_PROP_SET, hb + 27, stk=stk_st + 2)
        put(acc_st + p + 5, va + off_core, T.R_PROP_SET, hb + 27, wr=True)
        # live neighbours
        if NLtot:
            lm = u_live
            ua = acc_st[peel_of_u[lm]] + p[peel_of_u[lm]] + 6 + 6 * lb[lm]
            ui = u_ins[lm]
            uv = look(vaddr_s, u_all[lm])
            put(ua, bucket_base + u_du[lm] * ENTRY, krid, ui + 5, wr=True)
            put(ua + 1, pos_base + (u_all[lm] % (n + 1)) * ENTRY, krid,
                ui + 5, wr=True)
            put(ua + 2, 0, T.R_FIND_VERTEX, ui + 19,
                stk=stk_st[peel_of_u[lm]] + 3 + lb[lm])
            put(ua + 3, look(idx_s, u_all[lm]), T.R_FIND_VERTEX, ui + 19)
            put(ua + 4, uv, T.R_FIND_VERTEX, ui + 19)
            put(ua + 5, uv + 8, krid, ui + 19)

        stk_mask = sord > 0
        addr[stk_mask] = stack_addr_of(g._stack_base, g._sp, sord[stk_mask])
        g._sp = (g._sp + n_stk) & 3
        iat += t.n

        # --- branches: shift test + victim find + live-neighbour finds ---
        br_st, n_br = offsets_of(2 + nl)
        sites = np.empty(n_br, np.uint32)
        taken = np.empty(n_br, np.uint8)
        sites[br_st], taken[br_st] = site_shift, shift_taken
        sites[br_st + 1], taken[br_st + 1] = T.B_FIND_HIT, 1
        if NLtot:
            ub = br_st[peel_of_u[u_live]] + 2 + lb[u_live]
            sites[ub], taken[ub] = T.B_FIND_HIT, 1

        # --- region visits -----------------------------------------------
        vis_st, n_vis = offsets_of(4 + 2 * nl)
        vseq = np.empty(n_vis, np.uint32)
        vcnt = np.empty(n_vis, I64)
        vseq[vis_st], vcnt[vis_st] = T.R_FIND_VERTEX, 14
        vseq[vis_st + 1], vcnt[vis_st + 1] = krid, 0
        vseq[vis_st + 2], vcnt[vis_st + 2] = T.R_PROP_SET, 9
        vseq[vis_st + 3] = krid
        vcnt[vis_st + 3] = 5 * L + tail                # no-live default
        if NLtot:
            liv_peel = peel_of_u[u_live]
            liv_j = j_u[u_live]
            firstm = np.ones(NLtot, bool)
            firstm[1:] = liv_peel[1:] != liv_peel[:-1]
            lastm = np.ones(NLtot, bool)
            lastm[:-1] = firstm[1:]
            vcnt[vis_st[liv_peel[firstm]] + 3] = 5 * (liv_j[firstm] + 1)
            uvp = vis_st[liv_peel] + 4 + 2 * lb[u_live]
            vseq[uvp], vcnt[uvp] = T.R_FIND_VERTEX, 14
            vseq[uvp + 1] = krid
            gap = np.zeros(NLtot, I64)
            gap[:-1] = 5 * (liv_j[1:] - liv_j[:-1])
            gap[lastm] = (5 * (L[liv_peel[lastm]] - 1 - liv_j[lastm])
                          + tail[liv_peel[lastm]])
            vcnt[uvp + 1] = gap

        t.bulk_emit(addr.astype(np.uint64), rw, iat.astype(np.uint64), reg,
                    n_instrs=int(n_ins),
                    fw_instrs=23 * P + 14 * NLtot,
                    fw_accesses=5 * P + 3 * NLtot,
                    head_instrs=2 * n + 2 * int(p[0]) + 4,
                    region_seq=vseq, region_instrs=vcnt)
        t.bulk_branch_events(sites, taken)

    @staticmethod
    def reference(spec) -> dict[int, int]:
        """networkx core numbers on the undirected simple view."""
        import networkx as nx
        und = nx.Graph(spec.nx())
        und.remove_edges_from(nx.selfloop_edges(und))
        return nx.core_number(und)
