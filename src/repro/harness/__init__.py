"""Characterization harness: runs the workload x dataset matrix through
the CPU/GPU models and renders every figure's table."""

from .comptype import FIG8_METRICS, breakdown_table, fig8_table
from .export import export_all
from .framework_time import (
    PAPER_AVG_FRAMEWORK_FRACTION,
    average_fraction,
    framework_fractions,
)
from .metrics import CPU_COLUMNS, by_ctype, cpu_table, gpu_table
from .report import (
    FAILURE_COLUMNS,
    bar,
    failure_table,
    format_table,
    matrix_table,
    paper_note,
    to_csv_string,
    write_csv,
)
from .runner import (
    CPU_WORKLOADS,
    DATA_SENSITIVE_WORKLOADS,
    GPU_WORKLOAD_SET,
    Row,
    cache_stats,
    characterize,
    clear_cache,
    default_dataset,
    default_trace_store,
    gpu_speedup,
    run_cpu_workload,
    set_default_trace_store,
)
from .sensitivity import pivot, sensitivity_rows, spread

__all__ = [
    "CPU_COLUMNS", "CPU_WORKLOADS", "DATA_SENSITIVE_WORKLOADS",
    "FAILURE_COLUMNS", "FIG8_METRICS", "GPU_WORKLOAD_SET",
    "PAPER_AVG_FRAMEWORK_FRACTION",
    "Row", "average_fraction", "bar", "breakdown_table", "by_ctype",
    "cache_stats", "characterize", "clear_cache", "cpu_table",
    "default_dataset", "default_trace_store", "set_default_trace_store",
    "export_all", "failure_table",
    "fig8_table", "format_table", "framework_fractions", "gpu_speedup",
    "gpu_table", "matrix_table", "paper_note", "pivot",
    "run_cpu_workload",
    "sensitivity_rows", "spread", "to_csv_string", "write_csv",
]
