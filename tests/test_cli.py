"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "BFS"])
        assert args.workload == "BFS"
        assert args.dataset == "ldbc"
        assert args.scale == 0.25

    def test_options(self):
        args = build_parser().parse_args(
            ["characterize", "TC", "--dataset", "twitter",
             "--scale", "0.1", "--seed", "3"])
        assert args.dataset == "twitter"
        assert args.scale == 0.1
        assert args.seed == 3

    def test_matrix_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.timeout == 300.0
        assert args.retries == 2
        assert args.resume is False
        assert args.checkpoint is None
        assert args.isolation == "process"

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "repro" in out and "protocol" in out

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7421
        assert args.workers == 4
        assert args.isolation == "process"
        assert args.no_cache is False
        assert args.max_pending == 64

    def test_loadgen_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--spawn", "--requests", "80",
             "--concurrency", "8", "--no-cache", "--no-batch",
             "--isolation", "inline"])
        assert args.spawn and args.requests == 80
        assert args.no_cache and args.no_batch
        assert args.isolation == "inline"

    def test_query_ops(self):
        args = build_parser().parse_args(
            ["query", "run", "BFS", "--dataset", "roadnet",
             "--port", "9000"])
        assert args.op == "run" and args.workload == "BFS"
        assert args.port == 9000
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "frobnicate"])

    def test_matrix_resilience_flags(self):
        args = build_parser().parse_args(
            ["matrix", "--workloads", "BFS,DFS", "--datasets", "ldbc",
             "--timeout", "60", "--retries", "5", "--resume",
             "--checkpoint", "cp.jsonl", "--chaos-rate", "0.3"])
        assert args.workloads == "BFS,DFS"
        assert args.timeout == 60.0
        assert args.retries == 5
        assert args.resume is True
        assert args.checkpoint == "cp.jsonl"
        assert args.chaos_rate == 0.3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BFS" in out and "Gibbs" in out and "Brandes" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "twitter" in out and "roadnet" in out

    def test_run(self, capsys):
        assert main(["run", "DCentr", "--dataset", "roadnet",
                     "--scale", "0.05"]) == 0
        assert "dc" in capsys.readouterr().out

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "PageRank", "--scale", "0.05"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_unknown_dataset(self, capsys):
        assert main(["run", "BFS", "--dataset", "nope",
                     "--scale", "0.05"]) == 2

    def test_characterize(self, capsys):
        assert main(["characterize", "DCentr", "--dataset", "roadnet",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out and "l3_mpki" in out

    def test_gpu(self, capsys):
        assert main(["gpu", "CComp", "--dataset", "roadnet",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "bdr" in out and "read_gbs" in out

    def test_gpu_without_kernel(self, capsys):
        assert main(["gpu", "DFS", "--scale", "0.05"]) == 2

    def test_matrix_resume_requires_checkpoint(self, capsys):
        assert main(["matrix", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 13
        assert {"workload", "category", "ctype", "gpu",
                "algorithm"} <= set(rows[0])

    def test_datasets_json(self, capsys):
        assert main(["datasets", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["key"] for r in rows} == \
            {"twitter", "knowledge", "watson", "roadnet", "ldbc"}
        assert all("default_vertices" in r for r in rows)

    def test_query_without_server(self, capsys):
        # port 1 is never listening: the client reports, not tracebacks
        assert main(["query", "ping", "--port", "1"]) == 2
        assert "no service" in capsys.readouterr().err

    def test_query_requires_workload_for_run(self, capsys):
        assert main(["query", "run", "--port", "1"]) == 2
        assert "requires a workload" in capsys.readouterr().err

    def test_loadgen_spawned_end_to_end(self, capsys):
        assert main(["loadgen", "--spawn", "--isolation", "inline",
                     "--requests", "20", "--concurrency", "4",
                     "--workloads", "BFS", "--scale", "0.03",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == 20 and payload["failed"] == 0
        assert payload["throughput_rps"] > 0
        assert payload["server_stats"]["scheduler"]["submitted"] == 20

    def test_matrix_inline_sweep_and_resume(self, capsys, tmp_path):
        cp = str(tmp_path / "sweep.jsonl")
        out = str(tmp_path / "csv")
        base = ["matrix", "--workloads", "BFS,DCentr",
                "--datasets", "ldbc", "--scale", "0.03",
                "--machine", "test", "--isolation", "inline",
                "--retries", "0", "--checkpoint", cp]
        assert main(base + ["--out", out]) == 0
        text = capsys.readouterr().out
        assert "completed 2/2 cells" in text
        assert "failures.csv" not in text        # clean sweep: no failures
        assert main(base + ["--resume"]) == 0
        assert "2 resumed, 0 executed" in capsys.readouterr().out
