"""Resilient matrix sweep: the full workload x dataset characterization
with isolation, retries, checkpointing, and graceful degradation.

The sweep walks its cells in deterministic order; each cell runs through
the resilient executor.  Completed rows are journaled immediately; a cell
whose retries are exhausted becomes a :class:`CellFailure` in the result
(and a ``failure`` journal record) instead of aborting the sweep.  With
``resume=True`` every cell whose latest journal record is a successful row
is rehydrated from the checkpoint rather than re-executed — an interrupted
(or chaos-mangled) run picks up exactly where it stopped, re-running only
unfinished or failed cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.errors import CellExecutionError, RetriesExhausted
from ..obs.logs import get_logger
from ..obs.tracing import maybe_span
from .cell import Cell, failure_record, record_to_row
from .chaos import ChaosSpec
from .checkpoint import CheckpointStore
from .executor import ExecutorConfig, run_cell_resilient

log = get_logger("resilience.matrix")


@dataclass(frozen=True)
class CellFailure:
    """One cell that exhausted its attempts — reportable, not fatal."""

    cell_id: str
    workload: str
    dataset: str
    kind: str            # taxonomy tag of the *last* failure
    message: str
    attempts: int

    @classmethod
    def from_error(cls, cell: Cell, error: CellExecutionError,
                   attempts: int) -> "CellFailure":
        last = getattr(error, "last", error)
        return cls(cell_id=cell.cell_id, workload=cell.workload,
                   dataset=cell.dataset, kind=last.kind,
                   message=last.message, attempts=attempts)

    @classmethod
    def from_record(cls, rec: dict) -> "CellFailure":
        return cls(cell_id=rec["cell"], workload=rec["workload"],
                   dataset=rec["dataset"], kind=rec["failure_kind"],
                   message=rec["message"], attempts=rec["attempts"])


@dataclass
class MatrixResult:
    """Outcome of a resilient sweep: every cell accounted for."""

    rows: list = field(default_factory=list)
    failures: list[CellFailure] = field(default_factory=list)
    resumed: int = 0          # cells rehydrated from the checkpoint
    executed: int = 0         # cells actually run this invocation

    @property
    def total_cells(self) -> int:
        return len(self.rows) + len(self.failures)

    @property
    def complete(self) -> bool:
        return not self.failures


def _labelled(row, cell: Cell):
    """Relabel a sweep row's dataset with the registry key, so success
    rows and CellFailures (which only know the key) line up in one grid."""
    row.extras.setdefault("dataset_name", row.dataset)
    row.dataset = cell.dataset
    return row


def matrix_cells(workloads: Sequence[str], datasets: Sequence[str], *,
                 scale: float = 1.0, seed: int = 0,
                 machine: str = "scaled", with_gpu: bool = False,
                 gpu_workloads: Sequence[str] = (),
                 trace_store: str | None = None) -> list[Cell]:
    """The deterministic cell ordering of a sweep (dataset-major, matching
    the figure tables' row order).  ``trace_store`` (a directory path)
    lets every cell persist/replay its workload trace — a multi-machine
    sweep executes each (workload, dataset) only once."""
    return [Cell(workload=w, dataset=d, scale=scale, seed=seed,
                 machine=machine,
                 with_gpu=with_gpu and w in gpu_workloads,
                 trace_store=trace_store)
            for d in datasets for w in workloads]


def run_matrix(cells: Sequence[Cell], *,
               config: ExecutorConfig | None = None,
               chaos: ChaosSpec | None = None,
               checkpoint: CheckpointStore | None = None,
               resume: bool = False,
               sleep: Callable[[float], None] = time.sleep,
               progress: Callable[[str], None] | None = None,
               tracer=None,
               registry=None) -> MatrixResult:
    """Run every cell resiliently; never lose the sweep to one cell.

    ``resume`` requires a ``checkpoint``; without ``resume`` an existing
    journal is restarted from scratch.  ``progress`` (if given) receives a
    one-line status per cell.

    With a ``tracer`` (:class:`~repro.obs.SpanTracer`) each executed cell
    becomes a ``cell:<id>`` span whose children are its ``attempt:<n>``
    retries — export via ``to_chrome_trace()`` to see where a sweep's
    wall-time went.  With a ``registry``
    (:class:`~repro.obs.MetricsRegistry`) the sweep counts outcomes,
    retries, and failures by taxonomy kind.
    """
    config = config or ExecutorConfig()
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint store")
    done: dict[str, dict] = {}
    if checkpoint is not None:
        if resume:
            done = checkpoint.load()
        else:
            checkpoint.clear()

    m_cells = m_retries = m_faults = None
    if registry is not None:
        m_cells = registry.counter(
            "matrix_cells_total", "sweep cells by outcome",
            labels=("outcome",))
        m_retries = registry.counter(
            "matrix_retries_total",
            "extra attempts beyond the first, across all cells")
        m_faults = registry.counter(
            "matrix_faults_total", "cell failures by taxonomy kind "
            "(every failed attempt's final classification)",
            labels=("kind",))

    result = MatrixResult()
    for cell in cells:
        prior = done.get(cell.cell_id)
        if prior is not None and prior.get("kind") == "row":
            result.rows.append(_labelled(record_to_row(prior), cell))
            result.resumed += 1
            if m_cells is not None:
                m_cells.labels(outcome="resumed").inc()
            if progress:
                progress(f"{cell.cell_id}: resumed from checkpoint")
            continue
        try:
            with maybe_span(tracer, f"cell:{cell.cell_id}",
                            workload=cell.workload, dataset=cell.dataset,
                            machine=cell.machine) as span_args:
                record, attempts = run_cell_resilient(
                    cell, config=config, chaos=chaos, sleep=sleep,
                    tracer=tracer)
                span_args["attempts"] = attempts
        except (RetriesExhausted, CellExecutionError) as e:
            attempts = getattr(e, "attempts", 1)
            failure = CellFailure.from_error(cell, e, attempts)
            result.failures.append(failure)
            result.executed += 1
            if m_cells is not None:
                m_cells.labels(outcome="failed").inc()
                m_retries.inc(max(0, attempts - 1))
                m_faults.labels(kind=failure.kind).inc()
            log.warning("cell %s failed (%s) after %d attempt(s)",
                        cell.cell_id, failure.kind, attempts,
                        extra={"cell": cell.cell_id,
                               "failure_kind": failure.kind,
                               "attempts": attempts})
            if checkpoint is not None:
                checkpoint.append(failure_record(cell, e, attempts=attempts))
            if progress:
                progress(f"{cell.cell_id}: FAILED ({failure.kind}) "
                         f"after {attempts} attempt(s)")
            continue
        result.rows.append(_labelled(record_to_row(record), cell))
        result.executed += 1
        if m_cells is not None:
            m_cells.labels(outcome="ok").inc()
            m_retries.inc(max(0, attempts - 1))
        if checkpoint is not None:
            checkpoint.append(record)
        if progress:
            progress(f"{cell.cell_id}: ok ({attempts} attempt(s), "
                     f"{record.get('elapsed_s') or 0:.2f}s)")
    return result
