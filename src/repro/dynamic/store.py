"""Versioned snapshot store: copy-on-write multiversioning over the
property-graph topology.

Writers commit mutation batches against a single mutable head; every
commit produces a new integer **version** and an immutable
:class:`Delta` describing the net change.  Readers pin a
:class:`Snapshot` at any retained version and see that state forever —
snapshot isolation by construction, because nothing is overwritten:

* every vertex and arc carries **lifetime spans** ``[born, died)`` —
  a read at version ``v`` sees the record iff some span covers ``v``;
* vertex properties are **append-only histories** ``(version, value)``
  — a read at ``v`` sees the last write at or before ``v``.

This is the layered-storage idiom (a mutable head layer over immutable
history) collapsed into per-record intervals, which makes head reads
O(1) and old-version reads O(spans-per-record) instead of a layer walk.

Retention is bounded: the store keeps at most ``max_versions``
reconstructable versions behind the head (pinned snapshots extend the
window — a pin is a promise).  **Compaction** folds everything older
than the retention floor into the base: spans that died at or before
the floor are dropped, property history before the floor collapses to
its final value, and the per-version deltas below the floor are
discarded.  A reader asking for a folded version gets a typed
:class:`~repro.core.errors.SnapshotExpired`, never silently-wrong data.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..core.errors import MutationError, SnapshotExpired
from .ops import MutOp

#: Default bound on reconstructable history (versions behind head).
DEFAULT_MAX_VERSIONS = 64

_Spans = list  # list of [born, died-or-None] pairs, born ascending


@dataclass(frozen=True)
class Delta:
    """The net effect of one committed batch (version ``version``).

    Arcs are directed half-edges exactly as stored: an undirected
    store's logical edge appears as both arcs.  The delta is *net* —
    an arc added and deleted inside one batch appears in neither list —
    so incremental kernels can apply it without replaying intra-batch
    churn.
    """

    version: int
    added_vertices: tuple[int, ...] = ()
    removed_vertices: tuple[int, ...] = ()
    added_arcs: tuple[tuple[int, int], ...] = ()
    removed_arcs: tuple[tuple[int, int], ...] = ()
    props: tuple[tuple[int, str, Any], ...] = ()

    @property
    def size(self) -> int:
        return (len(self.added_vertices) + len(self.removed_vertices)
                + len(self.added_arcs) + len(self.removed_arcs)
                + len(self.props))


@dataclass
class StoreStats:
    """Lifetime counters (monotonic)."""

    commits: int = 0
    ops_applied: int = 0
    ops_skipped: int = 0
    compactions: int = 0
    spans_folded: int = 0
    snapshots_pinned: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"commits": self.commits,
                "ops_applied": self.ops_applied,
                "ops_skipped": self.ops_skipped,
                "compactions": self.compactions,
                "spans_folded": self.spans_folded,
                "snapshots_pinned": self.snapshots_pinned}


def _alive_at(spans: _Spans, v: int) -> bool:
    for born, died in reversed(spans):
        if born <= v:
            return died is None or v < died
    return False


def _alive_now(spans: _Spans) -> bool:
    return bool(spans) and spans[-1][1] is None


class SnapshotStore:
    """Multiversioned graph topology with bounded history.

    Thread-safe: commits, pins, and compaction serialize on one lock;
    snapshot reads take it per call (reads are dict probes — the lock is
    held for microseconds, never across a kernel).
    """

    def __init__(self, *, directed: bool = True,
                 max_versions: int = DEFAULT_MAX_VERSIONS,
                 clock: Callable[[], float] = time.monotonic):
        if max_versions < 1:
            raise ValueError("max_versions must be >= 1")
        self.directed = directed
        self.max_versions = max_versions
        self._clock = clock
        self._lock = threading.RLock()
        self.head = 0
        self.floor = 0
        self._head_at = clock()          # commit instant of the head
        self._vspans: dict[int, _Spans] = {}
        self._out: dict[int, dict[int, _Spans]] = {}
        self._inn: dict[int, dict[int, _Spans]] = {}
        self._props: dict[int, dict[str, list[tuple[int, Any]]]] = {}
        self._deltas: dict[int, Delta] = {}
        self._pins: dict[int, int] = {}
        self._n_alive = 0                # vertices alive at head
        self._m_alive = 0                # arcs alive at head
        self.stats = StoreStats()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_edges(cls, n_vertices: int,
                   edges: Iterable[tuple[int, int]], *,
                   directed: bool = True,
                   max_versions: int = DEFAULT_MAX_VERSIONS
                   ) -> "SnapshotStore":
        """Base load at version 0 (the un-deltaed bottom layer)."""
        store = cls(directed=directed, max_versions=max_versions)
        for vid in range(n_vertices):
            store._vspans[vid] = [[0, None]]
        store._n_alive = n_vertices
        for row in edges:
            s, d = int(row[0]), int(row[1])
            if s == d:
                continue
            store._open_arc(s, d, 0)
            if not directed:
                store._open_arc(d, s, 0)
        return store

    @classmethod
    def from_state(cls, state: dict) -> "SnapshotStore":
        """Rebuild a store from :meth:`export_state` output.

        The imported store starts at the exported head version with
        ``floor == head`` — the delta history does not travel (a
        migrated key's readers re-pin at the current version; the lag
        disclosure contract is unchanged), but every subsequent commit
        numbers *above* the exported head, so version monotonicity
        survives the move.
        """
        store = cls(
            directed=bool(state.get("directed", True)),
            max_versions=int(state.get("max_versions",
                                       DEFAULT_MAX_VERSIONS)))
        v = int(state.get("version", 0))
        store.head = store.floor = v
        for vid in state.get("vertices", ()):
            store._vspans[int(vid)] = [[v, None]]
        store._n_alive = len(store._vspans)
        # exported arcs already include both directions of an undirected
        # edge (they are the stored half-edges), so open them verbatim
        for src, dst in state.get("arcs", ()):
            store._open_arc(int(src), int(dst), v)
        for vid, name, value in state.get("props", ()):
            store._props.setdefault(int(vid), {})[str(name)] = \
                [(v, value)]
        return store

    def export_state(self) -> dict[str, Any]:
        """The head version's full state as one JSON-safe dict — the
        wire payload ``dyn_export`` ships during a live key migration.

        Only what a fresh reader can observe travels: alive vertices,
        alive arcs (as stored, so both half-edges of an undirected
        edge), each vertex's current property values, and the head
        version itself.  History below the head is deliberately left
        behind — it is exactly what compaction would fold anyway.
        """
        with self._lock:
            v = self.head
            vertices = sorted(vid for vid, spans in self._vspans.items()
                              if _alive_at(spans, v))
            arcs = sorted((src, dst)
                          for src, row in self._out.items()
                          for dst, spans in row.items()
                          if _alive_at(spans, v))
            props = []
            for vid in vertices:
                for name in sorted(self._props.get(vid, {})):
                    value, found = None, False
                    for ver, val in self._props[vid][name]:
                        if ver > v:
                            break
                        value, found = val, True
                    if found:
                        props.append([vid, name, value])
            return {"version": v, "directed": self.directed,
                    "max_versions": self.max_versions,
                    "vertices": vertices,
                    "arcs": [[s, d] for s, d in arcs],
                    "props": props}

    @classmethod
    def from_spec(cls, spec, *,
                  max_versions: int = DEFAULT_MAX_VERSIONS
                  ) -> "SnapshotStore":
        """Base load from a generated :class:`~repro.datagen.spec.
        GraphSpec` (deduped, self-loop-free by construction)."""
        return cls.from_edges(spec.n, spec.edges,
                              directed=bool(spec.directed),
                              max_versions=max_versions)

    def _open_arc(self, src: int, dst: int, version: int) -> bool:
        spans = self._out.setdefault(src, {}).get(dst)
        if spans is not None and _alive_now(spans):
            return False
        if spans is None:
            self._out[src][dst] = [[version, None]]
            self._inn.setdefault(dst, {})[src] = \
                self._out[src][dst]
        else:
            spans.append([version, None])
        self._m_alive += 1
        return True

    def _close_arc(self, src: int, dst: int, version: int) -> bool:
        spans = self._out.get(src, {}).get(dst)
        if spans is None or not _alive_now(spans):
            return False
        spans[-1][1] = version
        self._m_alive -= 1
        return True

    # -- writes --------------------------------------------------------------

    def commit(self, ops: Iterable[MutOp], *,
               strict: bool = False) -> tuple[int, Delta, int]:
        """Apply one batch atomically; returns ``(version, delta,
        skipped)``.

        Lenient mode (the default) skips operations that cannot apply —
        adding a present edge, deleting an absent vertex — and counts
        them; ``strict`` raises :class:`~repro.core.errors.
        MutationError` on the first such op instead (the batch is still
        atomic: nothing committed).  The returned delta is the *net*
        change, suitable for O(delta) incremental kernel maintenance.
        """
        ops = list(ops)
        with self._lock:
            v = self.head + 1
            # net-effect tracking: first-touch records the pre-batch
            # state, the structures themselves hold the post-batch state
            vert_before: dict[int, bool] = {}
            arc_before: dict[tuple[int, int], bool] = {}
            prop_last: dict[tuple[int, str], Any] = {}
            try:
                skipped = self._apply_ops(ops, v, strict, vert_before,
                                          arc_before, prop_last)
            except MutationError:
                self._rollback(v, vert_before, arc_before, prop_last)
                raise
            delta = Delta(
                version=v,
                added_vertices=tuple(sorted(
                    vid for vid, was in vert_before.items()
                    if not was and _alive_now(self._vspans.get(vid, [])))),
                removed_vertices=tuple(sorted(
                    vid for vid, was in vert_before.items()
                    if was and not _alive_now(self._vspans.get(vid, [])))),
                added_arcs=tuple(sorted(
                    arc for arc, was in arc_before.items()
                    if not was and _alive_now(
                        self._out.get(arc[0], {}).get(arc[1], [])))),
                removed_arcs=tuple(sorted(
                    arc for arc, was in arc_before.items()
                    if was and not _alive_now(
                        self._out.get(arc[0], {}).get(arc[1], [])))),
                props=tuple((vid, name, value) for (vid, name), value
                            in prop_last.items()))
            self.head = v
            self._head_at = self._clock()
            self._deltas[v] = delta
            self.stats.commits += 1
            self.stats.ops_applied += len(ops) - skipped
            self.stats.ops_skipped += skipped
            self._maybe_compact()
            return v, delta, skipped

    def _apply_ops(self, ops: list[MutOp], v: int, strict: bool,
                   vert_before: dict, arc_before: dict,
                   prop_last: dict) -> int:
        skipped = 0

        def note_vertex(vid: int) -> None:
            if vid not in vert_before:
                vert_before[vid] = _alive_at(
                    self._vspans.get(vid, []), v - 1)

        def note_arc(s: int, d: int) -> None:
            if (s, d) not in arc_before:
                arc_before[(s, d)] = _alive_at(
                    self._out.get(s, {}).get(d, []), v - 1)

        for op in ops:
            if op.kind == "add_vertex":
                spans = self._vspans.get(op.src)
                if spans is not None and _alive_now(spans):
                    if strict:
                        raise MutationError(
                            "add_vertex", f"vertex {op.src} exists")
                    skipped += 1
                    continue
                note_vertex(op.src)
                if spans is None:
                    self._vspans[op.src] = [[v, None]]
                else:
                    spans.append([v, None])
                self._n_alive += 1
            elif op.kind == "del_vertex":
                spans = self._vspans.get(op.src)
                if spans is None or not _alive_now(spans):
                    if strict:
                        raise MutationError(
                            "del_vertex", f"vertex {op.src} not found")
                    skipped += 1
                    continue
                note_vertex(op.src)
                # incident arcs die with the vertex — each recorded so
                # the delta is self-contained for incremental kernels
                for dst, aspans in self._out.get(op.src, {}).items():
                    if _alive_now(aspans):
                        note_arc(op.src, dst)
                        self._close_arc(op.src, dst, v)
                for src, aspans in self._inn.get(op.src, {}).items():
                    if _alive_now(aspans):
                        note_arc(src, op.src)
                        self._close_arc(src, op.src, v)
                spans[-1][1] = v
                self._n_alive -= 1
            elif op.kind == "add_edge":
                s, d = op.src, op.dst
                if s == d:
                    if strict:
                        raise MutationError(
                            "add_edge", f"self-loop at {s}")
                    skipped += 1
                    continue
                if not self._vertex_alive(s) or not self._vertex_alive(d):
                    if strict:
                        missing = s if not self._vertex_alive(s) else d
                        raise MutationError(
                            "add_edge", f"vertex {missing} not found")
                    skipped += 1
                    continue
                if _alive_now(self._out.get(s, {}).get(d, [])):
                    if strict:
                        raise MutationError(
                            "add_edge", f"edge {s}->{d} exists")
                    skipped += 1
                    continue
                note_arc(s, d)
                self._open_arc(s, d, v)
                if not self.directed:
                    note_arc(d, s)
                    self._open_arc(d, s, v)
            elif op.kind == "del_edge":
                s, d = op.src, op.dst
                if not _alive_now(self._out.get(s, {}).get(d, [])):
                    if strict:
                        raise MutationError(
                            "del_edge", f"edge {s}->{d} not found")
                    skipped += 1
                    continue
                note_arc(s, d)
                self._close_arc(s, d, v)
                if not self.directed:
                    note_arc(d, s)
                    self._close_arc(d, s, v)
            else:                        # set_prop
                if not self._vertex_alive(op.src):
                    if strict:
                        raise MutationError(
                            "set_prop", f"vertex {op.src} not found")
                    skipped += 1
                    continue
                history = self._props.setdefault(
                    op.src, {}).setdefault(op.name, [])
                if history and history[-1][0] == v:
                    history[-1] = (v, op.value)
                else:
                    history.append((v, op.value))
                prop_last[(op.src, op.name)] = op.value
        return skipped

    def _rollback(self, v: int, vert_before: dict, arc_before: dict,
                  prop_last: dict) -> None:
        """Undo a strict-mode batch that failed mid-apply (atomicity:
        restore every touched record to its pre-batch state)."""
        for (s, d), was in arc_before.items():
            spans = self._out.get(s, {}).get(d, [])
            now = _alive_now(spans)
            if now and not was:
                spans.pop()
                self._m_alive -= 1
                if not spans:
                    del self._out[s][d]
                    del self._inn[d][s]
            elif was and not now:
                spans[-1][1] = None
                self._m_alive += 1
        for vid, was in vert_before.items():
            spans = self._vspans.get(vid, [])
            now = _alive_now(spans)
            if now and not was:
                spans.pop()
                self._n_alive -= 1
                if not spans:
                    del self._vspans[vid]
            elif was and not now:
                spans[-1][1] = None
                self._n_alive += 1
        for (vid, name) in prop_last:
            history = self._props.get(vid, {}).get(name)
            if history and history[-1][0] == v:
                history.pop()

    def _vertex_alive(self, vid: int) -> bool:
        return _alive_now(self._vspans.get(vid, []))

    # -- reads ---------------------------------------------------------------

    def snapshot(self, version: int | None = None) -> "Snapshot":
        """Pin an immutable view at ``version`` (default: the head).

        The pin extends the retention window until the snapshot is
        closed — compaction never folds a pinned version.
        """
        with self._lock:
            v = self.head if version is None else int(version)
            if v < self.floor or v > self.head:
                raise SnapshotExpired(v, self.floor, self.head)
            self._pins[v] = self._pins.get(v, 0) + 1
            self.stats.snapshots_pinned += 1
            return Snapshot(self, v)

    def release(self, version: int) -> None:
        with self._lock:
            count = self._pins.get(version, 0)
            if count <= 1:
                self._pins.pop(version, None)
            else:
                self._pins[version] = count - 1

    def deltas_since(self, version: int) -> list[Delta]:
        """The delta chain ``(version, head]``, oldest first.

        Raises :class:`SnapshotExpired` when ``version`` predates the
        retention floor — the chain needed to roll forward is gone and
        the caller must recompute from a fresh snapshot.
        """
        with self._lock:
            if version < self.floor:
                raise SnapshotExpired(version, self.floor, self.head)
            if version > self.head:
                raise SnapshotExpired(version, self.floor, self.head)
            return [self._deltas[v]
                    for v in range(version + 1, self.head + 1)]

    def head_age_s(self) -> float:
        """Seconds since the last commit (0 for a fresh store)."""
        with self._lock:
            return max(0.0, self._clock() - self._head_at)

    @property
    def n_vertices(self) -> int:
        return self._n_alive

    @property
    def n_arcs(self) -> int:
        return self._m_alive

    # -- retention / compaction ----------------------------------------------

    def _retention_floor(self) -> int:
        target = self.head - self.max_versions + 1
        if self._pins:
            target = min(target, min(self._pins))
        return max(self.floor, min(target, self.head))

    def _maybe_compact(self) -> None:
        if self._retention_floor() > self.floor:
            self._compact_locked()

    def compact(self) -> int:
        """Fold history below the retention floor into the base;
        returns the number of spans dropped."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        new_floor = self._retention_floor()
        if new_floor <= self.floor:
            return 0
        folded = 0
        dead_vids = []
        for vid, spans in self._vspans.items():
            kept = [s for s in spans
                    if s[1] is None or s[1] > new_floor]
            folded += len(spans) - len(kept)
            if kept:
                spans[:] = kept
            else:
                dead_vids.append(vid)
        for vid in dead_vids:
            del self._vspans[vid]
            self._props.pop(vid, None)
        for adj, mirror in ((self._out, self._inn),):
            empty_srcs = []
            for src, row in adj.items():
                dead_dsts = []
                for dst, spans in row.items():
                    kept = [s for s in spans
                            if s[1] is None or s[1] > new_floor]
                    folded += len(spans) - len(kept)
                    if kept:
                        spans[:] = kept
                    else:
                        dead_dsts.append(dst)
                for dst in dead_dsts:
                    del row[dst]
                    mirror_row = mirror.get(dst)
                    if mirror_row is not None:
                        mirror_row.pop(src, None)
                        if not mirror_row:
                            del mirror[dst]
                if not row:
                    empty_srcs.append(src)
            for src in empty_srcs:
                del adj[src]
        for histories in self._props.values():
            for name, history in histories.items():
                base_idx = 0
                for i, (ver, _) in enumerate(history):
                    if ver <= new_floor:
                        base_idx = i
                    else:
                        break
                if base_idx > 0:
                    del history[:base_idx]
        for v in range(self.floor + 1, new_floor + 1):
            self._deltas.pop(v, None)
        self.floor = new_floor
        self.stats.compactions += 1
        self.stats.spans_folded += folded
        return folded

    def info(self) -> dict[str, Any]:
        with self._lock:
            return {"head": self.head, "floor": self.floor,
                    "directed": self.directed,
                    "n_vertices": self._n_alive,
                    "n_arcs": self._m_alive,
                    "pins": sum(self._pins.values()),
                    "versions_retained": self.head - self.floor + 1,
                    "max_versions": self.max_versions,
                    "stats": self.stats.as_dict()}


class Snapshot:
    """An immutable read view pinned at one version.

    Context-manager: exiting releases the pin.  All reads resolve
    lifetime spans at the pinned version — a writer advancing the head
    (or a compaction folding *other* versions) never changes what this
    view returns.
    """

    def __init__(self, store: SnapshotStore, version: int):
        self._store = store
        self.version = version
        self._open = True

    def close(self) -> None:
        if self._open:
            self._open = False
            self._store.release(self.version)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- vertex reads --------------------------------------------------------

    def has_vertex(self, vid: int) -> bool:
        st = self._store
        with st._lock:
            return _alive_at(st._vspans.get(vid, []), self.version)

    def vertex_ids(self) -> list[int]:
        st = self._store
        with st._lock:
            return sorted(vid for vid, spans in st._vspans.items()
                          if _alive_at(spans, self.version))

    @property
    def n_vertices(self) -> int:
        st = self._store
        with st._lock:
            return sum(1 for spans in st._vspans.values()
                       if _alive_at(spans, self.version))

    @property
    def n_arcs(self) -> int:
        st = self._store
        with st._lock:
            return sum(1 for row in st._out.values()
                       for spans in row.values()
                       if _alive_at(spans, self.version))

    def vget(self, vid: int, name: str, default: Any = None) -> Any:
        st = self._store
        with st._lock:
            history = st._props.get(vid, {}).get(name)
            if not history:
                return default
            value = default
            for ver, val in history:
                if ver > self.version:
                    break
                value = val
            return value

    # -- arc reads -----------------------------------------------------------

    def has_arc(self, src: int, dst: int) -> bool:
        st = self._store
        with st._lock:
            return _alive_at(st._out.get(src, {}).get(dst, []),
                             self.version)

    def out_neighbors(self, vid: int) -> list[int]:
        st = self._store
        with st._lock:
            return [dst for dst, spans in st._out.get(vid, {}).items()
                    if _alive_at(spans, self.version)]

    def in_neighbors(self, vid: int) -> list[int]:
        st = self._store
        with st._lock:
            return [src for src, spans in st._inn.get(vid, {}).items()
                    if _alive_at(spans, self.version)]

    def und_neighbors(self, vid: int) -> list[int]:
        """Undirected view: out ∪ in (what CComp traverses)."""
        st = self._store
        with st._lock:
            out = {dst for dst, spans in st._out.get(vid, {}).items()
                   if _alive_at(spans, self.version)}
            out.update(src for src, spans
                       in st._inn.get(vid, {}).items()
                       if _alive_at(spans, self.version))
            return list(out)

    def arcs(self) -> Iterator[tuple[int, int]]:
        st = self._store
        with st._lock:
            pairs = [(src, dst)
                     for src, row in st._out.items()
                     for dst, spans in row.items()
                     if _alive_at(spans, self.version)]
        return iter(pairs)

    def adjacency(self) -> dict[int, list[int]]:
        """Out-adjacency of every alive vertex (one locked pass — the
        form the incremental kernels' recompute path consumes)."""
        st = self._store
        with st._lock:
            v = self.version
            adj = {vid: [] for vid, spans in st._vspans.items()
                   if _alive_at(spans, v)}
            for src, row in st._out.items():
                if src not in adj:
                    continue
                lst = adj[src]
                for dst, spans in row.items():
                    if _alive_at(spans, v):
                        lst.append(dst)
            return adj

    # -- materialization -----------------------------------------------------

    def materialize(self, *, tracer=None):
        """Rebuild this version as a :class:`~repro.core.graph.
        PropertyGraph` (vertices in ascending id order, arcs as stored)
        — the bridge to the batch kernels and the equivalence gate.

        The graph is built ``directed=True`` because the store already
        holds both arcs of an undirected edge; the batch kernels'
        undirected view (out ∪ in) then matches :meth:`und_neighbors`
        exactly.
        """
        from ..core.graph import PropertyGraph
        from ..workloads.base import (
            common_edge_schema,
            common_vertex_schema,
        )
        g = PropertyGraph(common_vertex_schema(), common_edge_schema(),
                          directed=True, tracer=tracer)
        for vid in self.vertex_ids():
            g.add_vertex(vid)
        for src, dst in self.arcs():
            g.add_edge(src, dst)
        return g
