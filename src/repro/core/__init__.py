"""Core framework: the System G-style vertex-centric property graph,
the simulated heap, the execution tracer, and the GraphBIG taxonomy."""

from .errors import (
    CellCrash,
    CellExecutionError,
    CellOOM,
    CellTimeout,
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    GraphError,
    HarnessError,
    MetricsUnavailable,
    RetriesExhausted,
    SchemaError,
    TraceError,
    VertexNotFound,
)
from .graph import EdgeNode, PropertyGraph, Vertex
from .index import PropertyIndex, create_index
from .memmodel import (
    AGED_HEAP,
    HEAP_BASE,
    LINE_SIZE,
    PACKED_HEAP,
    PAGE_SIZE,
    HeapModel,
    SimAllocator,
)
from .properties import EMPTY_SCHEMA, Field, PropertyStats, Schema
from .taxonomy import (
    COMPUTATION_PROFILES,
    DATA_SOURCE_PROFILES,
    ComputationProfile,
    ComputationType,
    DataSource,
    DataSourceProfile,
    WorkloadCategory,
)
from .trace import FrozenTrace, Region, Tracer
from .tracestore import (
    TRACE_FORMAT_VERSION,
    StoredTrace,
    TraceStore,
    TraceStoreKeyError,
    TraceStoreStats,
)

__all__ = [
    "AGED_HEAP", "COMPUTATION_PROFILES", "CellCrash", "CellExecutionError",
    "CellOOM", "CellTimeout", "DATA_SOURCE_PROFILES",
    "DuplicateEdge", "DuplicateVertex", "EMPTY_SCHEMA", "EdgeNode",
    "EdgeNotFound", "Field", "FrozenTrace", "GraphError", "HEAP_BASE",
    "HarnessError", "MetricsUnavailable", "RetriesExhausted",
    "HeapModel", "LINE_SIZE", "PACKED_HEAP", "PAGE_SIZE", "PropertyGraph",
    "PropertyStats", "Region", "Schema", "SchemaError", "SimAllocator",
    "PropertyIndex", "StoredTrace", "TRACE_FORMAT_VERSION", "TraceError",
    "TraceStore", "TraceStoreKeyError", "TraceStoreStats", "Tracer",
    "Vertex", "VertexNotFound", "create_index",
    "ComputationProfile", "ComputationType", "DataSource",
    "DataSourceProfile", "WorkloadCategory",
]
