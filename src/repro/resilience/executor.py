"""Isolated cell execution: worker subprocess, wall-clock timeout, retries.

Each characterization cell runs in its own worker process; the parent
waits on a pipe with a deadline.  Every way a worker can die maps to a
typed failure instead of a lost sweep:

* no payload before the deadline  -> SIGKILL the worker, ``CellTimeout``
* worker killed / pipe torn       -> ``CellCrash``
* worker MemoryError              -> ``CellOOM``
* worker exception                -> ``CellCrash`` (traceback summarized)
* unparseable / corrupt payload   -> ``CellCrash``

``isolation="inline"`` runs the cell in-process (no subprocess, no real
timeout) with chaos faults mapped onto the same typed errors — fast paths
for unit-testing the retry/checkpoint/matrix logic; the ``slow``-marked
tests exercise the real process isolation.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import (
    CellCrash,
    CellExecutionError,
    CellOOM,
    CellTimeout,
)
from ..obs.tracing import maybe_span
from .cell import Cell, row_to_record, run_cell
from .chaos import ChaosSpec, corrupt_payload, inject_pre_run
from .retry import RetryPolicy, run_with_retries

#: JSON keys every well-formed "row" payload must carry; anything else is
#: treated as a torn/corrupted result.
_REQUIRED_KEYS = frozenset({"kind", "cell", "workload", "dataset", "ctype"})


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for resilient cell execution."""

    timeout_s: float = 300.0
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    isolation: str = "process"       # "process" | "inline"
    mp_start_method: str = "fork"    # "fork" (fast, POSIX) | "spawn"
    kill_grace_s: float = 5.0        # join budget after SIGKILL

    def __post_init__(self):
        if self.isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation {self.isolation!r}")


def _child_entry(conn, cell_dict: dict, chaos_dict: dict | None,
                 attempt: int) -> None:
    """Worker body: reconstruct the cell, run it, ship the record back."""
    try:
        cell = Cell.from_dict(cell_dict)
        fault = None
        if chaos_dict is not None:
            fault = ChaosSpec.from_dict(chaos_dict).fault_for(
                cell.cell_id, attempt)
            inject_pre_run(fault, cell.cell_id)
        row = run_cell(cell)
        payload = row_to_record(row, cell, attempts=attempt)
        payload = corrupt_payload(fault, payload, cell.cell_id)
        conn.send(("ok", payload))
    except MemoryError as e:
        conn.send(("oom", str(e) or "MemoryError"))
    except BaseException as e:   # noqa: BLE001 — containment is the job
        tb = traceback.format_exception_only(type(e), e)
        conn.send(("error", "".join(tb).strip()))
    finally:
        conn.close()


def _validate_payload(payload: Any, cell: Cell) -> dict:
    if (not isinstance(payload, dict)
            or not _REQUIRED_KEYS.issubset(payload)
            or payload.get("cell") != cell.cell_id):
        raise CellCrash(cell.cell_id,
                        f"corrupt result payload ({type(payload).__name__})")
    return payload


def run_cell_once(cell: Cell, *, timeout_s: float,
                  chaos: ChaosSpec | None = None, attempt: int = 1,
                  mp_start_method: str = "fork",
                  kill_grace_s: float = 5.0) -> dict:
    """One isolated attempt at a cell.  Returns the row record or raises
    a typed :class:`~repro.core.errors.CellExecutionError`."""
    ctx = mp.get_context(mp_start_method)
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_entry,
        args=(child_conn, cell.to_dict(),
              chaos.to_dict() if chaos is not None else None, attempt),
        daemon=True)
    t0 = time.monotonic()
    proc.start()
    child_conn.close()           # parent keeps only the read end
    try:
        if not parent_conn.poll(timeout_s):
            proc.kill()
            proc.join(kill_grace_s)
            raise CellTimeout(cell.cell_id, timeout_s)
        try:
            status, payload = parent_conn.recv()
        except (EOFError, OSError) as e:
            proc.join(kill_grace_s)
            code = proc.exitcode
            detail = (f"worker died before reporting "
                      f"(exitcode={code})" if code is not None
                      else f"pipe error: {e}")
            raise CellCrash(cell.cell_id, detail) from None
        except Exception as e:   # unpicklable/garbled stream
            proc.kill()
            proc.join(kill_grace_s)
            raise CellCrash(cell.cell_id,
                            f"unreadable payload: {e}") from None
    finally:
        parent_conn.close()
        if proc.is_alive():
            proc.kill()
        proc.join(kill_grace_s)
    if status == "oom":
        raise CellOOM(cell.cell_id, payload)
    if status != "ok":
        raise CellCrash(cell.cell_id, str(payload))
    record = _validate_payload(payload, cell)
    record["elapsed_s"] = round(time.monotonic() - t0, 6)
    return record


def run_cell_inline(cell: Cell, *, chaos: ChaosSpec | None = None,
                    attempt: int = 1, timeout_s: float = 300.0) -> dict:
    """In-process attempt: chaos faults become typed errors directly.

    ``hang`` cannot truly hang the caller, so it maps to the same
    :class:`CellTimeout` the process path would raise.
    """
    fault = (chaos.fault_for(cell.cell_id, attempt)
             if chaos is not None else None)
    if fault is not None:
        if fault.kind == "hang":
            raise CellTimeout(cell.cell_id, timeout_s)
        if fault.kind in ("crash", "raise"):
            raise CellCrash(cell.cell_id, f"chaos: injected {fault.kind}")
        if fault.kind == "oom":
            raise CellOOM(cell.cell_id, "chaos: simulated allocator OOM")
    try:
        row = run_cell(cell)
    except MemoryError as e:
        raise CellOOM(cell.cell_id, str(e) or "MemoryError") from e
    except CellExecutionError:
        raise
    except Exception as e:
        raise CellCrash(cell.cell_id,
                        f"{type(e).__name__}: {e}") from e
    payload = row_to_record(row, cell, attempts=attempt)
    payload = corrupt_payload(fault, payload, cell.cell_id)
    return _validate_payload(payload, cell)


def run_cell_resilient(cell: Cell, *, config: ExecutorConfig,
                       chaos: ChaosSpec | None = None,
                       sleep=time.sleep,
                       tracer=None) -> tuple[dict, int]:
    """Run one cell under the full policy: isolation + timeout + retries.

    Returns ``(record, attempts)``; raises
    :class:`~repro.core.errors.RetriesExhausted` when every attempt failed.
    With a ``tracer`` (or an installed global tracer) every attempt is a
    span — a failed attempt carries ``error=<exception type>`` — nesting
    under whatever span the caller (the matrix driver) holds open.
    """
    def one(attempt: int) -> dict:
        with maybe_span(tracer, f"attempt:{attempt}",
                        cell=cell.cell_id, attempt=attempt):
            if config.isolation == "inline":
                return run_cell_inline(cell, chaos=chaos, attempt=attempt,
                                       timeout_s=config.timeout_s)
            return run_cell_once(cell, timeout_s=config.timeout_s,
                                 chaos=chaos, attempt=attempt,
                                 mp_start_method=config.mp_start_method,
                                 kill_grace_s=config.kill_grace_s)

    record, attempts = run_with_retries(one, config.policy, cell.cell_id,
                                        sleep=sleep)
    record["attempts"] = attempts
    return record, attempts
