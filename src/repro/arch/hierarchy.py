"""Three-level cache hierarchy: L1D -> L2 -> L3 -> memory.

Replays a trace through the levels in sequence: each level sees only the
misses of the level above (the standard miss-stream composition of an
inclusive hierarchy).  Returns per-level miss masks plus the per-access
*service latency* the cycle model charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import Cache, CacheStats, line_ids
from .machine import MachineConfig


@dataclass
class HierarchyResult:
    """Everything the cycle model and the reports need about the caches."""

    l1: CacheStats
    l2: CacheStats
    l3: CacheStats
    l1_miss: np.ndarray     # per-access bool, program order
    l2_miss: np.ndarray     # per-access bool (False where L1 hit)
    l3_miss: np.ndarray     # per-access bool (False where L1/L2 hit)
    latency: np.ndarray     # per-access extra cycles beyond an L1 hit

    def mpki(self, n_instrs: int) -> dict[str, float]:
        """MPKI per level (Fig. 7's metric)."""
        return {"L1D": self.l1.mpki(n_instrs),
                "L2": self.l2.mpki(n_instrs),
                "L3": self.l3.mpki(n_instrs)}

    def hit_rates(self) -> dict[str, float]:
        """Local hit rate per level (Fig. 9's metric)."""
        return {"L1D": self.l1.hit_rate,
                "L2": self.l2.hit_rate,
                "L3": self.l3.hit_rate}


class MemoryHierarchy:
    """Stateful 3-level hierarchy bound to a :class:`MachineConfig`."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self.l1 = Cache(machine.l1d)
        self.l2 = Cache(machine.l2)
        self.l3 = Cache(machine.l3)

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.l3.reset()

    def simulate(self, addrs: np.ndarray, rw: np.ndarray | None = None
                 ) -> HierarchyResult:
        """Replay ``addrs`` (byte addresses, program order)."""
        addrs = np.asarray(addrs, dtype=np.uint64)
        n = len(addrs)
        m = self.machine
        # One line-id precompute shared by every level with the same line
        # size (all of them, on the shipped machines).
        shared = line_ids(addrs, m.l1d.line)
        l2_of = shared if m.l2.line == m.l1d.line else line_ids(addrs, m.l2.line)
        l3_of = shared if m.l3.line == m.l1d.line else line_ids(addrs, m.l3.line)
        l1_miss = self.l1.simulate(addrs, rw, lines=shared)
        l2_miss = np.zeros(n, dtype=bool)
        l3_miss = np.zeros(n, dtype=bool)
        idx1 = np.flatnonzero(l1_miss)
        if len(idx1):
            rw1 = rw[idx1] if rw is not None else None
            m2 = self.l2.simulate(None, rw1, lines=l2_of[idx1])
            idx2 = idx1[m2]
            l2_miss[idx2] = True
            if len(idx2):
                rw2 = rw[idx2] if rw is not None else None
                m3 = self.l3.simulate(None, rw2, lines=l3_of[idx2])
                l3_miss[idx2[m3]] = True
        latency = np.zeros(n, dtype=np.int32)
        latency[l1_miss] = m.l2.latency
        latency[l2_miss] = m.l3.latency
        latency[l3_miss] = m.mem_latency
        return HierarchyResult(
            l1=self.l1.stats, l2=self.l2.stats, l3=self.l3.stats,
            l1_miss=l1_miss, l2_miss=l2_miss, l3_miss=l3_miss,
            latency=latency)
