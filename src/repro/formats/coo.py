"""Coordinate-list (COO) static graph representation.

COO (paper Section 2) replaces CSR's vertex array with an explicit array of
source vertices per edge — the natural layout for *edge-centric* GPU kernels
(Soman connected components, edge-centric triangle counting), where each
thread owns one edge and per-thread work is uniform (the paper's explanation
for CComp/TC's low branch divergence, Fig. 10).
"""

from __future__ import annotations

import numpy as np

from ..core.memmodel import PACKED_HEAP, SimAllocator

IDX_SIZE = 8
VAL_SIZE = 8


class COOGraph:
    """Immutable COO graph: parallel ``src``/``dst`` (and optional ``vals``)
    arrays over dense vertex ids ``0..n-1``."""

    __slots__ = ("n", "m", "src", "dst", "vals",
                 "base_src", "base_dst", "base_val", "alloc")

    def __init__(self, n: int, src: np.ndarray, dst: np.ndarray,
                 vals: np.ndarray | None = None):
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be parallel 1-D arrays")
        if len(src) and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= n):
            raise ValueError("edge endpoints must be valid vertex ids")
        if vals is not None:
            vals = np.ascontiguousarray(vals, dtype=np.float64)
            if len(vals) != len(src):
                raise ValueError("vals must parallel src/dst")
        self.n = n
        self.m = len(src)
        self.src = src
        self.dst = dst
        self.vals = vals
        self.alloc = SimAllocator(PACKED_HEAP)
        self.base_src = self.alloc.alloc_array(max(self.m, 1), IDX_SIZE,
                                               tag="coo_src")
        self.base_dst = self.alloc.alloc_array(max(self.m, 1), IDX_SIZE,
                                               tag="coo_dst")
        self.base_val = self.alloc.alloc_array(max(self.m, 1), VAL_SIZE,
                                               tag="coo_val")

    def degrees(self) -> np.ndarray:
        """Out-degree per vertex."""
        return np.bincount(self.src, minlength=self.n)

    def in_degrees(self) -> np.ndarray:
        """In-degree per vertex."""
        return np.bincount(self.dst, minlength=self.n)

    def reversed_edges(self) -> "COOGraph":
        """COO with every arc flipped."""
        return COOGraph(self.n, self.dst.copy(), self.src.copy(),
                        None if self.vals is None else self.vals.copy())

    def __repr__(self) -> str:  # pragma: no cover
        return f"COOGraph(n={self.n}, m={self.m})"
