"""Hot-shard detection from the router's own routing telemetry.

The detector needs no new instrumentation: the router already counts
every shard exchange in ``cluster_route_total{shard,outcome}`` and every
keyed read per dataset in ``Router.key_route_counts``.  Sampling both
and differencing against the previous sample yields a per-window load
profile; a shard whose window delta exceeds ``ratio`` times the mean is
*hot*, and the keys whose primary lives on a hot shard — ranked by their
own window deltas — are the migration candidates a
:class:`~repro.tenancy.migrate.RebalanceExecutor` acts on.

Zipf-skewed traffic (the load generator's ``--dataset-skew``) is exactly
the regime this exists for: a handful of datasets draw most of the
traffic, consistent hashing cannot help (the skew is in the *key
popularity*, not the placement), and the fix is more replicas for the
hot keys or moving them to fresh capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Outcomes that represent real served load on a shard (errors and
#: unreachable dials are *pressure relief*, not load to rebalance onto).
_LOAD_OUTCOMES = frozenset({"ok", "failover", "hedge"})


@dataclass(frozen=True)
class HotspotReport:
    """One detection window's verdict."""

    hot_shards: tuple[str, ...]          # shards over the hot threshold
    hot_keys: tuple[str, ...]            # their keys, busiest first
    shard_deltas: dict[str, float] = field(default_factory=dict)
    key_deltas: dict[str, int] = field(default_factory=dict)
    mean_delta: float = 0.0
    total_delta: float = 0.0

    @property
    def hot(self) -> bool:
        return bool(self.hot_shards)

    def as_dict(self) -> dict[str, Any]:
        return {"hot": self.hot,
                "hot_shards": list(self.hot_shards),
                "hot_keys": list(self.hot_keys),
                "shard_deltas": dict(self.shard_deltas),
                "key_deltas": dict(self.key_deltas),
                "mean_delta": round(self.mean_delta, 3),
                "total_delta": round(self.total_delta, 3)}


class HotspotDetector:
    """Windowed skew detector over a router's routing counters.

    Call :meth:`sample` periodically; each call closes one window.  A
    shard is hot when its window delta exceeds ``ratio`` times the mean
    across shards *and* the window saw at least ``min_total`` exchanges
    (a quiet cluster has no hotspots, only noise).  The first sample
    establishes the baseline and never reports hot.
    """

    def __init__(self, router, *, ratio: float = 2.0,
                 min_total: float = 50.0):
        if ratio <= 1.0:
            raise ValueError("ratio must be > 1 (a shard at the mean "
                             "is not hot)")
        self.router = router
        self.ratio = ratio
        self.min_total = min_total
        self._last_shard: dict[str, float] = {}
        self._last_keys: dict[str, int] = {}
        self._primed = False

    def _shard_totals(self) -> dict[str, float]:
        snap = self.router.registry.snapshot()
        fam = snap.get("cluster_route_total", {})
        totals: dict[str, float] = {}
        for sample in fam.get("samples", []):
            labels = sample.get("labels", {})
            if labels.get("outcome") in _LOAD_OUTCOMES:
                shard = labels.get("shard", "?")
                totals[shard] = totals.get(shard, 0.0) \
                    + float(sample.get("value", 0.0))
        # every topology member appears, so an idle shard drags the
        # mean down instead of vanishing from it
        for shard in self.router.shards:
            totals.setdefault(shard, 0.0)
        return totals

    def sample(self) -> HotspotReport:
        """Close the current window and report on it."""
        shard_now = self._shard_totals()
        key_now = dict(self.router.key_route_counts)
        shard_deltas = {s: v - self._last_shard.get(s, 0.0)
                        for s, v in shard_now.items()}
        key_deltas = {k: c - self._last_keys.get(k, 0)
                      for k, c in key_now.items()}
        primed = self._primed
        self._last_shard = shard_now
        self._last_keys = key_now
        self._primed = True

        total = sum(shard_deltas.values())
        mean = total / len(shard_deltas) if shard_deltas else 0.0
        hot_shards: tuple[str, ...] = ()
        if primed and total >= self.min_total:
            hot_shards = tuple(sorted(
                s for s, d in shard_deltas.items()
                if d > self.ratio * mean))
        hot_keys: tuple[str, ...] = ()
        if hot_shards:
            hot_set = set(hot_shards)
            ranked = sorted(
                (k for k, d in key_deltas.items()
                 if d > 0 and self.router.ring.owner(k) in hot_set),
                key=lambda k: (-key_deltas[k], k))
            hot_keys = tuple(ranked)
        return HotspotReport(hot_shards=hot_shards, hot_keys=hot_keys,
                             shard_deltas=shard_deltas,
                             key_deltas=key_deltas,
                             mean_delta=mean, total_delta=total)
