"""Logical validation + the cost-aware physical planner.

The planner turns a parsed :class:`~repro.query.ast.Pipeline` into a
:class:`PhysicalPlan`: a ``scan`` op, a **graph phase** (kernel stages
and row-wise relational stages over the full vertex table), and a
**table phase** (the first aggregate and everything after it, operating
on a materialized table).  The split is what makes distributed execution
exact: the graph phase is row-independent, so shards can each run it
over a vertex partition; the table phase's first op has a distributive
partial form (local topk / partial count / seeded-hash sample), and the
router re-applies its final form over the merged partials.

Planner passes, in order:

1. **validate** every stage against the catalog (unknown stage, wrong
   arg shape, bad value -> typed :class:`~repro.core.errors.PlanError`);
2. **implicit columns** — a stage referencing ``degree``/``out_degree``/
   ``in_degree`` before any ``degree`` stage gets one inserted (the
   example query ``... | topk degree 10`` needs no explicit degree
   stage);
3. **fusion** — ``bfs | filter level<=N`` folds into a bounded
   expansion ``bfs depth<=N``; ``kcore | filter core>=K`` folds into
   the peeling threshold;
4. **phase split + ordering rules** — kernels must precede the first
   aggregate; ``count`` is terminal;
5. **cost model** — deterministic per-stage row/cost estimates from the
   dataset registry (static sources) or live store stats (dynamic),
   rendered by ``explain``.

Everything here is pure and deterministic: the same pipeline and the
same graph stats produce byte-identical plans on every node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import PlanError
from .ast import Arg, Pipeline, Stage

#: Bump when plan semantics change: part of the content address, so an
#: upgraded node never reuses a stale cached plan shape.
PLANNER_VERSION = 1

#: Columns the ``degree`` kernel materializes implicitly on reference.
DEGREE_COLUMNS = ("degree", "out_degree", "in_degree")

#: Kernel stage -> the columns it adds to the vertex table.
KERNEL_COLUMNS: dict[str, tuple[str, ...]] = {
    "bfs": ("level", "parent"),
    "cc": ("comp",),
    "kcore": ("core",),
    "triangles": ("tri",),
    "degree": DEGREE_COLUMNS,
}

#: Stages that collapse or reorder the table (the graph/table phase
#: boundary sits at the first of these).
AGGREGATES = ("topk", "sample", "limit", "count")

#: Relational stages allowed in either phase.
RELATIONAL = ("filter", "project") + AGGREGATES

#: Every plannable stage name (for the unknown-stage error message).
STAGES = tuple(sorted(set(KERNEL_COLUMNS) | set(RELATIONAL)))

#: Comparators the filter stage accepts (all of them).
FILTER_CMPS = ("=", "!=", "<", "<=", ">", ">=")

_SOURCE_ARGS = ("scale", "seed", "version", "dynamic")


@dataclass(frozen=True)
class SourceInfo:
    """The resolved ``from`` stage: which graph, in which mode."""

    dataset: str
    scale: float = 0.05
    seed: int = 0
    dynamic: bool = False
    version: "int | None" = None      # pinned snapshot (implies dynamic)

    def identity(self) -> tuple:
        return (self.dataset, self.scale, self.seed)


def _bad(stage: Stage, message: str) -> PlanError:
    return PlanError(f"stage '{stage.name}': {message}")


def _int_value(stage: Stage, arg: Arg, what: str, *,
               minimum: "int | None" = None) -> int:
    v = arg.value
    if isinstance(v, bool) or not isinstance(v, int):
        raise _bad(stage, f"{what} must be an integer, got "
                          f"{arg.render()!r}")
    if minimum is not None and v < minimum:
        raise _bad(stage, f"{what} must be >= {minimum}, got {v}")
    return v


def _named_only(stage: Stage, allowed: "dict[str, tuple[str, ...]]",
                n_positional: int = 0) -> None:
    """Shape check: at most ``n_positional`` positionals, named args
    restricted to ``allowed`` (name -> accepted comparators)."""
    pos = stage.positionals()
    if len(pos) > n_positional:
        raise _bad(stage, f"takes {n_positional} positional argument(s), "
                          f"got {len(pos)}")
    seen = set()
    for arg in stage.args:
        if arg.positional:
            continue
        if arg.name not in allowed:
            raise _bad(stage, f"unknown argument {arg.name!r}; choose "
                              f"from {', '.join(sorted(allowed))}")
        if arg.cmp not in allowed[arg.name]:
            raise _bad(stage, f"argument {arg.name!r} accepts "
                              f"{' / '.join(allowed[arg.name])}, got "
                              f"{arg.cmp!r}")
        if arg.name in seen:
            raise _bad(stage, f"argument {arg.name!r} given twice")
        seen.add(arg.name)


def resolve_source(source: Stage) -> SourceInfo:
    """Validate the ``from`` stage into a :class:`SourceInfo`."""
    from ..datagen.registry import REGISTRY
    pos = source.positionals()
    if len(pos) != 1 or not isinstance(pos[0].value, str):
        raise _bad(source, "needs exactly one dataset name")
    _named_only(source, {"scale": ("=",), "seed": ("=",),
                         "version": ("=",), "dynamic": ("=",)},
                n_positional=1)
    dataset = pos[0].value
    if dataset not in REGISTRY:
        raise PlanError(f"unknown dataset {dataset!r}; choose from "
                        f"{', '.join(sorted(REGISTRY))}")
    scale, seed, version, dynamic = 0.05, 0, None, False
    arg = source.named("scale")
    if arg is not None:
        if isinstance(arg.value, bool) \
                or not isinstance(arg.value, (int, float)):
            raise _bad(source, f"scale must be a number, got "
                               f"{arg.render()!r}")
        scale = float(arg.value)
        if not (scale > 0 and math.isfinite(scale)):
            raise _bad(source, f"scale must be > 0, got {scale!r}")
    arg = source.named("seed")
    if arg is not None:
        seed = _int_value(source, arg, "seed")
    arg = source.named("version")
    if arg is not None:
        version = _int_value(source, arg, "version", minimum=0)
        dynamic = True
    arg = source.named("dynamic")
    if arg is not None:
        if not isinstance(arg.value, bool):
            raise _bad(source, f"dynamic must be true/false, got "
                               f"{arg.render()!r}")
        dynamic = dynamic or arg.value
    return SourceInfo(dataset=dataset, scale=scale, seed=seed,
                      dynamic=dynamic, version=version)


def source_info(pipeline: Pipeline) -> SourceInfo:
    """The source of a parsed pipeline (routing needs only this)."""
    return resolve_source(pipeline.source)


# -- physical ops ------------------------------------------------------------

def _op(kind: str, **params: Any) -> dict[str, Any]:
    out = {"kind": kind}
    out.update(params)
    return out


@dataclass
class PhysicalPlan:
    """An executable plan: scan + graph phase + table phase.

    ``graph_ops`` are row-independent (kernels annotate the full vertex
    table; filters/projects drop rows/columns) — a vertex partition
    commutes with all of them.  ``table_ops`` start at the first
    aggregate; ``table_ops[0]`` is the op whose *partial* form shards
    run and whose *final* form the merge re-applies.
    """

    source: SourceInfo
    scan: dict[str, Any]
    graph_ops: list[dict[str, Any]] = field(default_factory=list)
    table_ops: list[dict[str, Any]] = field(default_factory=list)
    columns: tuple[str, ...] = ("id",)      # visible at plan end
    estimates: list[dict[str, Any]] = field(default_factory=list)
    fused: int = 0

    @property
    def ops(self) -> list[dict[str, Any]]:
        return [self.scan, *self.graph_ops, *self.table_ops]

    @property
    def total_cost(self) -> float:
        return round(sum(e["est_cost"] for e in self.estimates), 3)

    def merge_ops(self) -> list[str]:
        """The front-door merge recipe for distributed execution."""
        ops = ["concat"]
        if "comp" in self.columns:
            ops.append("relabel-components")
        if self.table_ops:
            first = self.table_ops[0]["kind"]
            ops.append("sum-counts" if first == "count"
                       else f"{first}-final")
            ops.extend(f"apply-{op['kind']}"
                       for op in self.table_ops[1:])
        else:
            ops.append("sort-by-id")
        return ops

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready plan (the ``explain`` payload body)."""
        stages = []
        for op, est in zip(self.ops, self.estimates):
            entry = {k: (list(v) if isinstance(v, tuple) else v)
                     for k, v in op.items()}
            entry["est_rows"] = est["est_rows"]
            entry["est_cost"] = est["est_cost"]
            stages.append(entry)
        return {"planner": PLANNER_VERSION,
                "source": {"dataset": self.source.dataset,
                           "scale": self.source.scale,
                           "seed": self.source.seed,
                           "dynamic": self.source.dynamic,
                           "version": self.source.version},
                "stages": stages,
                "columns": list(self.columns),
                "fused_stages": self.fused,
                "total_cost": self.total_cost}


# -- cost model --------------------------------------------------------------

def _estimate_graph(source: SourceInfo,
                    graph_stats: "tuple[int, int] | None"
                    ) -> tuple[int, int]:
    """Deterministic (n, m) estimate: live store stats when given (the
    dynamic path), else the registry's scaled shape."""
    if graph_stats is not None:
        return graph_stats
    from ..datagen.registry import REGISTRY, scaled_vertices
    n = scaled_vertices(source.dataset, source.scale)
    entry = REGISTRY[source.dataset]
    ratio = min(64.0, entry.paper_edges / max(1, entry.paper_vertices))
    return n, int(n * ratio)


#: Row selectivity a stage is assumed to keep (deterministic heuristics
#: for explain output, not measurements).
_SELECTIVITY = {"bfs": 0.9, "filter": 0.5, "kcore": 0.6}


def _cost_of(op: dict[str, Any], rows: int, n: int, m: int
             ) -> tuple[int, float]:
    """(rows after, cost units) for one physical op."""
    kind = op["kind"]
    if kind == "scan":
        return n, float(n + m)
    if kind == "degree":
        return rows, float(m)
    if kind == "bfs":
        out = max(1, int(rows * _SELECTIVITY["bfs"]))
        return out, float(n + m)
    if kind == "cc":
        return rows, float(n + m)
    if kind == "kcore":
        out = rows if op.get("k") is None \
            else max(1, int(rows * _SELECTIVITY["kcore"]))
        return out, 2.0 * m
    if kind == "triangles":
        return rows, float(m) ** 1.5
    if kind == "filter":
        return max(1, int(rows * _SELECTIVITY["filter"])), float(rows)
    if kind == "project":
        return rows, float(rows)
    if kind == "topk":
        k = op["k"]
        return min(rows, k), rows * math.log2(k + 1)
    if kind == "sample":
        return min(rows, op["k"]), float(rows)
    if kind == "limit":
        return min(rows, op["k"]), float(op["k"])
    if kind == "count":
        return 1, float(rows)
    raise PlanError(f"no cost model for op {kind!r}")  # pragma: no cover


# -- the planner -------------------------------------------------------------

def _plan_kernel(stage: Stage) -> dict[str, Any]:
    if stage.name == "bfs":
        _named_only(stage, {"root": ("=",), "depth": ("<=", "<")})
        root_arg = stage.named("root")
        root = 0 if root_arg is None \
            else _int_value(stage, root_arg, "root", minimum=0)
        depth = None
        arg = stage.named("depth")
        if arg is not None:
            bound = _int_value(stage, arg, "depth", minimum=0)
            depth = bound - 1 if arg.cmp == "<" else bound
            if depth < 0:
                raise _bad(stage, "depth<1 excludes even the root")
        return _op("bfs", root=root, depth=depth)
    if stage.name == "kcore":
        _named_only(stage, {"k": (">=", "=")})
        arg = stage.named("k")
        k = None if arg is None \
            else _int_value(stage, arg, "k", minimum=0)
        return _op("kcore", k=k)
    _named_only(stage, {})
    return _op(stage.name)


def _plan_relational(stage: Stage, visible: list[str]) -> dict[str, Any]:
    if stage.name == "filter":
        named = [a for a in stage.args if not a.positional]
        if len(named) != 1 or stage.positionals():
            raise _bad(stage, "takes exactly one '<column> <cmp> "
                              "<value>' predicate")
        pred = named[0]
        if isinstance(pred.value, tuple):
            raise _bad(stage, "predicate value cannot be a list")
        return _op("filter", column=pred.name, cmp=pred.cmp,
                   value=pred.value)
    if stage.name == "project":
        pos = stage.positionals()
        _named_only(stage, {}, n_positional=1)
        if len(pos) != 1:
            raise _bad(stage, "takes exactly one column list")
        value = pos[0].value
        cols = value if isinstance(value, tuple) else (value,)
        if not all(isinstance(c, str) for c in cols):
            raise _bad(stage, f"column names must be identifiers, got "
                              f"{pos[0].render()!r}")
        return _op("project", columns=tuple(cols))
    if stage.name == "topk":
        pos = stage.positionals()
        _named_only(stage, {}, n_positional=2)
        if len(pos) != 2 or not isinstance(pos[0].value, str):
            raise _bad(stage, "takes '<column> <k>'")
        k = _int_value(stage, pos[1], "k", minimum=1)
        return _op("topk", column=pos[0].value, k=k)
    if stage.name == "sample":
        pos = stage.positionals()
        _named_only(stage, {"seed": ("=",)}, n_positional=1)
        if len(pos) != 1:
            raise _bad(stage, "takes '<k> [seed=N]'")
        k = _int_value(stage, pos[0], "k", minimum=1)
        arg = stage.named("seed")
        seed = 0 if arg is None else _int_value(stage, arg, "seed")
        return _op("sample", k=k, seed=seed)
    if stage.name == "limit":
        pos = stage.positionals()
        _named_only(stage, {}, n_positional=1)
        if len(pos) != 1:
            raise _bad(stage, "takes '<k>'")
        return _op("limit", k=_int_value(stage, pos[0], "k", minimum=1))
    _named_only(stage, {})
    return _op("count")


def _fuse(ops: list[dict[str, Any]]) -> tuple[list[dict[str, Any]], int]:
    """Fold kernel-adjacent filters into the kernel's own bound."""
    out: list[dict[str, Any]] = []
    fused = 0
    for op in ops:
        prev = out[-1] if out else None
        if prev is not None and op["kind"] == "filter" \
                and not isinstance(op["value"], bool) \
                and isinstance(op["value"], int):
            if prev["kind"] == "bfs" and op["column"] == "level" \
                    and op["cmp"] in ("<=", "<"):
                bound = op["value"] - 1 if op["cmp"] == "<" \
                    else op["value"]
                if bound < 0:
                    bound = -1        # empty result, still a valid bound
                prev["depth"] = bound if prev["depth"] is None \
                    else min(prev["depth"], bound)
                fused += 1
                continue
            if prev["kind"] == "kcore" and op["column"] == "core" \
                    and op["cmp"] in (">=", ">"):
                bound = op["value"] + 1 if op["cmp"] == ">" \
                    else op["value"]
                prev["k"] = bound if prev["k"] is None \
                    else max(prev["k"], bound)
                fused += 1
                continue
        out.append(op)
    return out, fused


def plan_pipeline(pipeline: Pipeline, *,
                  graph_stats: "tuple[int, int] | None" = None
                  ) -> PhysicalPlan:
    """Plan a parsed pipeline; raises :class:`PlanError` on anything the
    executor cannot run.  ``graph_stats`` is the live ``(n, m)`` of a
    dynamic store head for the cost model (None -> registry estimate).
    """
    source = resolve_source(pipeline.source)
    scan = _op("scan", dataset=source.dataset, scale=source.scale,
               seed=source.seed,
               mode="dynamic" if source.dynamic else "static",
               version=source.version)

    visible: list[str] = ["id"]
    graph_ops: list[dict[str, Any]] = []
    table_ops: list[dict[str, Any]] = []
    aggregated = False
    counted = False

    def materialize_degrees() -> None:
        if "degree" not in visible:
            graph_ops.append(_op("degree"))
            visible.extend(DEGREE_COLUMNS)

    def check_column(stage: Stage, column: str) -> None:
        if column in visible:
            return
        if column in DEGREE_COLUMNS and not aggregated:
            materialize_degrees()
            return
        hint = ""
        for kernel, cols in KERNEL_COLUMNS.items():
            if column in cols:
                hint = f" (produced by the '{kernel}' stage)"
                break
        raise _bad(stage, f"unknown column {column!r}{hint}; visible "
                          f"columns: {', '.join(visible)}")

    for stage in pipeline.stages:
        if counted:
            raise _bad(stage, "'count' is terminal; nothing may follow")
        if stage.name in KERNEL_COLUMNS:
            if aggregated:
                raise _bad(stage, "graph kernels must run before the "
                                  "first aggregate (topk/sample/limit/"
                                  "count)")
            op = _plan_kernel(stage)
            already = [c for c in KERNEL_COLUMNS[stage.name]
                       if c in visible]
            if already:
                raise _bad(stage, f"column(s) {', '.join(already)} "
                                  "already materialized")
            graph_ops.append(op)
            visible.extend(KERNEL_COLUMNS[stage.name])
            continue
        if stage.name not in RELATIONAL:
            raise PlanError(f"unknown stage {stage.name!r}; choose from "
                            f"{', '.join(STAGES)}")
        op = _plan_relational(stage, visible)
        kind = op["kind"]
        if kind == "filter":
            check_column(stage, op["column"])
        elif kind == "topk":
            check_column(stage, op["column"])
        elif kind == "project":
            for c in op["columns"]:
                check_column(stage, c)
            visible = ["id"] + [c for c in op["columns"] if c != "id"]
            op["columns"] = tuple(visible)
        elif kind == "count":
            counted = True
            visible = ["count"]
        if kind in AGGREGATES:
            aggregated = True
        (table_ops if aggregated else graph_ops).append(op)

    graph_ops, fused = _fuse(graph_ops)

    n, m = _estimate_graph(source, graph_stats)
    estimates = []
    rows = 0
    plan = PhysicalPlan(source=source, scan=scan, graph_ops=graph_ops,
                        table_ops=table_ops, columns=tuple(visible),
                        fused=fused)
    for op in plan.ops:
        rows, cost = _cost_of(op, rows, n, m)
        estimates.append({"est_rows": rows, "est_cost": round(cost, 3)})
    plan.estimates = estimates
    return plan


def render_plan(plan_dict: dict[str, Any]) -> str:
    """Human-readable plan tree (the CLI's ``--explain`` output)."""
    lines = []
    src = plan_dict["source"]
    mode = "dynamic" if src["dynamic"] else "static"
    pin = f" version={src['version']}" if src["version"] is not None \
        else ""
    lines.append(f"plan (planner v{plan_dict['planner']}, total cost "
                 f"{plan_dict['total_cost']:g}):")
    for depth, stage in enumerate(plan_dict["stages"]):
        params = {k: v for k, v in stage.items()
                  if k not in ("kind", "est_rows", "est_cost")
                  and v is not None}
        if stage["kind"] == "scan":
            label = (f"scan[{src['dataset']} scale={src['scale']:g} "
                     f"seed={src['seed']} {mode}{pin}]")
        else:
            body = " ".join(f"{k}={v}" for k, v in params.items())
            label = f"{stage['kind']}[{body}]" if body \
                else stage["kind"]
        indent = "  " * depth + ("└─ " if depth else "")
        lines.append(f"{indent}{label:<40s} "
                     f"rows≈{stage['est_rows']} "
                     f"cost≈{stage['est_cost']:g}")
    if plan_dict.get("fused_stages"):
        lines.append(f"({plan_dict['fused_stages']} filter stage(s) "
                     "fused into kernel bounds)")
    return "\n".join(lines)
