"""Report rendering: ASCII tables, CSV export, paper-vs-measured views.

Every benchmark prints its figure's data as a table with the paper's
qualitative expectation alongside, so a run of ``pytest benchmarks/``
doubles as the EXPERIMENTS.md evidence log.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None, floatfmt: str = ".3f") -> str:
    """Render an ASCII table (monospace aligned)."""
    def fmt(x: Any) -> str:
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    srows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def write_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]],
              path: str | os.PathLike) -> None:
    """Write rows to a CSV file (for downstream plotting)."""
    with open(path, "w", newline="", encoding="ascii") as f:
        w = csv.writer(f)
        w.writerow(headers)
        w.writerows(rows)


def to_csv_string(headers: Sequence[str],
                  rows: Sequence[Sequence[Any]]) -> str:
    """CSV text of a table (stdout-friendly)."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(headers)
    w.writerows(rows)
    return buf.getvalue()


def bar(value: float, vmax: float, width: int = 40) -> str:
    """Unicode bar for quick visual comparison in terminal output."""
    if vmax <= 0:
        return ""
    n = int(round(width * min(value, vmax) / vmax))
    return "#" * n


def paper_note(text: str) -> str:
    """Standard 'paper reports ...' annotation line."""
    return f"  [paper: {text}]"
