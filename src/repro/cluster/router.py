"""The cluster front door: one socket, N shards behind it.

The router speaks the exact JSON-lines protocol the single-node service
does — a :class:`~repro.service.client.ServiceClient` pointed at a
router cannot tell it is talking to a cluster — and translates each op
into shard traffic:

* **single-dataset ops** (``run``/``characterize``) hash the dataset key
  onto the ring, walk the replica chain healthy-first, and fail over to
  the next replica on any *transport* failure (refused/reset/EOF/
  timeout/garbage).  Typed errors a shard answers with are forwarded,
  never retried — a bad request is bad on every replica.
* **scatter-gather ops** (``datasets``/``stats``/``shard_info``/
  ``batch``) fan out to every healthy shard concurrently under a
  per-shard timeout and aggregate what arrives; a missing shard makes
  the result *partial*, not an error.
* **local ops** (``ping``/``health``) answer from the router's own
  state — health is the tracker's live shard map.

Failed shards are ejected by the :class:`~repro.cluster.replica.
ReplicaTracker` after consecutive transport failures and readmitted by a
background health-probe loop whose pacing is the resilience layer's
deterministic :class:`~repro.resilience.retry.RetryPolicy` backoff.

Observability: ``cluster_route_total{shard,outcome}`` counts every
shard exchange (ok / failover / error / unreachable),
``cluster_fanout_latency_ms{op}`` times scatter-gather fans,
``router_request_latency_ms{op}`` times the front door, and each request
runs under a ``route:<op>`` span when a tracer is attached.

Duck-compatible with :class:`~repro.service.server.ServiceThread`
(``start``/``serve_forever``/``stop``/``host``/``port``), so the same
threaded harness hosts a router or a service.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Sequence

from .. import __version__
from ..core.errors import BadRequest, ProtocolError, ShardUnavailable
from ..obs.logs import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import SpanTracer, maybe_span
from ..resilience.retry import RetryPolicy
from ..service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Request,
    decode_frame,
    encode_error,
    encode_request,
    encode_response,
    parse_request,
    payload_to_error,
)
from .replica import DEFAULT_EJECT_AFTER, ReplicaTracker
from .ring import DEFAULT_VNODES, HashRing

log = get_logger("cluster.router")

#: Default TCP port for the cluster router (the single-node service
#: listens on 7421; keeping them distinct lets both run side by side).
ROUTER_PORT = 7430

#: Hard cap on one ``batch`` op's entry list.
MAX_BATCH_ENTRIES = 128

#: Transport-level failures that trigger replica failover.  Typed error
#: *frames* a shard answers with are not in this set — they forwarded,
#: not retried.
_TRANSPORT_ERRORS = (OSError, asyncio.TimeoutError, ProtocolError)


@dataclass(frozen=True)
class ShardAddress:
    """Where one shard listens."""

    name: str
    host: str
    port: int


class _ShardLink:
    """A small pool of persistent connections to one shard.

    Checkout pops an idle connection or dials a fresh one; check-in
    returns it unless the pool is full.  Any failure closes the
    connection — a poisoned stream never goes back in the pool.
    """

    def __init__(self, addr: ShardAddress, limit: int = 4):
        self.addr = addr
        self.limit = limit
        self._idle: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []
        self._seq = 0

    async def _checkout(self):
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing():
                writer.close()
                continue
            return reader, writer
        return await asyncio.open_connection(
            self.addr.host, self.addr.port, limit=MAX_FRAME_BYTES)

    def _checkin(self, reader, writer) -> None:
        if len(self._idle) < self.limit and not writer.is_closing():
            self._idle.append((reader, writer))
        else:
            writer.close()

    async def call(self, op: str, params: dict[str, Any]) -> dict:
        """One request/response exchange; returns the decoded frame.

        Raises ``OSError``/``ProtocolError`` on transport trouble — the
        router's failover boundary.
        """
        reader, writer = await self._checkout()
        try:
            self._seq += 1
            writer.write(encode_request(op, f"{self.addr.name}-{self._seq}",
                                        params))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ProtocolError(
                    f"shard {self.addr.name} closed the connection")
            if not line.endswith(b"\n"):
                raise ProtocolError(
                    f"truncated frame from shard {self.addr.name}")
            frame = decode_frame(line)
        except BaseException:
            writer.close()
            raise
        self._checkin(reader, writer)
        return frame

    def close(self) -> None:
        for _, writer in self._idle:
            writer.close()
        self._idle.clear()


class Router:
    """Hash-ring router over a static shard topology."""

    def __init__(self, shards: Sequence[ShardAddress], *,
                 replication: int = 1, vnodes: int = DEFAULT_VNODES,
                 attempt_timeout_s: float = 60.0,
                 fanout_timeout_s: float = 30.0,
                 eject_after: int = DEFAULT_EJECT_AFTER,
                 probe_interval_s: float = 0.5,
                 failover_policy: RetryPolicy | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer: SpanTracer | None = None,
                 pool_per_shard: int = 8):
        if not shards:
            raise ValueError("router needs at least one shard")
        names = [s.name for s in shards]
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        self.shards = {s.name: s for s in shards}
        self.ring = HashRing(names, vnodes=vnodes)
        self.replication = min(max(replication, 1), len(names))
        self.attempt_timeout_s = attempt_timeout_s
        self.fanout_timeout_s = fanout_timeout_s
        self.probe_interval_s = probe_interval_s
        # backoff between replica attempts: tiny, deterministic — a
        # failover should be fast, but two routers hammering the same
        # wounded shard should not do it in lockstep
        self.failover_policy = failover_policy or RetryPolicy(
            max_retries=0, base_delay=0.01, factor=2.0, max_delay=0.25)
        self.tracker = ReplicaTracker(names, eject_after=eject_after)
        self.tracer = tracer
        self._links = {name: _ShardLink(self.shards[name],
                                        limit=pool_per_shard)
                       for name in names}
        self.connections = 0
        self.op_counts: dict[str, int] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._probe_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None

        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self._m_route = reg.counter(
            "cluster_route_total",
            "shard exchanges by outcome (ok/failover/error/unreachable)",
            labels=("shard", "outcome"))
        self._m_fan = reg.histogram(
            "cluster_fanout_latency_ms",
            "scatter-gather fan-out wall time (ms), by op",
            labels=("op",))
        self._m_lat = reg.histogram(
            "router_request_latency_ms",
            "router front-door latency (ms), by op", labels=("op",))
        self._m_err = reg.counter(
            "router_errors_total",
            "error responses, by op and taxonomy kind",
            labels=("op", "kind"))
        reg.gauge("cluster_shards_healthy",
                  "shards the tracker currently considers up",
                  callback=lambda: float(len(self.tracker.healthy_shards())))
        reg.gauge("cluster_shards_total", "shards in the topology",
                  callback=lambda: float(len(self.shards)))

    # -- lifecycle (ServiceThread-compatible) --------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_FRAME_BYTES)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._probe_task = asyncio.get_running_loop().create_task(
            self._probe_loop())
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        for link in self._links.values():
            link.close()

    # -- background health probing -------------------------------------------

    async def _probe_loop(self) -> None:
        """Readmission path: periodically ``health``-probe down shards.

        Healthy shards are validated by live traffic; only ejected ones
        cost probes, and each shard's probe cadence follows the
        deterministic retry-backoff schedule.
        """
        try:
            while True:
                await asyncio.sleep(self.probe_interval_s)
                for name in self.tracker.down_shards():
                    self.tracker.record_probe(name)
                    try:
                        frame = await asyncio.wait_for(
                            self._links[name].call("health", {}),
                            self.fanout_timeout_s)
                    except _TRANSPORT_ERRORS:
                        await asyncio.sleep(
                            min(self.tracker.probe_delay(name), 1.0))
                        continue
                    if frame.get("ok") and (frame.get("result") or {}) \
                            .get("ok"):
                        self.tracker.record_success(name)
                        log.info("shard %s readmitted", name,
                                 extra={"shard": name})
        except asyncio.CancelledError:
            raise

    # -- shard exchanges -----------------------------------------------------

    async def _call(self, name: str, op: str,
                    params: dict[str, Any],
                    timeout_s: float | None = None) -> dict:
        frame = await asyncio.wait_for(
            self._links[name].call(op, params),
            timeout_s or self.attempt_timeout_s)
        return frame

    async def _route_single(self, req: Request, key: str,
                            replicas: Sequence[str],
                            span_args: dict) -> Any:
        """Walk a replica chain for one request; transport failures fail
        over, typed shard errors forward."""
        order = self.tracker.order(replicas)
        span_args["replicas"] = list(order)
        for i, shard in enumerate(order):
            if i:
                await asyncio.sleep(
                    self.failover_policy.delay(i, key))
            try:
                frame = await self._call(shard, req.op, req.params)
            except _TRANSPORT_ERRORS as e:
                self.tracker.record_failure(shard)
                self._m_route.labels(shard=shard,
                                     outcome="unreachable").inc()
                log.warning("shard %s unreachable for %s: %s",
                            shard, key, e,
                            extra={"shard": shard, "key": key})
                continue
            self.tracker.record_success(shard)
            if frame.get("ok"):
                outcome = "ok" if i == 0 else "failover"
                self._m_route.labels(shard=shard, outcome=outcome).inc()
                span_args["shard"] = shard
                span_args["outcome"] = outcome
                result = frame.get("result")
                if isinstance(result, dict):
                    result.setdefault("shard", shard)
                return result
            self._m_route.labels(shard=shard, outcome="error").inc()
            span_args["shard"] = shard
            span_args["outcome"] = "error"
            error = frame.get("error")
            if not isinstance(error, dict):
                raise ProtocolError(f"malformed failure frame from "
                                    f"{shard}: {frame!r}")
            raise payload_to_error(error)
        span_args["outcome"] = "unavailable"
        raise ShardUnavailable(key, tried=order)

    async def _scatter(self, op: str, params: dict[str, Any],
                       targets: Sequence[str] | None = None
                       ) -> tuple[dict[str, Any], list[str]]:
        """Fan ``op`` to ``targets`` (default: healthy shards, or all
        when the tracker has ejected everything) concurrently.

        Returns ``(results, missing)``: per-shard results for those that
        answered ok, and the shards that failed or timed out.
        """
        if targets is None:
            targets = self.tracker.healthy_shards() or tuple(self.shards)
        t0 = time.perf_counter()

        async def one(name: str):
            try:
                frame = await self._call(name, op, params,
                                         self.fanout_timeout_s)
            except _TRANSPORT_ERRORS as e:
                self.tracker.record_failure(name)
                self._m_route.labels(shard=name,
                                     outcome="unreachable").inc()
                return name, None, str(e)
            self.tracker.record_success(name)
            if frame.get("ok"):
                self._m_route.labels(shard=name, outcome="ok").inc()
                return name, frame.get("result"), None
            self._m_route.labels(shard=name, outcome="error").inc()
            err = frame.get("error") or {}
            return name, None, err.get("message", "error")

        outcomes = await asyncio.gather(*(one(n) for n in targets))
        self._m_fan.labels(op=op).observe(
            (time.perf_counter() - t0) * 1e3)
        results = {name: result for name, result, err in outcomes
                   if err is None}
        missing = sorted(name for name, _, err in outcomes
                         if err is not None)
        return results, missing

    # -- op dispatch ---------------------------------------------------------

    def _routing_key(self, params: dict[str, Any]) -> str:
        dataset = params.get("dataset", "ldbc")
        if not isinstance(dataset, str) or not dataset:
            raise BadRequest(f"dataset must be a non-empty string, "
                             f"got {dataset!r}")
        return dataset

    async def _dispatch(self, req: Request) -> Any:
        self.op_counts[req.op] = self.op_counts.get(req.op, 0) + 1
        with maybe_span(self.tracer, f"route:{req.op}") as span_args:
            return await self._dispatch_traced(req, span_args)

    async def _dispatch_traced(self, req: Request,
                               span_args: dict) -> Any:
        if req.op == "ping":
            return {"pong": True, "protocol": PROTOCOL_VERSION,
                    "server": __version__, "role": "router",
                    "shards": len(self.shards),
                    "replication": self.replication}
        if req.op == "health":
            healthy = self.tracker.healthy_shards()
            return {"ok": bool(healthy), "role": "router",
                    "shards": {name: name in healthy
                               for name in sorted(self.shards)}}
        if req.op in ("run", "characterize"):
            key = self._routing_key(req.params)
            replicas = self.ring.owners(key, self.replication)
            return await self._route_single(req, key, replicas,
                                            span_args)
        if req.op == "workloads":
            # identical on every shard: any healthy one will do, with
            # the same transport-failover walk a keyed op gets
            order = self.tracker.order(tuple(self.shards))
            return await self._route_single(req, "_workloads", order,
                                            span_args)
        if req.op == "datasets":
            return await self._gather_datasets(span_args)
        if req.op == "shard_info":
            results, missing = await self._scatter("shard_info",
                                                   req.params)
            span_args["missing"] = missing
            return {"role": "router", "shards": results,
                    "partial": bool(missing), "missing": missing}
        if req.op == "stats":
            return await self._gather_stats(span_args)
        if req.op == "batch":
            return await self._gather_batch(req, span_args)
        raise BadRequest(f"router does not serve op {req.op!r}")

    async def _gather_datasets(self, span_args: dict) -> list[dict]:
        """Union of every shard's owned slice, annotated with the shards
        currently serving each dataset."""
        results, missing = await self._scatter("datasets", {})
        span_args["missing"] = missing
        merged: dict[str, dict] = {}
        for shard, rows in sorted(results.items()):
            for row in rows or []:
                entry = merged.setdefault(row["key"], dict(row,
                                                           shards=[]))
                entry["shards"].append(shard)
        return [merged[k] for k in sorted(merged)]

    async def _gather_stats(self, span_args: dict) -> dict[str, Any]:
        results, missing = await self._scatter("stats", {})
        span_args["missing"] = missing
        return {"protocol": PROTOCOL_VERSION, "server": __version__,
                "role": "router",
                "connections": self.connections,
                "ops": dict(self.op_counts),
                "ring": {"shards": list(self.ring.nodes),
                         "vnodes": self.ring.vnodes,
                         "replication": self.replication},
                "health": self.tracker.snapshot(),
                "metrics": self.registry.snapshot(),
                "shards": results,
                "partial": bool(missing), "missing": missing}

    async def _gather_batch(self, req: Request,
                            span_args: dict) -> dict[str, Any]:
        """Multi-cell scatter: route every entry independently (each
        with its own replica failover), aggregate partial results."""
        entries = req.params.get("entries")
        if not isinstance(entries, list) or not entries:
            raise BadRequest("batch requires a non-empty 'entries' list")
        if len(entries) > MAX_BATCH_ENTRIES:
            raise BadRequest(f"batch of {len(entries)} entries exceeds "
                             f"{MAX_BATCH_ENTRIES}")

        async def one(entry) -> dict[str, Any]:
            if not isinstance(entry, dict):
                return {"ok": False,
                        "error": {"kind": BadRequest.kind,
                                  "type": "BadRequest",
                                  "message": "batch entry must be an "
                                             "object"}}
            op = entry.get("op", "run")
            if op not in ("run", "characterize"):
                return {"ok": False,
                        "error": {"kind": BadRequest.kind,
                                  "type": "BadRequest",
                                  "message": f"batch entries must be "
                                             f"run/characterize, got "
                                             f"{op!r}"}}
            params = entry.get("params") or {}
            sub = Request(op=op, id=req.id, params=params)
            sub_span: dict[str, Any] = {}
            try:
                key = self._routing_key(params)
                replicas = self.ring.owners(key, self.replication)
                result = await self._route_single(sub, key, replicas,
                                                  sub_span)
            except Exception as e:  # noqa: BLE001 — per-entry, in-band
                from ..service.protocol import error_to_payload
                return {"ok": False, "error": error_to_payload(e)}
            return {"ok": True, "result": result}

        results = await asyncio.gather(*(one(e) for e in entries))
        failed = sum(1 for r in results if not r["ok"])
        span_args["entries"] = len(entries)
        span_args["failed"] = failed
        return {"results": list(results), "entries": len(entries),
                "failed": failed, "partial": failed > 0}

    # -- connection handling (JSON-lines loop, as the service speaks) --------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._m_err.labels(op="_frame",
                                       kind=ProtocolError.kind).inc()
                    writer.write(encode_error(
                        None, ProtocolError("frame exceeds size limit")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    self._m_err.labels(op="_frame",
                                       kind=ProtocolError.kind).inc()
                    writer.write(encode_error(
                        None, ProtocolError("truncated frame at EOF")))
                    await writer.drain()
                    break
                req_id: str | None = None
                op = "_frame"
                t0 = time.perf_counter()
                try:
                    req = parse_request(decode_frame(line))
                    req_id = req.id
                    op = req.op
                    result = await self._dispatch(req)
                    writer.write(encode_response(req_id, result))
                except Exception as e:  # noqa: BLE001 — typed on the wire
                    kind = getattr(e, "kind", None)
                    self._m_err.labels(
                        op=op,
                        kind=kind if isinstance(kind, str)
                        else "internal").inc()
                    writer.write(encode_error(req_id, e))
                finally:
                    self._m_lat.labels(op=op).observe(
                        (time.perf_counter() - t0) * 1e3)
                await writer.drain()
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
