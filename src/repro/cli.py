"""Command-line interface: run, characterize, and report GraphBIG
workloads without writing Python.

Examples::

    python -m repro list --json
    python -m repro run BFS --dataset ldbc --scale 0.25
    python -m repro characterize TC --dataset twitter --scale 0.1
    python -m repro gpu CComp --dataset roadnet --scale 0.25
    python -m repro datasets
    python -m repro matrix --scale 0.05 --timeout 120 --retries 2 \\
        --checkpoint sweep.jsonl --out results/
    python -m repro matrix --scale 0.05 --resume --checkpoint sweep.jsonl
    python -m repro serve --port 7421 --workers 4
    python -m repro query run BFS --dataset ldbc --scale 0.1
    python -m repro query dyn_query BFS --dataset ldbc --scale 0.05
    python -m repro query-lang \\
        "from twitter | bfs root=42 depth<=3 | topk degree 10"
    python -m repro query-lang "from ldbc | cc | count" --explain
    python -m repro mutate --dataset ldbc --add-edge 3,9 --del-edge 0,1
    python -m repro loadgen --requests 200 --concurrency 16
    python -m repro loadgen --requests 200 --op dyn_query \\
        --workloads BFS,CComp --write-mix 0.3
    python -m repro stats --port 7421 --format prom
    python -m repro --log-level info --log-json serve
    python -m repro matrix --scale 0.05 --chaos-rate 0.2 \\
        --trace-out trace.json   # open in about:tracing
    python -m repro cluster serve --shards 4 --replication 2
    python -m repro cluster query run BFS --dataset roadnet --scale 0.05
    python -m repro cluster query-lang "from roadnet | topk degree 10"
    python -m repro cluster loadgen --spawn --shards 4 --requests 200 \\
        --dataset-skew 1.2 --query-mix 0.3
    python -m repro cluster plan --shards 4 --add shard-4 --synthetic 2000
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _spec(args):
    from .datagen.registry import make
    return make(args.dataset, scale=args.scale, seed=args.seed)


def cmd_list(args) -> int:
    from .service.server import workloads_payload
    if getattr(args, "json", False):
        print(json.dumps(workloads_payload(), indent=2))
        return 0
    from .workloads import table4
    print(f"{'workload':8s} {'category':26s} {'ctype':11s} {'gpu':4s} "
          "algorithm")
    for r in table4():
        print(f"{r.workload:8s} {r.category:26s} "
              f"{r.computation_type:11s} {'yes' if r.gpu else 'no':4s} "
              f"{r.algorithm}")
    return 0


def cmd_datasets(args) -> int:
    from .service.server import datasets_payload
    if getattr(args, "json", False):
        print(json.dumps(datasets_payload(), indent=2))
        return 0
    from .datagen.registry import REGISTRY
    print(f"{'key':10s} {'name':26s} {'source':12s} "
          f"{'paper V/E':>24s} {'default V':>10s}")
    for key, e in REGISTRY.items():
        print(f"{key:10s} {e.name:26s} {e.source.name:12s} "
              f"{e.paper_vertices:>10,}/{e.paper_edges:<12,} "
              f"{e.default_vertices:>9d}")
    return 0


def cmd_run(args) -> int:
    from .harness.runner import run_cpu_workload
    spec = _spec(args)
    print(f"dataset: {spec}")
    result, _ = run_cpu_workload(args.workload, spec,
                                 trace_store=args.trace_cache)
    for key, value in result.outputs.items():
        text = repr(value)
        print(f"  {key}: {text[:100] + '...' if len(text) > 100 else text}")
    return 0


def cmd_characterize(args) -> int:
    from .arch.machine import describe
    from .harness import characterize
    from .harness.runner import SCALED_XEON
    spec = _spec(args)
    print(f"dataset: {spec}")
    print(f"machine: {describe(SCALED_XEON)}")
    row = characterize(args.workload, spec, trace_store=args.trace_cache)
    for key, value in sorted(row.cpu.summary().items()):
        print(f"  {key:22s} {value:12.4f}")
    return 0


def cmd_gpu(args) -> int:
    from .gpu import run_gpu_workload
    spec = _spec(args)
    print(f"dataset: {spec}")
    _, metrics = run_gpu_workload(args.workload, spec)
    for key, value in sorted(metrics.summary().items()):
        print(f"  {key:18s} {value:12.6f}")
    return 0


def cmd_matrix(args) -> int:
    from .harness.export import export_all
    from .harness.report import failure_table, format_table, matrix_table
    from .harness.runner import CPU_WORKLOADS, GPU_WORKLOAD_SET
    from .resilience import (
        ChaosSpec,
        CheckpointStore,
        ExecutorConfig,
        RetryPolicy,
        matrix_cells,
        run_matrix,
    )

    from .datagen.registry import REGISTRY
    from .workloads import WORKLOADS

    workloads = (CPU_WORKLOADS if args.workloads == "all"
                 else tuple(args.workloads.split(",")))
    datasets = tuple(args.datasets.split(","))
    # config errors are deterministic: fail fast instead of burning the
    # per-cell retry budget on a name that can never resolve
    bad_w = sorted(set(workloads) - set(WORKLOADS))
    bad_d = sorted(set(datasets) - set(REGISTRY))
    if bad_w or bad_d:
        if bad_w:
            print(f"error: unknown workload(s) {', '.join(bad_w)}; "
                  f"choose from {', '.join(sorted(WORKLOADS))}",
                  file=sys.stderr)
        if bad_d:
            print(f"error: unknown dataset(s) {', '.join(bad_d)}; "
                  f"choose from {', '.join(sorted(REGISTRY))}",
                  file=sys.stderr)
        return 2
    if args.retries < 0 or args.timeout <= 0:
        print("error: --retries must be >= 0 and --timeout > 0",
              file=sys.stderr)
        return 2
    cells = matrix_cells(workloads, datasets, scale=args.scale,
                         seed=args.seed, machine=args.machine,
                         with_gpu=args.gpu,
                         gpu_workloads=GPU_WORKLOAD_SET,
                         trace_store=args.trace_cache)
    config = ExecutorConfig(
        timeout_s=args.timeout,
        policy=RetryPolicy(max_retries=args.retries, seed=args.seed),
        isolation=args.isolation)
    chaos = (ChaosSpec(p_fault=args.chaos_rate, seed=args.chaos_seed,
                       kinds=("crash", "oom", "hang"))
             if args.chaos_rate > 0 else None)
    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None
    if args.resume and checkpoint is None:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    print(f"matrix: {len(cells)} cells "
          f"({len(workloads)} workloads x {len(datasets)} datasets), "
          f"timeout {args.timeout:g}s, {args.retries} retries"
          + (", resuming" if args.resume else ""))
    from .obs import MetricsRegistry, SpanTracer, counter_total
    from .obs.tracing import set_global_tracer
    registry = MetricsRegistry()
    tracer = SpanTracer() if args.trace_out else None
    if tracer is not None:
        # global install so inline-isolation characterize phases nest
        # under the per-cell spans (subprocess workers cannot report)
        set_global_tracer(tracer)
    try:
        result = run_matrix(cells, config=config, chaos=chaos,
                            checkpoint=checkpoint, resume=args.resume,
                            progress=lambda line: print(f"  {line}"),
                            tracer=tracer, registry=registry)
    finally:
        if tracer is not None:
            set_global_tracer(None)
    print(f"\ncompleted {len(result.rows)}/{result.total_cells} cells "
          f"({result.resumed} resumed, {result.executed} executed, "
          f"{len(result.failures)} failed)")
    snap = registry.snapshot()
    retries = counter_total(snap, "matrix_retries_total")
    if retries or result.failures:
        faults = {s["labels"]["kind"]: int(s["value"])
                  for s in snap.get("matrix_faults_total",
                                    {}).get("samples", [])}
        print(f"retries: {int(retries)}, faults by kind: {faults}")
    if args.trace_out:
        tracer.write_chrome_trace(args.trace_out)
        print(f"wrote Chrome trace ({len(tracer)} spans) to "
              f"{args.trace_out} — open in about:tracing")
    print()
    print(matrix_table(result.rows, result.failures, metric=args.metric))
    if result.failures:
        print()
        print(format_table(
            ["workload", "dataset", "failure", "attempts", "detail"],
            failure_table(result.failures), title="failed cells"))
    if args.out:
        written = export_all(result.rows, args.out,
                             failures=result.failures)
        print()
        for path in written:
            print(f"wrote {path}")
    return 0 if result.complete else 1


def _build_service(args):
    """Construct a GraphService from serve/loadgen-style args."""
    from .resilience import ChaosSpec
    from .service import (
        CacheTiers,
        GraphService,
        PoolConfig,
        SchedulerConfig,
    )
    caching = not args.no_cache
    caches = (CacheTiers.build(row_capacity=args.cache_size,
                               ttl_s=args.cache_ttl)
              if caching else CacheTiers.disabled())
    chaos = (ChaosSpec(p_fault=args.chaos_rate, seed=args.chaos_seed,
                       kinds=("crash", "oom"))
             if args.chaos_rate > 0 else None)
    governor = None
    if getattr(args, "qos", False):
        from .tenancy import QosConfig, TenantGovernor, TenantPolicy
        governor = TenantGovernor(QosConfig(
            default_policy=TenantPolicy(rate=args.qos_rate,
                                        burst=args.qos_burst),
            row_capacity=args.cache_size))
    return GraphService(
        pool_config=PoolConfig(size=args.workers,
                               isolation=args.isolation,
                               timeout_s=args.timeout,
                               retries=args.retries),
        scheduler_config=SchedulerConfig(max_pending=args.max_pending,
                                         batching=not args.no_batch,
                                         batch_window_s=args.batch_window,
                                         caching=caching),
        caches=caches, chaos=chaos, governor=governor)


def cmd_serve(args) -> int:
    import asyncio

    service = _build_service(args)

    async def _serve() -> None:
        port = await service.start(args.host, args.port)
        print(f"repro service listening on {args.host}:{port} "
              f"({args.workers} workers, {args.isolation} isolation, "
              f"cache {'off' if args.no_cache else 'on'}, "
              f"batching {'off' if args.no_batch else 'on'})")
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def cmd_query(args) -> int:
    from .core.errors import ServiceError
    from .service import ServiceClient

    params = {}
    if args.op in ("run", "characterize"):
        if not args.workload:
            print(f"error: op {args.op!r} requires a workload",
                  file=sys.stderr)
            return 2
        params = {"workload": args.workload, "dataset": args.dataset,
                  "scale": args.scale, "seed": args.seed,
                  "machine": args.machine, "gpu": args.gpu}
    elif args.op == "dyn_query":
        if not args.workload:
            print("error: op 'dyn_query' requires a workload "
                  "(BFS or CComp)", file=sys.stderr)
            return 2
        params = {"workload": args.workload, "dataset": args.dataset,
                  "scale": args.scale, "seed": args.seed,
                  "root": getattr(args, "root", 0)}
    try:
        with ServiceClient(args.host, args.port,
                           timeout_s=args.timeout) as client:
            result = client.request(args.op, **params)
    except ConnectionRefusedError:
        print(f"error: no service at {args.host}:{args.port} "
              "(start one with `python -m repro serve`)", file=sys.stderr)
        return 2
    except ServiceError as e:
        print(json.dumps({"kind": getattr(e, "kind", "service"),
                          "message": getattr(e, "message", str(e))}),
              file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_query_lang(args) -> int:
    from .core.errors import ServiceError
    from .service import ServiceClient

    op = "explain" if args.explain else "query"
    try:
        with ServiceClient(args.host, args.port,
                           timeout_s=args.timeout) as client:
            result = client.request(op, q=args.query)
    except ConnectionRefusedError:
        print(f"error: no service at {args.host}:{args.port} "
              "(start one with `python -m repro serve` or "
              "`python -m repro cluster serve`)", file=sys.stderr)
        return 2
    except ServiceError as e:
        print(json.dumps({"kind": getattr(e, "kind", "service"),
                          "message": getattr(e, "message", str(e)),
                          "shard": getattr(e, "shard", None)}),
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if args.explain:
        from .query.plan import render_plan
        print(render_plan(result["plan"]))
        print(f"merge:   {' -> '.join(result['merge'])}")
        print(f"digest:  {result['digest']} "
              f"(plan_cached={result['plan_cached']})")
        return 0
    table = result["table"]
    widths = [max(len(str(c)),
                  *(len(str(row[i])) for row in table["rows"]))
              if table["rows"] else len(str(c))
              for i, c in enumerate(table["columns"])]
    print("  ".join(str(c).ljust(w)
                    for c, w in zip(table["columns"], widths)))
    for row in table["rows"]:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    trailer = (f"({result['rows']} rows, plan {result['plan']}, "
               f"served {result.get('served', '?')}")
    if result.get("distributed"):
        trailer += f", {result['parts']} parts"
    if result.get("version") is not None:
        trailer += f", version {result['version']}"
    print(trailer + ")")
    return 0


def _parse_mutate_flags(args) -> list[dict]:
    """Turn the repeatable ``mutate`` flags + optional --ops file into
    wire op dicts (validation happens server-side)."""
    ops: list[dict] = []
    for vid in args.add_vertex:
        ops.append({"op": "add_vertex", "vid": int(vid)})
    for vid in args.del_vertex:
        ops.append({"op": "del_vertex", "vid": int(vid)})
    for kind, pairs in (("add_edge", args.add_edge),
                        ("del_edge", args.del_edge)):
        for pair in pairs:
            src, dst = pair.split(",", 1)
            ops.append({"op": kind, "src": int(src), "dst": int(dst)})
    for triple in args.set_prop:
        vid, name, value = triple.split(",", 2)
        ops.append({"op": "set_prop", "vid": int(vid),
                    "name": name, "value": value})
    if args.ops:
        raw = (sys.stdin.read() if args.ops == "-"
               else pathlib.Path(args.ops).read_text())
        extra = json.loads(raw)
        if not isinstance(extra, list):
            raise ValueError("--ops file must hold a JSON list of ops")
        ops.extend(extra)
    return ops


def cmd_mutate(args) -> int:
    from .core.errors import ServiceError
    from .service import ServiceClient

    try:
        ops = _parse_mutate_flags(args)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"error: bad mutation spec: {e}", file=sys.stderr)
        return 2
    if not ops:
        print("error: no ops given (use --add-edge/--del-edge/"
              "--add-vertex/--del-vertex/--set-prop or --ops FILE)",
              file=sys.stderr)
        return 2
    try:
        with ServiceClient(args.host, args.port,
                           timeout_s=args.timeout) as client:
            result = client.mutate(args.dataset, ops, scale=args.scale,
                                   seed=args.seed, strict=args.strict)
    except ConnectionRefusedError:
        print(f"error: no service at {args.host}:{args.port} "
              "(start one with `python -m repro serve`)", file=sys.stderr)
        return 2
    except ServiceError as e:
        print(json.dumps({"kind": getattr(e, "kind", "service"),
                          "message": getattr(e, "message", str(e))}),
              file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _write_factory(args):
    """Build the loadgen mutation factory from --write-mix knobs
    (writes churn the first listed dataset's mutable graph)."""
    if getattr(args, "write_mix", 0.0) <= 0:
        return None
    from .datagen.registry import scaled_vertices
    from .service.loadgen import churn_write_factory
    dataset = args.datasets.split(",")[0]
    return churn_write_factory(
        dataset, scaled_vertices(dataset, args.scale),
        scale=args.scale, seed=0, batch=args.write_batch)


def _query_factory(args):
    """Build the loadgen DSL-query factory from --query-mix knobs
    (queries sample the template pool over the listed datasets)."""
    if getattr(args, "query_mix", 0.0) <= 0:
        return None
    from .service.loadgen import dsl_query_factory
    return dsl_query_factory(tuple(args.datasets.split(",")),
                             scale=args.scale, seed=0)


def _stamp_tenants(plan, args):
    """Apply --tenants/--tenant-skew: stamp a tenant identity onto every
    request (a separate RNG stream, so the request content is unchanged
    from the tenantless plan)."""
    n = getattr(args, "tenants", 0) or 0
    if n <= 0:
        return plan
    from .service.loadgen import assign_tenants
    return assign_tenants(plan, n,
                          skew=getattr(args, "tenant_skew", 0.0),
                          seed=args.seed)


def cmd_loadgen(args) -> int:
    from .obs import SpanTracer
    from .service import LoadGenerator, ServiceThread, schedule, workload_mix
    from .service.loadgen import plan_imbalance

    mix = workload_mix(tuple(args.workloads.split(",")),
                       tuple(args.datasets.split(",")),
                       scale=args.scale, seeds=args.seeds, op=args.op)
    skew = getattr(args, "dataset_skew", 0.0)
    plan = schedule(mix, args.requests, seed=args.seed,
                    dataset_skew=skew,
                    write_mix=getattr(args, "write_mix", 0.0),
                    write_factory=_write_factory(args),
                    query_mix=getattr(args, "query_mix", 0.0),
                    query_factory=_query_factory(args))
    plan = _stamp_tenants(plan, args)
    tracer = SpanTracer() if args.trace_out else None
    gen_args = dict(concurrency=args.concurrency, timeout_s=args.timeout,
                    deadline_s=getattr(args, "deadline", None),
                    tracer=tracer)
    if not args.json:
        print(f"loadgen: {args.requests} requests over {len(mix)} "
              f"distinct queries, {args.concurrency} closed-loop workers"
              + (f", dataset skew {skew:g}" if skew > 0 else ""))
        if "," in args.datasets:
            imb = plan_imbalance(plan, lambda d: d)
            print(f"plan: per-dataset load imbalance {imb:.2f}x "
                  "(max/mean; 1.0 = uniform)")
    if args.spawn:
        service = _build_service(args)
        with ServiceThread(service) as st:
            report = LoadGenerator(st.host, st.port, **gen_args).run(plan)
            stats = service.stats()
    else:
        try:
            report = LoadGenerator(args.host, args.port,
                                   **gen_args).run(plan)
        except ConnectionRefusedError:
            print(f"error: no service at {args.host}:{args.port} "
                  "(start one, or pass --spawn)", file=sys.stderr)
            return 2
        stats = None
    if tracer is not None:
        tracer.write_chrome_trace(args.trace_out)
        if not args.json:
            print(f"wrote Chrome trace ({len(tracer)} spans) to "
                  f"{args.trace_out}")
    if args.json:
        payload = report.summary()
        if stats is not None:
            payload["server_stats"] = stats
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.format())
        if stats is not None:
            print(f"server       scheduler={stats['scheduler']}")
    return 0 if report.failed == 0 else 1


def cmd_stats(args) -> int:
    from .obs import quantile_from_snapshot, render_prometheus
    from .service import ServiceClient

    try:
        with ServiceClient(args.host, args.port,
                           timeout_s=args.timeout) as client:
            stats = client.stats()
    except ConnectionRefusedError:
        print(f"error: no service at {args.host}:{args.port} "
              "(start one with `python -m repro serve`)", file=sys.stderr)
        return 2
    metrics = stats.get("metrics", {})
    if args.format == "json":
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    if args.format == "prom":
        sys.stdout.write(render_prometheus(metrics))
        return 0
    # human summary: the counters an operator reaches for first
    print(f"server       {stats.get('server')} "
          f"(protocol {stats.get('protocol')}), "
          f"{stats.get('connections')} connections")
    print(f"ops          {stats.get('ops')}")
    sched = stats.get("scheduler", {})
    print(f"scheduler    pending={sched.get('pending')} "
          f"cache_hits={sched.get('cache_hits')} "
          f"coalesced={sched.get('coalesced')} "
          f"executed={sched.get('executed')} "
          f"rejected={sched.get('rejected')}")
    pool = stats.get("pool", {})
    print(f"pool         executed={pool.get('executed')} "
          f"failed={pool.get('failed')} "
          f"worker_restarts={pool.get('worker_restarts')} "
          f"failures={pool.get('failures_by_kind')}")
    for tier, c in sorted(stats.get("cache", {}).items()):
        print(f"cache/{tier:9s} hits={c.get('hits')} "
              f"misses={c.get('misses')} "
              f"hit_rate={c.get('hit_rate')}")
    rel = stats.get("reliability")
    if rel is not None:
        if not rel.get("enabled"):
            print("reliability  off")
        else:
            budget = rel.get("retry_budget", {})
            print(f"reliability  on  retry_budget "
                  f"tokens={budget.get('tokens')} "
                  f"granted={budget.get('granted')} "
                  f"denied={budget.get('denied')}")
            for name, b in sorted(rel.get("breakers", {}).items()):
                print(f"breaker/{name:9s} state={b.get('state')} "
                      f"consecutive_failures="
                      f"{b.get('consecutive_failures')} "
                      f"transitions={b.get('transitions')}")
            hedge = rel.get("hedge", {})
            if hedge.get("quantile") is not None:
                print(f"hedge        p{hedge['quantile']:g} "
                      f"delay_s={hedge.get('delay_s')} "
                      f"samples={hedge.get('samples')}")
            stale = rel.get("stale")
            if stale is not None:
                print(f"stale-cache  entries={stale.get('entries')} "
                      f"hits={stale.get('hits')} "
                      f"cap_s={stale.get('cap_s')}")
    lat = metrics.get("service_request_latency_ms", {})
    for sample in lat.get("samples", []):
        op = sample.get("labels", {}).get("op", "?")
        if not sample.get("count"):
            continue
        p50 = quantile_from_snapshot(sample, 50)
        p95 = quantile_from_snapshot(sample, 95)
        p99 = quantile_from_snapshot(sample, 99)
        print(f"latency/{op:12s} n={sample['count']:<6d} "
              f"p50<={p50:g}ms p95<={p95:g}ms p99<={p99:g}ms")
    return 0


def _cluster_spec(args):
    from .cluster import ClusterSpec
    datasets = (tuple(args.datasets.split(","))
                if getattr(args, "datasets", None) else ())
    return ClusterSpec.of(args.shards, replication=args.replication,
                          vnodes=args.vnodes, datasets=datasets)


def cmd_cluster_serve(args) -> int:
    import time

    from .cluster import ClusterProcesses, ClusterThread
    from .cluster.router import ReliabilityConfig

    spec = _cluster_spec(args)
    harness_cls = ClusterProcesses if args.processes else ClusterThread
    reliability = (ReliabilityConfig.disabled() if args.no_reliability
                   else ReliabilityConfig(
                       hedge_quantile=args.hedge_quantile,
                       stale_cap_s=args.stale_cap))
    kwargs = dict(host=args.host, port=args.port,
                  router_kwargs={"reliability": reliability})
    if args.processes:
        kwargs["isolation"] = args.isolation
        if args.netchaos:
            print("error: --netchaos requires thread shards "
                  "(drop --processes)", file=sys.stderr)
            return 2
    elif args.netchaos:
        kwargs["netchaos"] = True
        kwargs["netchaos_seed"] = args.netchaos_seed
        if args.chaos_latency_ms > 0:
            from .resilience.netchaos import NetFaultSpec
            kwargs["netchaos_faults"] = NetFaultSpec(
                latency_ms=args.chaos_latency_ms)
    with harness_cls(spec, **kwargs) as cluster:
        print(f"cluster router listening on {args.host}:"
              f"{cluster.router_port} ({args.shards} shards, "
              f"replication {args.replication}, "
              f"{'process' if args.processes else 'thread'} shards, "
              f"reliability "
              f"{'off' if args.no_reliability else 'on'}"
              f"{', netchaos' if getattr(args, 'netchaos', False) else ''})")
        for name, owned in sorted(cluster.assignment.items()):
            addr = (cluster.addresses[name]
                    if not args.processes
                    else cluster.shards[name].address)
            print(f"  {name:10s} {addr.host}:{addr.port:<6d} "
                  f"owns {', '.join(owned) or '(nothing)'}")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nshutting down cluster")
    return 0


def cmd_cluster_shard(args) -> int:
    import asyncio

    from .cluster import ShardService
    from .service import PoolConfig

    datasets = (frozenset(args.datasets.split(","))
                if args.datasets else None)
    service = ShardService(
        args.name, datasets,
        pool_config=PoolConfig(size=args.workers,
                               isolation=args.isolation))

    async def _serve() -> None:
        port = await service.start(args.host, args.port)
        # the one ready line a parent process harness blocks on
        print(json.dumps({"shard": args.name, "host": args.host,
                          "port": port}), flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_cluster_query(args) -> int:
    # the router speaks the service protocol: the single-node query
    # handler works verbatim, only the default port and op set differ
    return cmd_query(args)


def cmd_cluster_loadgen(args) -> int:
    from .cluster import ClusterThread
    from .service import LoadGenerator, schedule, workload_mix
    from .service.loadgen import plan_imbalance

    spec = _cluster_spec(args)
    datasets = tuple(args.datasets.split(","))
    mix = workload_mix(tuple(args.workloads.split(",")), datasets,
                       scale=args.scale, seeds=args.seeds, op=args.op)
    plan = schedule(mix, args.requests, seed=args.seed,
                    dataset_skew=args.dataset_skew,
                    write_mix=getattr(args, "write_mix", 0.0),
                    write_factory=_write_factory(args),
                    query_mix=getattr(args, "query_mix", 0.0),
                    query_factory=_query_factory(args))
    plan = _stamp_tenants(plan, args)
    ring = spec.ring()
    imb_ds = plan_imbalance(plan, lambda d: d)
    imb_shard = plan_imbalance(plan, ring.owner)
    if not args.json:
        print(f"cluster loadgen: {args.requests} requests, "
              f"{args.shards} shards, replication {args.replication}, "
              f"dataset skew {args.dataset_skew:g}")
        print(f"plan: imbalance {imb_ds:.2f}x across datasets, "
              f"{imb_shard:.2f}x across shards (max/mean)")
    gen_args = dict(concurrency=args.concurrency,
                    timeout_s=args.timeout,
                    deadline_s=getattr(args, "deadline", None))
    if args.spawn:
        with ClusterThread(spec, host=args.host) as cluster:
            report = LoadGenerator(args.host, cluster.router_port,
                                   **gen_args).run(plan)
    else:
        try:
            report = LoadGenerator(args.host, args.port,
                                   **gen_args).run(plan)
        except ConnectionRefusedError:
            print(f"error: no router at {args.host}:{args.port} "
                  "(start one with `python -m repro cluster serve`, "
                  "or pass --spawn)", file=sys.stderr)
            return 2
    if args.json:
        payload = report.summary()
        payload["imbalance"] = {"datasets": round(imb_ds, 4),
                                "shards": round(imb_shard, 4)}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.failed == 0 else 1


def cmd_cluster_plan(args) -> int:
    from .cluster import HashRing, plan_rebalance, synthetic_keys
    from .datagen.registry import REGISTRY

    before_nodes = tuple(f"shard-{i}" for i in range(args.shards))
    after_nodes = tuple(before_nodes) + tuple(
        n for n in (args.add or []) if n not in before_nodes)
    after_nodes = tuple(n for n in after_nodes
                        if n not in set(args.remove or []))
    if not after_nodes:
        print("error: the change removes every shard", file=sys.stderr)
        return 2
    before = HashRing(before_nodes, vnodes=args.vnodes)
    after = HashRing(after_nodes, vnodes=args.vnodes)
    keys = (synthetic_keys(args.synthetic) if args.synthetic
            else sorted(REGISTRY))
    plan = plan_rebalance(before, after, keys)
    if args.json:
        print(json.dumps(plan.summary(), indent=2, sort_keys=True))
        return 0
    s = plan.summary()
    print(f"rebalance: {len(before.nodes)} -> {len(after.nodes)} shards "
          f"over {s['total_keys']} keys")
    print(f"moved: {s['moved']} keys ({100 * s['fraction_moved']:.1f}% "
          f"— a naive hash%N would move ~"
          f"{100 * (1 - 1 / len(after.nodes)):.0f}%)")
    for shard, counts in sorted(s["per_shard"].items()):
        if counts["gained"] or counts["lost"]:
            print(f"  {shard:10s} +{counts['gained']} -{counts['lost']}")
    return 0


def cmd_cluster(args) -> int:
    handler = {"serve": cmd_cluster_serve, "shard": cmd_cluster_shard,
               "query": cmd_cluster_query,
               "query-lang": cmd_query_lang,
               "loadgen": cmd_cluster_loadgen, "plan": cmd_cluster_plan}
    return handler[args.cluster_command](args)


def build_parser() -> argparse.ArgumentParser:
    from . import __version__
    from .service.protocol import PROTOCOL_VERSION

    p = argparse.ArgumentParser(
        prog="repro",
        description="GraphBIG reproduction: run and characterize "
                    "graph-computing workloads")
    p.add_argument("--version", action="version",
                   version=f"repro {__version__} "
                           f"(protocol {PROTOCOL_VERSION})")
    p.add_argument("--log-level", default="warning",
                   choices=("debug", "info", "warning", "error"),
                   help="logging threshold for the repro.* loggers "
                        "(default: warning)")
    p.add_argument("--log-json", action="store_true",
                   help="structured JSON-lines log output (one object "
                        "per record, extra fields included)")
    sub = p.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="list the 13 workloads (Table 4)")
    lst.add_argument("--json", action="store_true",
                     help="machine-readable output")
    ds = sub.add_parser("datasets",
                        help="list the dataset registry (Table 5)")
    ds.add_argument("--json", action="store_true",
                    help="machine-readable output")

    def add_common(sp):
        sp.add_argument("workload", help="workload name, e.g. BFS")
        sp.add_argument("--trace-cache", default=None, metavar="DIR",
                        help="content-addressed trace store directory: "
                             "run the workload once, replay everywhere")
        sp.add_argument("--dataset", default="ldbc",
                        help="registry dataset key (default: ldbc)")
        sp.add_argument("--scale", type=float, default=0.25,
                        help="dataset scale factor (default: 0.25)")
        sp.add_argument("--seed", type=int, default=0)

    add_common(sub.add_parser("run", help="run a workload, print outputs"))
    add_common(sub.add_parser(
        "characterize", help="run + CPU architectural characterization"))
    add_common(sub.add_parser("gpu", help="run the GPU kernel + metrics"))

    m = sub.add_parser(
        "matrix",
        help="resilient full-matrix sweep: isolation, timeout/retry, "
             "checkpoint-resume")
    m.add_argument("--workloads", default="all",
                   help="comma-separated workload names, or 'all' "
                        "(default: the 13 CPU workloads)")
    m.add_argument("--datasets",
                   default="twitter,knowledge,watson,roadnet,ldbc",
                   help="comma-separated registry dataset keys "
                        "(default: the Table 7 suite)")
    m.add_argument("--scale", type=float, default=0.25,
                   help="dataset scale factor (default: 0.25)")
    m.add_argument("--seed", type=int, default=0)
    m.add_argument("--machine", default="scaled",
                   choices=("scaled", "test", "paper"),
                   help="named machine configuration (default: scaled)")
    m.add_argument("--gpu", action="store_true",
                   help="also run the GPU model on GPU-capable workloads")
    m.add_argument("--timeout", type=float, default=300.0,
                   help="per-cell wall-clock timeout in seconds "
                        "(default: 300)")
    m.add_argument("--retries", type=int, default=2,
                   help="retries per failing cell, exponential backoff "
                        "(default: 2)")
    m.add_argument("--resume", action="store_true",
                   help="skip cells already completed in --checkpoint")
    m.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="JSON-lines journal of completed cells "
                        "(enables resume)")
    m.add_argument("--out", default=None, metavar="DIR",
                   help="export CSV views (incl. failures.csv) here")
    m.add_argument("--metric", default="ipc",
                   help="metric for the printed grid (default: ipc)")
    m.add_argument("--isolation", default="process",
                   choices=("process", "inline"),
                   help="worker isolation; 'inline' skips subprocesses "
                        "(no real timeouts — debugging only)")
    m.add_argument("--chaos-rate", type=float, default=0.0,
                   help="deterministic fault-injection probability per "
                        "cell attempt (testing the harness itself)")
    m.add_argument("--chaos-seed", type=int, default=0,
                   help="seed for the chaos RNG (default: 0)")
    m.add_argument("--trace-cache", default=None, metavar="DIR",
                   help="content-addressed trace store: each (workload, "
                        "dataset) executes once; machine variants replay "
                        "the stored trace")
    m.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write per-cell spans (with retry children) as "
                        "Chrome Trace Event JSON — open in about:tracing")

    def add_service_knobs(sp):
        sp.add_argument("--workers", type=int, default=4,
                        help="concurrent execution slots (default: 4)")
        sp.add_argument("--isolation", default="process",
                        choices=("process", "inline"),
                        help="worker isolation; 'inline' skips "
                             "subprocesses (default: process)")
        sp.add_argument("--timeout", type=float, default=300.0,
                        help="per-request execution timeout in seconds "
                             "(default: 300)")
        sp.add_argument("--retries", type=int, default=0,
                        help="server-side retries per failing request "
                             "(default: 0 — clients decide)")
        sp.add_argument("--cache-size", type=int, default=1024,
                        help="row-cache capacity (default: 1024)")
        sp.add_argument("--cache-ttl", type=float, default=None,
                        help="row-cache TTL in seconds (default: no "
                             "expiry)")
        sp.add_argument("--no-cache", action="store_true",
                        help="disable the result cache tiers")
        sp.add_argument("--no-batch", action="store_true",
                        help="disable micro-batch coalescing")
        sp.add_argument("--max-pending", type=int, default=64,
                        help="admission limit on queued+running "
                             "executions (default: 64)")
        sp.add_argument("--batch-window", type=float, default=0.0,
                        help="seconds to hold a fresh execution for "
                             "duplicate pile-on (default: 0)")
        sp.add_argument("--chaos-rate", type=float, default=0.0,
                        help="deterministic worker fault-injection "
                             "probability (testing)")
        sp.add_argument("--chaos-seed", type=int, default=0)
        sp.add_argument("--qos", action="store_true",
                        help="enable per-tenant QoS: admission quotas, "
                             "weighted-fair scheduling, partitioned "
                             "cache shares")
        sp.add_argument("--qos-rate", type=float, default=200.0,
                        help="per-tenant admission rate in req/s "
                             "(default: 200)")
        sp.add_argument("--qos-burst", type=float, default=50.0,
                        help="per-tenant admission burst (default: 50)")

    sv = sub.add_parser(
        "serve",
        help="long-lived graph-query service: micro-batching, result "
             "caching, isolated workers")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=7421,
                    help="TCP port (default: 7421; 0 picks a free one)")
    add_service_knobs(sv)

    q = sub.add_parser("query",
                       help="send one request to a running service, "
                            "print the JSON result (for pipeline-DSL "
                            "queries use `repro query-lang`)")
    q.add_argument("op", choices=("ping", "run", "characterize",
                                  "dyn_query", "datasets", "workloads",
                                  "stats"))
    q.add_argument("workload", nargs="?", default=None,
                   help="workload name (run/characterize/dyn_query only)")
    q.add_argument("--dataset", default="ldbc")
    q.add_argument("--scale", type=float, default=0.25)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--machine", default="scaled",
                   choices=("scaled", "test", "paper"))
    q.add_argument("--gpu", action="store_true")
    q.add_argument("--root", type=int, default=0,
                   help="BFS root vertex (dyn_query only)")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=7421)
    q.add_argument("--timeout", type=float, default=300.0)

    ql = sub.add_parser(
        "query-lang",
        help="run a pipeline-DSL query against a running service, "
             'e.g. "from twitter | bfs root=42 depth<=3 '
             '| topk degree 10"')
    ql.add_argument("query", help="pipeline DSL text: "
                                  "from DATASET | stage | stage ...")
    ql.add_argument("--explain", action="store_true",
                    help="print the physical plan with per-stage cost "
                         "estimates instead of executing")
    ql.add_argument("--json", action="store_true",
                    help="machine-readable output")
    ql.add_argument("--host", default="127.0.0.1")
    ql.add_argument("--port", type=int, default=7421)
    ql.add_argument("--timeout", type=float, default=300.0)

    mu = sub.add_parser(
        "mutate",
        help="apply a mutation batch to a service's mutable graph: "
             "add/del vertices and edges, set vertex properties")
    mu.add_argument("--dataset", default="ldbc",
                    help="registry dataset whose mutable copy to edit")
    mu.add_argument("--scale", type=float, default=0.05)
    mu.add_argument("--seed", type=int, default=0)
    mu.add_argument("--add-vertex", action="append", default=[],
                    metavar="VID", help="add vertex VID (repeatable)")
    mu.add_argument("--del-vertex", action="append", default=[],
                    metavar="VID", help="remove vertex VID (repeatable)")
    mu.add_argument("--add-edge", action="append", default=[],
                    metavar="SRC,DST", help="add edge (repeatable)")
    mu.add_argument("--del-edge", action="append", default=[],
                    metavar="SRC,DST", help="remove edge (repeatable)")
    mu.add_argument("--set-prop", action="append", default=[],
                    metavar="VID,NAME,VALUE",
                    help="set vertex property (repeatable)")
    mu.add_argument("--ops", default=None, metavar="FILE",
                    help="JSON file with a list of op objects "
                         "('-' reads stdin); applied after the flag ops")
    mu.add_argument("--strict", action="store_true",
                    help="reject the whole batch if any op is a no-op "
                         "(default: skip and report)")
    mu.add_argument("--host", default="127.0.0.1")
    mu.add_argument("--port", type=int, default=7421)
    mu.add_argument("--timeout", type=float, default=300.0)

    lg = sub.add_parser(
        "loadgen",
        help="closed-loop load generator: throughput + p50/p95/p99 "
             "latency against a live service")
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=7421)
    lg.add_argument("--spawn", action="store_true",
                    help="spin up an in-process service for the run "
                         "(uses the serve knobs below)")
    lg.add_argument("--requests", type=int, default=200,
                    help="total requests to issue (default: 200)")
    lg.add_argument("--concurrency", type=int, default=16,
                    help="closed-loop workers (default: 16)")
    lg.add_argument("--workloads", default="BFS,CComp,kCore",
                    help="comma-separated workload mix")
    lg.add_argument("--datasets", default="ldbc",
                    help="comma-separated dataset mix")
    lg.add_argument("--scale", type=float, default=0.05)
    lg.add_argument("--seeds", type=int, default=1,
                    help="distinct seeds per combo — widens the query "
                         "pool, thins duplicates (default: 1)")
    lg.add_argument("--seed", type=int, default=0,
                    help="schedule RNG seed (default: 0)")
    lg.add_argument("--op", default="run",
                    choices=("run", "characterize", "dyn_query"))
    lg.add_argument("--write-mix", type=float, default=0.0,
                    help="fraction of requests that are mutation "
                         "batches against the first-listed dataset "
                         "(default: 0 — read-only)")
    lg.add_argument("--write-batch", type=int, default=8,
                    help="ops per mutation batch (default: 8)")
    lg.add_argument("--query-mix", type=float, default=0.0,
                    help="fraction of requests that are pipeline-DSL "
                         "queries drawn from the template pool over "
                         "the listed datasets (default: 0)")
    lg.add_argument("--dataset-skew", type=float, default=0.0,
                    help="Zipf exponent over the dataset mix (0 = "
                         "uniform); skews request volume toward the "
                         "first-listed datasets")
    lg.add_argument("--tenants", type=int, default=0, metavar="N",
                    help="stamp each request with one of N tenant "
                         "identities (default: 0 — no tenant field on "
                         "the wire)")
    lg.add_argument("--tenant-skew", type=float, default=0.0,
                    help="Zipf exponent over tenants (0 = uniform); "
                         ">0 makes tenant-0 the noisy neighbour")
    lg.add_argument("--deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="end-to-end deadline per request, propagated "
                         "on the wire (default: none)")
    lg.add_argument("--json", action="store_true",
                    help="machine-readable report")
    lg.add_argument("--trace-out", default=None, metavar="FILE",
                    help="write per-request spans as Chrome Trace Event "
                         "JSON — open in about:tracing")
    add_service_knobs(lg)

    st = sub.add_parser(
        "stats",
        help="scrape a running service: ops, latency percentiles, "
             "cache/queue/pool counters")
    st.add_argument("--host", default="127.0.0.1")
    st.add_argument("--port", type=int, default=7421)
    st.add_argument("--timeout", type=float, default=30.0)
    st.add_argument("--format", default="table",
                    choices=("table", "json", "prom"),
                    help="output: human table, full JSON stats, or "
                         "Prometheus text exposition (default: table)")

    from .cluster.router import ROUTER_PORT

    cl = sub.add_parser(
        "cluster",
        help="sharded cluster: hash-ring routing, replication with "
             "failover, scatter-gather fan-out")
    clsub = cl.add_subparsers(dest="cluster_command", required=True)

    def add_cluster_shape(sp):
        sp.add_argument("--shards", type=int, default=4,
                        help="shard count (default: 4)")
        sp.add_argument("--replication", type=int, default=1,
                        help="replicas per dataset (default: 1)")
        sp.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per shard on the ring "
                             "(default: 64)")

    cs = clsub.add_parser(
        "serve", help="boot a full cluster (shards + router) and serve")
    add_cluster_shape(cs)
    cs.add_argument("--datasets", default=None,
                    help="comma-separated dataset universe (default: "
                         "the full registry)")
    cs.add_argument("--host", default="127.0.0.1")
    cs.add_argument("--port", type=int, default=ROUTER_PORT,
                    help=f"router TCP port (default: {ROUTER_PORT}; "
                         "0 picks a free one)")
    cs.add_argument("--processes", action="store_true",
                    help="run each shard as a child process instead of "
                         "a thread")
    cs.add_argument("--isolation", default="inline",
                    choices=("process", "inline"),
                    help="worker isolation inside each shard "
                         "(default: inline)")
    cs.add_argument("--no-reliability", action="store_true",
                    help="disable the request-reliability layer "
                         "(breakers, budgeted retries, deadline-derived "
                         "timeouts, degraded serving)")
    cs.add_argument("--hedge-quantile", type=float, default=None,
                    metavar="Q",
                    help="hedge idempotent reads at this observed "
                         "latency quantile, e.g. 95 (default: off)")
    cs.add_argument("--stale-cap", type=float, default=60.0,
                    metavar="SECONDS",
                    help="hard staleness cap for degraded responses "
                         "(default: 60)")
    cs.add_argument("--netchaos", action="store_true",
                    help="interpose a deterministic ChaosProxy on every "
                         "router-shard hop (thread shards only)")
    cs.add_argument("--netchaos-seed", type=int, default=0,
                    help="seed for the proxies' fault RNG (default: 0)")
    cs.add_argument("--chaos-latency-ms", type=float, default=0.0,
                    help="inject this much per-chunk latency on every "
                         "proxied hop (requires --netchaos)")

    csh = clsub.add_parser(
        "shard", help="serve one shard (used by `cluster serve "
                      "--processes`; prints a ready JSON line)")
    csh.add_argument("--name", required=True, help="shard id")
    csh.add_argument("--datasets", default=None,
                     help="comma-separated owned dataset keys "
                          "(default: owns everything)")
    csh.add_argument("--host", default="127.0.0.1")
    csh.add_argument("--port", type=int, default=0)
    csh.add_argument("--workers", type=int, default=2)
    csh.add_argument("--isolation", default="inline",
                     choices=("process", "inline"))

    cq = clsub.add_parser(
        "query", help="send one request to a running cluster router")
    cq.add_argument("op", choices=("ping", "run", "characterize",
                                   "dyn_query",
                                   "datasets", "workloads", "stats",
                                   "health", "shard_info"))
    cq.add_argument("workload", nargs="?", default=None,
                    help="workload name (run/characterize only)")
    cq.add_argument("--dataset", default="ldbc")
    cq.add_argument("--scale", type=float, default=0.25)
    cq.add_argument("--seed", type=int, default=0)
    cq.add_argument("--machine", default="scaled",
                    choices=("scaled", "test", "paper"))
    cq.add_argument("--gpu", action="store_true")
    cq.add_argument("--root", type=int, default=0,
                    help="BFS root vertex (dyn_query only)")
    cq.add_argument("--host", default="127.0.0.1")
    cq.add_argument("--port", type=int, default=ROUTER_PORT)
    cq.add_argument("--timeout", type=float, default=300.0)

    cql = clsub.add_parser(
        "query-lang",
        help="run a pipeline-DSL query through the router: static "
             "sources scatter per-shard subplans and merge partials, "
             "dynamic sources route to the owner")
    cql.add_argument("query", help="pipeline DSL text: "
                                   "from DATASET | stage | stage ...")
    cql.add_argument("--explain", action="store_true",
                     help="print the physical plan with per-stage cost "
                          "estimates instead of executing")
    cql.add_argument("--json", action="store_true",
                     help="machine-readable output")
    cql.add_argument("--host", default="127.0.0.1")
    cql.add_argument("--port", type=int, default=ROUTER_PORT)
    cql.add_argument("--timeout", type=float, default=300.0)

    clg = clsub.add_parser(
        "loadgen",
        help="closed-loop load against a cluster router, with "
             "per-shard imbalance reporting")
    add_cluster_shape(clg)
    clg.add_argument("--host", default="127.0.0.1")
    clg.add_argument("--port", type=int, default=ROUTER_PORT)
    clg.add_argument("--spawn", action="store_true",
                     help="boot an in-process cluster for the run")
    clg.add_argument("--requests", type=int, default=200)
    clg.add_argument("--concurrency", type=int, default=16)
    clg.add_argument("--workloads", default="BFS,CComp")
    clg.add_argument("--datasets",
                     default="twitter,knowledge,watson,roadnet,ldbc")
    clg.add_argument("--scale", type=float, default=0.05)
    clg.add_argument("--seeds", type=int, default=1)
    clg.add_argument("--seed", type=int, default=0)
    clg.add_argument("--op", default="run",
                     choices=("run", "characterize", "dyn_query"))
    clg.add_argument("--write-mix", type=float, default=0.0,
                     help="fraction of requests that are mutation "
                          "batches against the first-listed dataset")
    clg.add_argument("--write-batch", type=int, default=8,
                     help="ops per mutation batch (default: 8)")
    clg.add_argument("--query-mix", type=float, default=0.0,
                     help="fraction of requests that are pipeline-DSL "
                          "queries drawn from the template pool over "
                          "the listed datasets (default: 0)")
    clg.add_argument("--dataset-skew", type=float, default=0.0,
                     help="Zipf exponent over the dataset mix "
                          "(0 = uniform)")
    clg.add_argument("--tenants", type=int, default=0, metavar="N",
                     help="stamp each request with one of N tenant "
                          "identities (default: 0)")
    clg.add_argument("--tenant-skew", type=float, default=0.0,
                     help="Zipf exponent over tenants (0 = uniform)")
    clg.add_argument("--timeout", type=float, default=300.0)
    clg.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="end-to-end deadline per request, propagated "
                          "on the wire (default: none)")
    clg.add_argument("--json", action="store_true")

    cp = clsub.add_parser(
        "plan",
        help="rebalance plan for a membership change: keys moved, "
             "fraction, per-shard migration sizes")
    cp.add_argument("--shards", type=int, default=4,
                    help="shard count before the change (default: 4)")
    cp.add_argument("--vnodes", type=int, default=64)
    cp.add_argument("--add", action="append", metavar="NAME",
                    help="shard to add (repeatable)")
    cp.add_argument("--remove", action="append", metavar="NAME",
                    help="shard to remove (repeatable)")
    cp.add_argument("--synthetic", type=int, default=0, metavar="N",
                    help="estimate over N synthetic keys instead of "
                         "the dataset registry")
    cp.add_argument("--json", action="store_true")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs import setup_logging
    setup_logging(args.log_level, json_mode=args.log_json)
    handler = {"list": cmd_list, "datasets": cmd_datasets, "run": cmd_run,
               "characterize": cmd_characterize, "gpu": cmd_gpu,
               "matrix": cmd_matrix, "serve": cmd_serve,
               "query": cmd_query, "query-lang": cmd_query_lang,
               "mutate": cmd_mutate,
               "loadgen": cmd_loadgen,
               "stats": cmd_stats, "cluster": cmd_cluster}
    try:
        return handler[args.command](args)
    except KeyError as e:   # unknown workload/dataset names
        print(f"error: {e}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
