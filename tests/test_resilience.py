"""Tests for the fault-tolerant characterization runner
(repro.resilience): retry/backoff, chaos injection, checkpoint-resume,
subprocess isolation, and graceful report degradation."""

import dataclasses
import json
import math

import pytest

from repro.arch.machine import TEST_MACHINE
from repro.core.errors import (
    CellCrash,
    CellOOM,
    CellTimeout,
    MetricsUnavailable,
    RetriesExhausted,
)
from repro.core.taxonomy import DataSource
from repro.datagen.spec import GraphSpec
from repro.harness import (
    breakdown_table,
    characterize,
    clear_cache,
    cpu_table,
    export_all,
    failure_table,
    gpu_speedup,
    matrix_table,
)
from repro.resilience import (
    Cell,
    ChaosSpec,
    CheckpointStore,
    ExecutorConfig,
    Fault,
    RetryPolicy,
    backoff_schedule,
    matrix_cells,
    record_to_row,
    run_cell_inline,
    run_cell_once,
    run_cell_resilient,
    run_matrix,
    run_with_retries,
)

#: Cheap cells: scale 0.03 clamps every registry dataset to 120 vertices.
SCALE = 0.03


def fast_config(retries=2, timeout_s=5.0, isolation="inline", seed=0):
    return ExecutorConfig(
        timeout_s=timeout_s, isolation=isolation,
        policy=RetryPolicy(max_retries=retries, base_delay=0.01,
                           max_delay=0.05, seed=seed))


def cell(workload="BFS", dataset="ldbc", **kw):
    kw.setdefault("scale", SCALE)
    kw.setdefault("machine", "test")
    return Cell(workload, dataset, **kw)


class TestRetryPolicy:
    def test_schedule_deterministic(self):
        p = RetryPolicy(max_retries=4, seed=13)
        assert backoff_schedule(p, "cellA") == backoff_schedule(p, "cellA")

    def test_schedule_decorrelates_cells_and_seeds(self):
        p = RetryPolicy(max_retries=4, seed=13)
        assert backoff_schedule(p, "cellA") != backoff_schedule(p, "cellB")
        q = RetryPolicy(max_retries=4, seed=14)
        assert backoff_schedule(p, "cellA") != backoff_schedule(q, "cellA")

    def test_exponential_growth_with_jitter_bounds(self):
        p = RetryPolicy(max_retries=5, base_delay=0.1, factor=2.0,
                        max_delay=100.0, jitter=0.5, seed=0)
        for i, d in enumerate(backoff_schedule(p, "c"), start=1):
            base = 0.1 * 2.0 ** (i - 1)
            assert base * 0.5 <= d <= base * 1.5

    def test_zero_jitter_is_exact(self):
        p = RetryPolicy(max_retries=3, base_delay=1.0, factor=2.0,
                        max_delay=3.0, jitter=0.0)
        assert backoff_schedule(p, "c") == [1.0, 2.0, 3.0]   # capped

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_flaky_then_success_counts_attempts_and_backoff(self):
        p = RetryPolicy(max_retries=3, base_delay=0.5, jitter=0.5, seed=3)
        calls, slept = [], []

        def attempt(n):
            calls.append(n)
            if n <= 2:
                raise CellCrash("c1", "flaky")
            return "done"

        result, attempts = run_with_retries(attempt, p, "c1",
                                            sleep=slept.append)
        assert result == "done"
        assert attempts == 3
        assert calls == [1, 2, 3]
        assert slept == backoff_schedule(p, "c1")[:2]

    def test_retries_exhausted_carries_last_failure(self):
        p = RetryPolicy(max_retries=2, base_delay=0.01)

        def attempt(n):
            raise CellOOM("c2", f"attempt {n}")

        with pytest.raises(RetriesExhausted) as ei:
            run_with_retries(attempt, p, "c2", sleep=lambda s: None)
        assert ei.value.attempts == 3
        assert ei.value.last.kind == "oom"
        assert "attempt 3" in ei.value.last.message

    def test_non_cell_errors_propagate_immediately(self):
        p = RetryPolicy(max_retries=5)
        calls = []

        def attempt(n):
            calls.append(n)
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            run_with_retries(attempt, p, "c3", sleep=lambda s: None)
        assert calls == [1]


class TestChaos:
    def test_pinned_fault_and_flakiness(self):
        spec = ChaosSpec(faults={"a": Fault("crash", until_attempt=2)})
        assert spec.fault_for("a", 1).kind == "crash"
        assert spec.fault_for("a", 2).kind == "crash"
        assert spec.fault_for("a", 3) is None
        assert spec.fault_for("b", 1) is None

    def test_random_faults_deterministic(self):
        s1 = ChaosSpec(p_fault=0.5, seed=9, kinds=("crash", "oom"))
        s2 = ChaosSpec(p_fault=0.5, seed=9, kinds=("crash", "oom"))
        draws1 = [s1.fault_for(f"cell{i}", 1) for i in range(40)]
        draws2 = [s2.fault_for(f"cell{i}", 1) for i in range(40)]
        assert [(d.kind if d else None) for d in draws1] \
            == [(d.kind if d else None) for d in draws2]
        assert any(draws1) and not all(draws1)

    def test_roundtrip_dict(self):
        spec = ChaosSpec(faults={"x": Fault("hang", until_attempt=1)},
                         p_fault=0.25, kinds=("oom",), seed=4)
        back = ChaosSpec.from_dict(spec.to_dict())
        assert back == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("segfault")


class TestCheckpoint:
    def test_roundtrip_latest_wins(self, tmp_path):
        cp = CheckpointStore(tmp_path / "j.jsonl")
        assert cp.load() == {}
        cp.append({"kind": "failure", "cell": "a", "workload": "BFS",
                   "dataset": "ldbc", "failure_kind": "crash",
                   "message": "m", "attempts": 3})
        cp.append({"kind": "row", "cell": "b", "workload": "DFS",
                   "dataset": "ldbc", "ctype": "CompStruct"})
        # re-run supersedes the failure
        cp.append({"kind": "row", "cell": "a", "workload": "BFS",
                   "dataset": "ldbc", "ctype": "CompStruct"})
        loaded = cp.load()
        assert loaded["a"]["kind"] == "row"
        assert cp.completed() == {"a", "b"}

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        cp = CheckpointStore(path)
        cp.append({"kind": "row", "cell": "a", "workload": "BFS",
                   "dataset": "ldbc", "ctype": "CompStruct"})
        with open(path, "a") as f:        # crash mid-append
            f.write('{"kind": "row", "cel')
        assert set(cp.load()) == {"a"}
        # journal still appendable after the torn write
        cp.append({"kind": "row", "cell": "c", "workload": "TC",
                   "dataset": "ldbc", "ctype": "CompProp"})
        assert set(cp.load()) == {"a", "c"}

    def test_clear(self, tmp_path):
        cp = CheckpointStore(tmp_path / "j.jsonl")
        cp.append({"kind": "row", "cell": "a"})
        cp.clear()
        assert not cp.exists() and cp.load() == {}


class TestInlineMatrix:
    """Every recovery path of the sweep driver, chaos-driven, in-process."""

    @pytest.fixture()
    def cells(self):
        return matrix_cells(("BFS", "DCentr"), ("ldbc", "roadnet"),
                            scale=SCALE, machine="test")

    def test_timeout_crash_oom_flaky_matrix(self, cells, tmp_path):
        clear_cache()
        hang, crash, oom, flaky = (c.cell_id for c in cells)
        chaos = ChaosSpec(faults={
            hang: Fault("hang"),
            crash: Fault("crash"),
            oom: Fault("oom"),
            flaky: Fault("crash", until_attempt=1),
        })
        cp = CheckpointStore(tmp_path / "sweep.jsonl")
        config = fast_config(retries=2)
        slept = []
        result = run_matrix(cells, config=config, chaos=chaos,
                            checkpoint=cp, sleep=slept.append)

        assert {f.kind for f in result.failures} == {"timeout", "crash",
                                                     "oom"}
        assert all(f.attempts == 3 for f in result.failures)
        assert [r.workload for r in result.rows] == ["DCentr"]
        assert result.executed == 4 and result.resumed == 0

        # backoff schedule: permanent faults sleep the full per-cell
        # schedule; the flaky cell sleeps only its first delay
        expected = []
        for c in (hang, crash, oom):
            expected.extend(backoff_schedule(config.policy, c))
        expected.extend(backoff_schedule(config.policy, flaky)[:1])
        assert slept == expected

        # checkpoint journals every cell with the right kind + attempts
        loaded = cp.load()
        assert set(loaded) == {c.cell_id for c in cells}
        assert loaded[flaky]["kind"] == "row"
        assert loaded[flaky]["attempts"] == 2
        assert loaded[hang]["failure_kind"] == "timeout"
        assert loaded[crash]["failure_kind"] == "crash"
        assert loaded[oom]["failure_kind"] == "oom"

    def test_resume_reexecutes_only_unfinished(self, cells, tmp_path):
        clear_cache()
        crash = cells[0].cell_id
        cp = CheckpointStore(tmp_path / "sweep.jsonl")
        first = run_matrix(cells, config=fast_config(retries=0),
                           chaos=ChaosSpec(faults={crash: Fault("crash")}),
                           checkpoint=cp, sleep=lambda s: None)
        assert len(first.rows) == 3 and len(first.failures) == 1

        second = run_matrix(cells, config=fast_config(retries=0),
                            checkpoint=cp, resume=True,
                            sleep=lambda s: None)
        assert second.resumed == 3        # completed cells not re-run
        assert second.executed == 1       # only the failed cell re-ran
        assert second.complete and len(second.rows) == 4
        # the journal's latest record for the failed cell is now a row
        assert cp.load()[crash]["kind"] == "row"

    def test_resume_requires_checkpoint(self, cells):
        with pytest.raises(ValueError):
            run_matrix(cells, resume=True)

    def test_no_resume_restarts_journal(self, cells, tmp_path):
        clear_cache()
        cp = CheckpointStore(tmp_path / "sweep.jsonl")
        cp.append({"kind": "row", "cell": "stale"})
        result = run_matrix(cells[:1], config=fast_config(),
                            checkpoint=cp, sleep=lambda s: None)
        assert result.executed == 1
        assert "stale" not in cp.load()


class TestRestoredRows:
    """Checkpointed rows rehydrate into report/export-compatible Rows."""

    @pytest.fixture(scope="class")
    def restored(self):
        clear_cache()
        c = cell("CComp", with_gpu=True)
        record = run_cell_inline(c)
        # simulate a resume: JSON round-trip through the journal format
        return c, json.loads(json.dumps(record)), record

    def test_tables_render(self, restored):
        _, rec, _ = restored
        row = record_to_row(rec)
        assert cpu_table([row])[0][0] == "CComp"
        fractions = breakdown_table([row])[0][2:]
        assert sum(fractions) == pytest.approx(1.0)
        grid = matrix_table([row], metric="ipc")
        assert "CComp" in grid

    def test_gpu_speedup_matches_live(self, restored):
        c, rec, _ = restored
        clear_cache()
        from repro.datagen.registry import make
        live = characterize("CComp", make(c.dataset, scale=c.scale,
                                          seed=c.seed),
                            machine=TEST_MACHINE, with_gpu=True)
        row = record_to_row(rec)
        assert gpu_speedup(row, machine=TEST_MACHINE) == pytest.approx(
            gpu_speedup(live, machine=TEST_MACHINE), rel=1e-6)

    def test_export_partial_matrix(self, restored, tmp_path):
        _, rec, _ = restored
        row = record_to_row(rec)
        failures = [{"workload": "BFS", "dataset": "ldbc",
                     "failure_kind": "timeout", "attempts": 3,
                     "message": "exceeded 1s"}]
        written = export_all([row], tmp_path, failures=failures)
        names = {p.split("/")[-1] for p in written}
        assert "cpu_metrics.csv" in names
        assert "gpu_metrics.csv" in names
        assert "failures.csv" in names
        # restored rows carry no trace: framework view is absent, not broken
        assert "framework_fraction.csv" not in names
        text = (tmp_path / "failures.csv").read_text()
        assert "timeout" in text

    def test_failure_table_accepts_objects_and_dicts(self, restored):
        from repro.resilience import CellFailure
        obj = CellFailure("id", "BFS", "ldbc", "oom", "boom", 2)
        rows = failure_table([obj, {"workload": "TC", "dataset": "rmat",
                                    "failure_kind": "crash",
                                    "attempts": 1, "message": "m"}])
        assert rows[0][:3] == ["BFS", "ldbc", "oom"]
        assert rows[1][:3] == ["TC", "rmat", "crash"]


class TestRunnerSatellites:
    def test_memo_key_includes_seed(self):
        clear_cache()
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        s0 = GraphSpec("memo", DataSource.SYNTHETIC, 4, edges,
                       meta={"seed": 0})
        s1 = GraphSpec("memo", DataSource.SYNTHETIC, 4, edges,
                       meta={"seed": 1})
        assert s0.seed == 0 and s1.seed == 1
        r0 = characterize("BFS", s0, machine=TEST_MACHINE)
        r1 = characterize("BFS", s1, machine=TEST_MACHINE)
        assert r0 is not r1
        assert characterize("BFS", s0, machine=TEST_MACHINE) is r0

    def test_memo_key_includes_full_machine_identity(self, tiny_spec):
        clear_cache()
        impostor = dataclasses.replace(TEST_MACHINE, mem_latency=400)
        assert impostor.name == TEST_MACHINE.name
        r0 = characterize("BFS", tiny_spec, machine=TEST_MACHINE)
        r1 = characterize("BFS", tiny_spec, machine=impostor)
        assert r0 is not r1
        assert r1.cpu.cycles > r0.cpu.cycles

    def test_gpu_speedup_typed_error(self, tiny_spec):
        clear_cache()
        row = characterize("DFS", tiny_spec, machine=TEST_MACHINE)
        with pytest.raises(MetricsUnavailable):
            gpu_speedup(row)
        with pytest.raises(ValueError):   # backward-compatible
            gpu_speedup(row)

    def test_gpu_speedup_nan_on_degenerate_cell(self, tiny_spec):
        clear_cache()
        row = characterize("CComp", tiny_spec, machine=TEST_MACHINE,
                           with_gpu=True)
        degenerate = dataclasses.replace(
            row.gpu, t_compute=0.0, t_bandwidth=0.0, t_latency=0.0,
            t_atomic=0.0, t_launch=0.0)
        broken = dataclasses.replace(row, gpu=degenerate)
        assert math.isnan(gpu_speedup(broken, machine=TEST_MACHINE))


@pytest.mark.slow
class TestSubprocessIsolation:
    """Real worker processes: timeouts kill, crashes are contained."""

    def test_hang_hits_wall_clock_timeout(self):
        c = cell()
        chaos = ChaosSpec(faults={c.cell_id: Fault("hang")})
        with pytest.raises(CellTimeout):
            run_cell_once(c, timeout_s=0.8, chaos=chaos)

    def test_sigkill_contained_as_crash(self):
        c = cell()
        chaos = ChaosSpec(faults={c.cell_id: Fault("crash")})
        with pytest.raises(CellCrash) as ei:
            run_cell_once(c, timeout_s=10, chaos=chaos)
        assert "died" in str(ei.value)

    def test_memoryerror_contained_as_oom(self):
        c = cell()
        chaos = ChaosSpec(faults={c.cell_id: Fault("oom")})
        with pytest.raises(CellOOM):
            run_cell_once(c, timeout_s=10, chaos=chaos)

    def test_corrupt_payload_detected(self):
        c = cell()
        chaos = ChaosSpec(faults={c.cell_id: Fault("corrupt")})
        with pytest.raises(CellCrash) as ei:
            run_cell_once(c, timeout_s=30, chaos=chaos)
        assert "corrupt" in str(ei.value)

    def test_clean_cell_returns_record(self):
        c = cell()
        rec = run_cell_once(c, timeout_s=30)
        assert rec["kind"] == "row" and rec["cell"] == c.cell_id
        assert rec["cpu_summary"]["ipc"] > 0
        assert rec["elapsed_s"] > 0

    def test_flaky_cell_recovers_in_subprocess(self):
        c = cell()
        chaos = ChaosSpec(faults={c.cell_id: Fault("crash",
                                                   until_attempt=1)})
        config = fast_config(retries=1, timeout_s=30, isolation="process")
        record, attempts = run_cell_resilient(c, config=config,
                                              chaos=chaos,
                                              sleep=lambda s: None)
        assert attempts == 2
        assert record["attempts"] == 2

    def test_interrupted_sweep_resumes(self, tmp_path):
        """Acceptance path: a chaos-crashed sweep resumes and completes,
        re-running only the unfinished cell; the permanently hanging cell
        is reported failed while every other cell is populated."""
        cells = matrix_cells(("BFS", "DCentr"), ("ldbc",),
                             scale=SCALE, machine="test")
        hang = cells[0].cell_id
        cp = CheckpointStore(tmp_path / "sweep.jsonl")
        config = fast_config(retries=0, timeout_s=1.0,
                             isolation="process")
        first = run_matrix(
            cells, config=config,
            chaos=ChaosSpec(faults={hang: Fault("hang")}),
            checkpoint=cp, sleep=lambda s: None)
        assert len(first.rows) == 1 and len(first.failures) == 1
        assert first.failures[0].kind == "timeout"
        # report still renders, hanging cell explicitly marked
        grid = matrix_table(first.rows, first.failures)
        assert "FAILED(timeout)" in grid and "DCentr" in grid

        second = run_matrix(cells, config=config, checkpoint=cp,
                            resume=True, sleep=lambda s: None)
        assert second.resumed == 1 and second.executed == 1
        assert second.complete and len(second.rows) == 2
