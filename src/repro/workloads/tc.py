"""TC — triangle count (topological analytics, CompStruct).

Schank's edge-iterator algorithm (the paper's stated implementation):
order vertices, keep for each vertex its sorted higher-ordered neighbours,
and merge-intersect the lists across every edge.  The merge's comparison
branch is *data-dependent* — effectively random — which is exactly why TC
shows the suite's worst branch miss rate (10.7 %, Fig. 6) and the highest
BadSpeculation share (Fig. 5), while its compare-heavy inner loop gives it
the top GPU IPC and the lowest memory throughput (Fig. 11).
"""

from __future__ import annotations

from typing import Any

from ..core.graph import PropertyGraph
from ..core.taxonomy import ComputationType, WorkloadCategory
from .base import Workload

ENTRY = 8


class TC(Workload):
    """Count triangles of the undirected simple view; returns the total
    and the per-vertex counts."""

    NAME = "TC"
    CTYPE = ComputationType.COMP_STRUCT
    CATEGORY = WorkloadCategory.ANALYTICS
    HAS_GPU = True

    def kernel(self, g: PropertyGraph, t, **_: Any) -> dict[str, Any]:
        site_cmp = t.register_branch_site()
        site_loop = t.register_branch_site()
        ids = sorted(g.vertex_ids())
        # degeneracy (Schank) ordering: rank vertices by increasing
        # degree and orient every edge toward the higher-degree endpoint.
        # Each oriented list is then O(sqrt(m)) — hubs keep only their
        # few higher-degree peers — which is what makes the edge-iterator
        # subquadratic on power-law graphs.
        deg = {vid: (g.find_vertex(vid).degree
                     + len(g.find_vertex(vid).inn)) for vid in ids}
        rank = {vid: r for r, vid in enumerate(
            sorted(ids, key=lambda v: (deg[v], v)))}
        t.i(6 * len(ids))     # the ranking pass
        higher: dict[int, list[int]] = {vid: [] for vid in ids}
        for v in g.scan_vertices():
            for dst in g.neighbor_ids(v):
                t.i(2)
                if v.vid == dst:
                    continue
                a, b = ((v.vid, dst) if rank[v.vid] < rank[dst]
                        else (dst, v.vid))
                higher[a].append(b)
        bases: dict[int, int] = {}
        for vid in ids:
            lst = sorted(set(higher[vid]), key=lambda u: (rank[u], u))
            higher[vid] = lst
            bases[vid] = g.alloc.alloc_array(max(len(lst), 1), ENTRY,
                                             tag="tc_adj")
            for i in range(len(lst)):
                t.i(2)
                t.w(bases[vid] + i * ENTRY)
        total = 0
        per_vertex: dict[int, int] = {vid: 0 for vid in ids}
        for u in ids:
            lu = higher[u]
            bu = bases[u]
            for vi, vvid in enumerate(lu):
                t.r(bu + vi * ENTRY)
                t.i(3)
                lv = higher[vvid]
                bv = bases[vvid]
                # merge-intersection of lu[vi+1:] with lv
                i, j = vi + 1, 0
                while i < len(lu) and j < len(lv):
                    t.i(4)
                    t.r(bu + i * ENTRY)
                    t.r(bv + j * ENTRY)
                    t.br(site_loop, True)       # merge-loop bound (taken)
                    t.br(site_loop, True)       # second bounds check
                    a, b = lu[i], lv[j]
                    t.br(site_cmp, rank[a] < rank[b])   # data-dependent
                    if a == b:
                        total += 1
                        per_vertex[u] += 1
                        per_vertex[vvid] += 1
                        per_vertex[a] += 1
                        i += 1
                        j += 1
                    elif rank[a] < rank[b]:
                        i += 1
                    else:
                        j += 1
                t.br(site_loop, False)
        return {"triangles": total, "per_vertex": per_vertex}

    @staticmethod
    def reference(spec) -> int:
        """networkx triangle total on the undirected simple view."""
        import networkx as nx
        und = nx.Graph(spec.nx())
        und.remove_edges_from(nx.selfloop_edges(und))
        return sum(nx.triangles(und).values()) // 3
