"""GPU GColor: Luby-Jones independent-set coloring (thread-centric).

Each round, every uncolored thread compares its random priority against
all uncolored neighbours (degree-dependent inner loop with an early exit)
— "heavier per-edge computation" and high warp imbalance put GColor on
the high-BDR side of Fig. 10.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..simt import KernelAccum, slots_for_loop, warp_of
from .base import GPUKernel


class GPUGcolor(GPUKernel):
    NAME = "GColor"
    MODEL = "thread-centric"

    def kernel(self, csr, coo, acc: KernelAccum, *, seed: int = 0,
               **_: Any) -> dict[str, Any]:
        # csr must be the symmetrized (undirected) graph
        n = csr.n
        rng = np.random.default_rng(seed)
        colors = np.full(n, -1, dtype=np.int64)
        deg = np.diff(csr.row_ptr)
        rounds = 0
        while (colors < 0).any():
            acc.launch()
            rounds += 1
            uncolored = colors < 0
            prio = rng.random(n)
            # priority write, coalesced over uncolored lanes
            uc = np.flatnonzero(uncolored)
            acc.uniform_op(uncolored, 2.0)
            acc.mem_op(warp_of(uc), csr.base_vprop + 4 * uc, is_write=True)
            # neighbour priority scan: the loop exits early on the first
            # higher-priority uncolored neighbour, so the expected trip
            # count shrinks as the graph colors in
            frac = max(uncolored.mean(), 1.0 / max(n, 1))
            trips = np.where(uncolored,
                             np.maximum((deg * frac).astype(np.int64), 1), 0)
            acc.loop(trips, 5.0)
            threads, steps, slots = slots_for_loop(trips)
            winners = uncolored.copy()
            if len(threads):
                epos = csr.row_ptr[threads] + steps
                nbr = csr.col_idx[epos]
                acc.mem_op(slots, csr.base_col + 4 * epos)
                acc.mem_op(slots, csr.base_vprop + 4 * nbr)
                beaten = (uncolored[nbr]
                          & ((prio[nbr] > prio[threads])
                             | ((prio[nbr] == prio[threads])
                                & (nbr > threads))))
                winners[np.unique(threads[beaten])] = False
            # winners pick the smallest color unused by their neighbours
            wv = np.flatnonzero(winners)
            if len(wv):
                wtrips = deg[wv]
                full = np.zeros(n, dtype=np.int64)
                full[wv] = wtrips
                acc.loop(full, 3.0)
                wthreads, wsteps, wslots = slots_for_loop(full)
                if len(wthreads):
                    wepos = csr.row_ptr[wthreads] + wsteps
                    acc.mem_op(wslots,
                               csr.base_vprop + 4 * csr.col_idx[wepos])
                for v in wv.tolist():
                    used = set(colors[csr.neighbors(v)].tolist())
                    c = 0
                    while c in used:
                        c += 1
                    colors[v] = c
                acc.mem_op(warp_of(wv), csr.base_vprop + 4 * wv,
                           is_write=True)
        return {"colors": colors, "rounds": rounds,
                "n_colors": int(colors.max(initial=-1)) + 1}
