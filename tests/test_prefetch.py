"""Tests for the prefetcher models."""

import numpy as np

from repro.arch.cache import CacheConfig
from repro.arch.prefetch import (
    NextLinePrefetcher,
    PrefetchStats,
    StridePrefetcher,
    prefetch_comparison,
)
from repro.core import trace as T
from repro.core.trace import Tracer

CFG = CacheConfig("L2", size=2 * 1024, assoc=4, line=64)


def _sequential_trace(n=400, stride=64):
    t = Tracer()
    for i in range(n):
        t.i(4)
        t.r(i * stride)
    return t.freeze()


def _random_trace(n=400, seed=0):
    rng = np.random.default_rng(seed)
    t = Tracer()
    t.enter(T.R_NEIGHBORS)
    for _ in range(n):
        t.i(4)
        t.r(int(rng.integers(0, 1 << 22)) & ~7)
    t.leave()
    return t.freeze()


class TestNextLine:
    def test_perfect_on_sequential(self):
        st = NextLinePrefetcher(CFG).evaluate(_sequential_trace())
        assert st.accuracy > 0.95
        assert st.coverage > 0.9

    def test_useless_on_random(self):
        st = NextLinePrefetcher(CFG).evaluate(_random_trace())
        assert st.accuracy < 0.2

    def test_no_misses_no_prefetches(self):
        t = Tracer()
        for _ in range(100):
            t.i(1)
            t.r(0)
        st = NextLinePrefetcher(CFG).evaluate(t.freeze())
        assert st.issued <= 1
        assert st.demand_misses <= 1


class TestStride:
    def test_learns_constant_stride(self):
        st = StridePrefetcher(CFG).evaluate(_sequential_trace(stride=128))
        assert st.accuracy > 0.9
        assert st.coverage > 0.8

    def test_pointer_chasing_defeats_it(self):
        st = StridePrefetcher(CFG).evaluate(_random_trace())
        assert st.coverage < 0.1

    def test_per_region_independence(self):
        # two interleaved regions with different strides both learnable
        t = Tracer()
        rid = t.register_region("other")
        for i in range(200):
            t.i(2)
            t.r(i * 64)
            t.enter(rid)
            t.i(2)
            t.r(1 << 30 | (i * 256))
            t.leave()
        st = StridePrefetcher(CFG).evaluate(t.freeze())
        assert st.accuracy > 0.8


class TestComparison:
    def test_both_evaluated(self):
        res = prefetch_comparison(_sequential_trace(), CFG)
        assert set(res) == {"next-line", "stride"}
        assert all(isinstance(v, PrefetchStats) for v in res.values())

    def test_graph_traversal_gains_little(self):
        """The paper's point: irregular traversals leave prefetchers
        nearly nothing to cover."""
        from repro.datagen import ldbc
        from repro.workloads import (BFS, common_edge_schema,
                                     common_vertex_schema)
        spec = ldbc(300, avg_degree=8, seed=1)
        t = Tracer()
        g = spec.build(vertex_schema=common_vertex_schema(),
                       edge_schema=common_edge_schema())
        BFS().run(g, tracer=t, root=0)
        res = prefetch_comparison(t.freeze(), CFG)
        assert res["stride"].coverage < 0.4
        assert res["next-line"].coverage < 0.5
