"""Tests for the Graph 500-style output validators."""

import pytest

from repro import workloads as W
from repro.workloads.validate import (
    validate_bfs,
    validate_coloring,
    validate_components,
    validate_kcore,
    validate_sssp,
    validate_triangles,
)
from tests.conftest import build


@pytest.fixture(scope="module")
def graph_and_results(small_spec):
    g = build(small_spec)
    res = {
        "bfs": W.run("BFS", g, root=0).outputs,
        "sssp": W.run("SPath", g, root=0).outputs,
        "colors": W.run("GColor", g, seed=1).outputs,
        "core": W.run("kCore", g).outputs,
        "comp": W.run("CComp", g).outputs,
        "tc": W.run("TC", g).outputs,
    }
    return g, res


class TestValidatorsAcceptCorrectOutputs:
    def test_bfs(self, graph_and_results):
        g, res = graph_and_results
        assert validate_bfs(g, 0, res["bfs"]["levels"],
                            res["bfs"]["parents"]) == []

    def test_sssp(self, graph_and_results):
        g, res = graph_and_results
        assert validate_sssp(g, 0, res["sssp"]["dists"]) == []

    def test_coloring(self, graph_and_results):
        g, res = graph_and_results
        assert validate_coloring(g, res["colors"]["colors"]) == []

    def test_kcore(self, graph_and_results):
        g, res = graph_and_results
        assert validate_kcore(g, res["core"]["core"]) == []

    def test_components(self, graph_and_results):
        g, res = graph_and_results
        assert validate_components(g, res["comp"]["comp"]) == []

    def test_triangles(self, graph_and_results):
        g, res = graph_and_results
        assert validate_triangles(g, res["tc"]["triangles"],
                                  res["tc"]["per_vertex"]) == []


class TestValidatorsRejectCorruptedOutputs:
    def test_bfs_level_skip(self, graph_and_results):
        g, res = graph_and_results
        bad = dict(res["bfs"]["levels"])
        victim = max(bad, key=bad.get)
        bad[victim] += 5
        assert validate_bfs(g, 0, bad, res["bfs"]["parents"])

    def test_bfs_wrong_root(self, graph_and_results):
        g, res = graph_and_results
        assert validate_bfs(g, 0, {0: 1}, {0: 0})

    def test_sssp_too_long(self, graph_and_results):
        g, res = graph_and_results
        bad = dict(res["sssp"]["dists"])
        victim = max(bad, key=bad.get)
        bad[victim] += 100.0
        assert validate_sssp(g, 0, bad)

    def test_coloring_conflict(self, graph_and_results):
        g, res = graph_and_results
        bad = dict(res["colors"]["colors"])
        vid = next(iter(g.vertex_ids()))
        v = g.find_vertex(vid)
        if v.out:
            dst = next(iter(v.out))
            bad[dst] = bad[vid]
            assert validate_coloring(g, bad)

    def test_kcore_inflated(self, graph_and_results):
        g, res = graph_and_results
        bad = dict(res["core"]["core"])
        vid = next(iter(bad))
        bad[vid] = 10 ** 6
        assert validate_kcore(g, bad)

    def test_components_split(self, graph_and_results):
        g, res = graph_and_results
        bad = dict(res["comp"]["comp"])
        vid = next(v for v in g.vertex_ids()
                   if g.find_vertex(v).out)
        bad[vid] = -42
        assert validate_components(g, bad)

    def test_triangles_inconsistent(self, graph_and_results):
        g, res = graph_and_results
        assert validate_triangles(g, res["tc"]["triangles"] + 1,
                                  res["tc"]["per_vertex"])
