"""Property-based tests on the SIMT accounting math."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.gpu.simt import WARP_SIZE, KernelAccum, slots_for_loop


@given(st.lists(st.integers(0, 40), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_loop_bdr_bounds(trips):
    acc = KernelAccum()
    acc.loop(np.asarray(trips, dtype=np.int64), 1.0)
    st_ = acc.stats
    assert 0.0 <= st_.bdr <= 1.0
    # lane work never exceeds warp-issue capacity
    assert st_.lane_issues <= WARP_SIZE * st_.warp_issues + 1e-9
    # warp issues equal the sum of per-warp maxima
    n = len(trips)
    expect = sum(max(trips[i:i + WARP_SIZE])
                 for i in range(0, n, WARP_SIZE))
    assert st_.warp_issues == expect


@given(st.lists(st.integers(0, 25), min_size=1, max_size=150))
@settings(max_examples=60, deadline=None)
def test_slots_for_loop_conservation(trips):
    arr = np.asarray(trips, dtype=np.int64)
    threads, steps, slots = slots_for_loop(arr)
    assert len(threads) == arr.sum()
    # per-thread step counts reconstruct the trips
    counts = np.bincount(threads, minlength=len(arr)) \
        if len(threads) else np.zeros(len(arr), dtype=np.int64)
    assert np.array_equal(counts, arr)
    # steps within each thread are 0..trips-1
    for t in np.unique(threads):
        got = np.sort(steps[threads == t])
        assert np.array_equal(got, np.arange(arr[t]))


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=128),
       st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_mem_op_replay_bounds(addr_list, n_slots)  :
    acc = KernelAccum()
    addrs = np.asarray(addr_list, dtype=np.int64)
    slots = np.arange(len(addrs)) % n_slots
    acc.mem_op(slots, addrs)
    st_ = acc.stats
    assert 0.0 <= st_.mdr < 1.0
    # replays bounded by accesses minus one per issued base instruction
    assert st_.mem_replays <= max(len(addrs) - st_.mem_base_issues, 0) + \
        st_.mem_base_issues * 31
    assert st_.mem_base_issues <= min(n_slots, len(addrs))
    # DRAM transactions can't exceed issue-level transactions
    assert st_.dram_transactions <= st_.slot_transactions


@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_atomic_total_replays_bound(addr_list):
    acc = KernelAccum()
    addrs = np.asarray(addr_list, dtype=np.int64)
    slots = np.zeros(len(addrs), dtype=np.int64)
    acc.atomic_op(slots, addrs)
    st_ = acc.stats
    # full serialization bound: at most one issue plus a replay per lane
    assert st_.mem_issued <= len(addrs) + 1
    assert st_.atomic_conflicts == len(addrs) - len(np.unique(addrs))
