"""Tests for the CSV export module."""

import csv
import os

import pytest

from repro.arch.machine import TEST_MACHINE
from repro.datagen import ldbc
from repro.harness import characterize, clear_cache
from repro.harness.export import export_all


@pytest.fixture(scope="module")
def rows():
    clear_cache()
    spec = ldbc(200, avg_degree=5, seed=0)
    return [characterize(w, spec, machine=TEST_MACHINE,
                         with_gpu=(w == "BFS"))
            for w in ("BFS", "DCentr")]


class TestExport:
    def test_writes_expected_files(self, rows, tmp_path):
        files = export_all(rows, tmp_path)
        names = {os.path.basename(f) for f in files}
        assert "cpu_metrics.csv" in names
        assert "cycle_breakdown.csv" in names
        assert "framework_fraction.csv" in names
        assert "gpu_metrics.csv" in names       # BFS carried GPU metrics

    def test_cpu_csv_parses(self, rows, tmp_path):
        export_all(rows, tmp_path)
        with open(tmp_path / "cpu_metrics.csv") as f:
            parsed = list(csv.DictReader(f))
        assert len(parsed) == 2
        assert {p["workload"] for p in parsed} == {"BFS", "DCentr"}
        assert float(parsed[0]["ipc"]) > 0

    def test_breakdown_rows_sum_to_one(self, rows, tmp_path):
        export_all(rows, tmp_path)
        with open(tmp_path / "cycle_breakdown.csv") as f:
            for p in csv.DictReader(f):
                total = (float(p["frontend"]) + float(p["badspec"])
                         + float(p["retiring"]) + float(p["backend"]))
                assert total == pytest.approx(1.0)

    def test_no_gpu_rows_no_gpu_file(self, tmp_path):
        clear_cache()
        spec = ldbc(200, avg_degree=5, seed=1)
        rows = [characterize("DCentr", spec, machine=TEST_MACHINE)]
        files = export_all(rows, tmp_path)
        names = {os.path.basename(f) for f in files}
        assert "gpu_metrics.csv" not in names

    def test_creates_directory(self, rows, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_all(rows, target)
        assert target.is_dir()
