"""Social-network generators: LDBC-style synthetic and Twitter-like.

Paper Table 2, type 1 (social networks): high degree variance, small
shortest-path lengths, large connected components.  Two generators are
needed because Fig. 13 distinguishes their divergence behaviour:

* **Twitter** — "a few vertices with extremely higher degree": celebrity
  hubs attract a huge share of edges; everyone else has small degree.
* **LDBC** — "the unbalanced degree distribution involves more vertices":
  a broad power-law without extreme outliers, plus community structure
  (the LDBC SNB generator correlates friendships with universities/places).
"""

from __future__ import annotations

import numpy as np

from ..core.taxonomy import DataSource
from .spec import GraphSpec


def _powerlaw_degrees(n: int, mean_degree: float, alpha: float,
                      d_min: int, d_max: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Discrete power-law degrees with the requested mean (rescaled)."""
    u = rng.random(n)
    # inverse-CDF sample of a truncated Pareto, then rescale to the mean
    a1 = 1.0 - alpha
    lo, hi = float(d_min), float(d_max)
    deg = (lo ** a1 + u * (hi ** a1 - lo ** a1)) ** (1.0 / a1)
    deg *= mean_degree / deg.mean()
    return np.maximum(1, np.round(deg)).astype(np.int64)


def ldbc(n_vertices: int = 4000, avg_degree: float = 28.8,
         n_communities: int | None = None, p_in: float = 0.6,
         seed: int = 0) -> GraphSpec:
    """LDBC SNB-like social graph: broad power-law degrees + communities.

    Defaults reproduce the paper's LDBC-1M average degree (28.82M edges /
    1M vertices) at the scaled vertex count.
    """
    if n_vertices < 10:
        raise ValueError("n_vertices must be >= 10")
    rng = np.random.default_rng(seed)
    n_comm = n_communities or max(4, n_vertices // 200)
    community = rng.integers(0, n_comm, n_vertices)
    deg = _powerlaw_degrees(n_vertices, avg_degree, alpha=2.1,
                            d_min=2, d_max=max(8, n_vertices // 10), rng=rng)
    src = np.repeat(np.arange(n_vertices), deg)
    m = len(src)
    # attachment popularity: power-law but bounded (no extreme hubs)
    pop = deg.astype(np.float64)
    pop /= pop.sum()
    in_comm = rng.random(m) < p_in
    dst = np.empty(m, dtype=np.int64)
    dst[~in_comm] = rng.choice(n_vertices, size=(~in_comm).sum(), p=pop)
    # within-community: pick uniformly among same-community members
    order = np.argsort(community, kind="stable")
    comm_sorted = community[order]
    starts = np.searchsorted(comm_sorted, np.arange(n_comm))
    ends = np.searchsorted(comm_sorted, np.arange(n_comm), side="right")
    ic = np.flatnonzero(in_comm)
    c_of_src = community[src[ic]]
    sizes = ends[c_of_src] - starts[c_of_src]
    # guard: a community of size < 2 falls back to global choice
    ok = sizes > 1
    pick = starts[c_of_src[ok]] + (rng.random(ok.sum())
                                   * sizes[ok]).astype(np.int64)
    dst[ic[ok]] = order[pick]
    if (~ok).any():
        dst[ic[~ok]] = rng.choice(n_vertices, size=(~ok).sum(), p=pop)
    return GraphSpec("LDBC", DataSource.SYNTHETIC, n_vertices,
                     np.column_stack([src, dst]), directed=True,
                     meta={"communities": n_comm, "seed": seed,
                           "avg_degree": avg_degree})


def twitter(n_vertices: int = 11000, avg_degree: float = 7.7,
            hub_fraction: float = 0.001, hub_share: float = 0.35,
            seed: int = 0) -> GraphSpec:
    """Twitter-like graph: a handful of celebrity hubs plus a light tail.

    ``hub_share`` of all edge endpoints attach to the top
    ``hub_fraction`` of vertices — the "few vertices with extremely higher
    degree" contrast of Fig. 13.  Defaults reproduce the paper's sampled
    Twitter ratio (85M edges / 11M vertices) at scaled size.
    """
    if n_vertices < 100:
        raise ValueError("n_vertices must be >= 100")
    rng = np.random.default_rng(seed)
    m = int(n_vertices * avg_degree)
    n_hubs = max(3, int(n_vertices * hub_fraction))
    # sources: mildly skewed (active tweeters)
    deg = _powerlaw_degrees(n_vertices, avg_degree, alpha=2.3,
                            d_min=1, d_max=max(8, n_vertices // 20), rng=rng)
    src = np.repeat(np.arange(n_vertices), deg)[:m]
    if len(src) < m:
        src = np.concatenate([src, rng.integers(0, n_vertices,
                                                m - len(src))])
    # destinations: hub_share goes to hubs (zipf within hubs), rest uniform
    to_hub = rng.random(m) < hub_share
    dst = np.empty(m, dtype=np.int64)
    hub_rank = rng.zipf(1.6, size=int(to_hub.sum()))
    dst[to_hub] = np.minimum(hub_rank - 1, n_hubs - 1)
    dst[~to_hub] = rng.integers(0, n_vertices, int((~to_hub).sum()))
    return GraphSpec("Twitter", DataSource.SOCIAL, n_vertices,
                     np.column_stack([src, dst]), directed=True,
                     meta={"n_hubs": n_hubs, "seed": seed,
                           "avg_degree": avg_degree})
