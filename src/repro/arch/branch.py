"""Branch predictor models.

The paper reports branch miss-prediction rate per workload (Fig. 6): most
graph workloads stay below 5 % — their branches are loop back-edges, which
history predictors nail — while TC reaches 10.7 % because the outcome of
its neighbour-list *intersection* compares is data-dependent and effectively
random.  A gshare predictor over the traced (site, outcome) stream
reproduces exactly this contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BranchStats:
    """Outcome of a branch-prediction simulation."""

    branches: int
    mispredicts: int

    @property
    def miss_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def mpki(self, n_instrs: int) -> float:
        return 1000.0 * self.mispredicts / n_instrs if n_instrs else 0.0


class BimodalPredictor:
    """Per-site 2-bit saturating counters (no global history)."""

    def __init__(self, table_bits: int = 12):
        self.mask = (1 << table_bits) - 1
        self.table = [2] * (1 << table_bits)   # weakly taken

    def simulate(self, sites: np.ndarray, taken: np.ndarray) -> BranchStats:
        table = self.table
        mask = self.mask
        miss = 0
        for s, t in zip(np.asarray(sites).tolist(),
                        np.asarray(taken).tolist()):
            idx = s & mask
            c = table[idx]
            if (c >= 2) != bool(t):
                miss += 1
            table[idx] = min(c + 1, 3) if t else max(c - 1, 0)
        return BranchStats(len(sites), miss)


class GSharePredictor:
    """Global-history XOR site-indexed 2-bit counters (McFarling gshare)."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12):
        self.table_bits = table_bits
        self.mask = (1 << table_bits) - 1
        self.hmask = (1 << history_bits) - 1
        self.table = [2] * (1 << table_bits)
        self.history = 0

    def simulate(self, sites: np.ndarray, taken: np.ndarray) -> BranchStats:
        table = self.table
        mask = self.mask
        hmask = self.hmask
        hist = self.history
        miss = 0
        for s, t in zip(np.asarray(sites).tolist(),
                        np.asarray(taken).tolist()):
            idx = (s ^ hist) & mask
            c = table[idx]
            t = bool(t)
            if (c >= 2) != t:
                miss += 1
            table[idx] = min(c + 1, 3) if t else max(c - 1, 0)
            hist = ((hist << 1) | t) & hmask
        self.history = hist
        return BranchStats(len(sites), miss)


class AlwaysTakenPredictor:
    """Static always-taken baseline (sanity lower bound)."""

    def simulate(self, sites: np.ndarray, taken: np.ndarray) -> BranchStats:
        taken = np.asarray(taken, dtype=bool)
        return BranchStats(len(taken), int((~taken).sum()))


PREDICTORS = {
    "gshare": GSharePredictor,
    "bimodal": BimodalPredictor,
    "always_taken": AlwaysTakenPredictor,
}


def simulate_branches(sites: np.ndarray, taken: np.ndarray,
                      kind: str = "gshare", **kwargs) -> BranchStats:
    """Run predictor ``kind`` over a (site, outcome) stream."""
    try:
        cls = PREDICTORS[kind]
    except KeyError:
        raise ValueError(f"unknown predictor {kind!r}; "
                         f"choose from {sorted(PREDICTORS)}") from None
    return cls(**kwargs).simulate(sites, taken)
