"""Tests for the GraphBIG-style CSV dataset format."""

import numpy as np
import pytest

from repro.datagen import ldbc, watson_gene
from repro.io.csvgraph import load_csv_graph, save_csv_graph


class TestCSVGraph:
    def test_roundtrip(self, tmp_path):
        spec = ldbc(200, avg_degree=5, seed=2)
        save_csv_graph(spec, tmp_path)
        back, props = load_csv_graph(tmp_path)
        assert back.n == spec.n
        assert np.array_equal(np.sort(back.edges, axis=0),
                              np.sort(spec.edges, axis=0))
        assert props == {}

    def test_roundtrip_with_properties(self, tmp_path):
        spec = watson_gene(300, seed=1)
        etypes = spec.meta["entity_type"]
        vprops = {v: {"etype": str(int(etypes[v]))}
                  for v in range(spec.n)}
        save_csv_graph(spec, tmp_path, vertex_props=vprops)
        back, props = load_csv_graph(tmp_path)
        assert props[0]["etype"] == str(int(etypes[0]))
        assert len(props) == spec.n

    def test_isolated_vertices_preserved(self, tmp_path):
        from repro.core.taxonomy import DataSource
        from repro.datagen import GraphSpec
        spec = GraphSpec("iso", DataSource.SYNTHETIC, 10,
                         np.array([[0, 1]]))
        save_csv_graph(spec, tmp_path)
        back, _ = load_csv_graph(tmp_path)
        assert back.n == 10

    def test_bad_vertex_header(self, tmp_path):
        (tmp_path / "vertex.csv").write_text("nid\n0\n")
        (tmp_path / "edge.csv").write_text("src,dst\n")
        with pytest.raises(ValueError):
            load_csv_graph(tmp_path)

    def test_bad_edge_header(self, tmp_path):
        (tmp_path / "vertex.csv").write_text("id\n0\n")
        (tmp_path / "edge.csv").write_text("from,to\n")
        with pytest.raises(ValueError):
            load_csv_graph(tmp_path)

    def test_name_and_flags(self, tmp_path):
        from repro.core.taxonomy import DataSource
        spec = ldbc(150, avg_degree=4, seed=0)
        save_csv_graph(spec, tmp_path)
        back, _ = load_csv_graph(tmp_path, name="mygraph",
                                 directed=False,
                                 source=DataSource.SOCIAL)
        assert back.name == "mygraph"
        assert back.directed is False
        assert back.source == DataSource.SOCIAL
