"""Cluster scale-out: throughput at 1 / 2 / 4 shards, fixed per-shard
memory.

The scale-out claim behind ``repro.cluster``: when the distinct-query
working set does not fit one node's result cache, sharding the keyspace
*partitions the working set* — each shard's slice fits its fixed-size
cache, so the cluster serves from warm memory what a single node must
keep recomputing.  That is the same lever industrial deployments buy
shards for (aggregate cache/memory capacity), and — unlike CPU-parallel
speedup — it is honestly measurable on the single-core CI box this repo
targets: the contrast is cache hits vs recomputation, not core count.

Measured: a closed-loop generator cycles through a catalog of distinct
queries (2 workloads x 5 datasets x 2 seeds) against an in-process
cluster at 1, 2, and 4 shards.  Every shard gets the *same* bounded row
cache, sized so the full catalog exceeds it but a 4-shard slice fits
(computed from the ring assignment, not hand-tuned).  The cyclic access
pattern is LRU's worst case, so the undersized single shard recomputes
every request at steady state, while at 4 shards the timed pass is all
cache hits.  Each config gets one untimed warm pass, then a timed pass;
the headline is the 4-shard / 1-shard throughput ratio.

This measures the *shape* of scale-out (hit-rate recovery under
partitioned capacity), not absolute req/s — see EXPERIMENTS.md.
Results land in ``BENCH_cluster.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py
"""

from __future__ import annotations

import json
from pathlib import Path

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.cluster import ClusterSpec, ClusterThread, ShardService
from repro.harness import format_table
from repro.service import (
    CacheTiers,
    LoadGenerator,
    PoolConfig,
    Query,
    workload_mix,
)

WORKLOADS = ("BFS", "CComp")
DATASETS = ("twitter", "knowledge", "watson", "roadnet", "ldbc")
SEEDS = 2
SCALE = 0.02
ROUNDS = 8                   # timed passes over the catalog
CONCURRENCY = 4
SHARD_COUNTS = (1, 2, 4)
MIN_SPEEDUP_4X = 1.8
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def catalog() -> list[Query]:
    # characterize is the expensive op (full architectural model per
    # cell) — the recompute cost a cache miss actually carries in the
    # serving story, and orders of magnitude above the wire round-trip
    return workload_mix(WORKLOADS, DATASETS, scale=SCALE, seeds=SEEDS,
                        machine="test", op="characterize")


def row_capacity() -> int:
    """Per-shard row-cache size: the largest 4-shard slice of the
    catalog.  Derived from the ring, so every shard's slice fits at 4
    shards by construction — and the full catalog cannot fit one shard
    (asserted below), which is the whole experiment."""
    cells_per_dataset = len(WORKLOADS) * SEEDS
    assignment = ClusterSpec.of(4, datasets=DATASETS).assignment()
    return max(len(owned) for owned in assignment.values()) \
        * cells_per_dataset


def drive(n_shards: int, plan: list[Query], capacity: int) -> dict:
    spec = ClusterSpec.of(n_shards, datasets=DATASETS)

    def factory(name: str, owned: tuple[str, ...]) -> ShardService:
        service = ShardService(
            name, frozenset(owned),
            pool_config=PoolConfig(size=2, isolation="inline"),
            caches=CacheTiers.build(row_capacity=capacity))
        # experimental control: inline workers also consult the harness's
        # process-global unbounded memo, which (a) is shared across every
        # shard *thread* and config in this one process and (b) has no
        # capacity bound — both break the fixed-per-shard-memory premise.
        # The bounded row cache above is the only warm tier measured.
        service.pool.memoize = False
        return service

    with ClusterThread(spec, shard_factory=factory) as cluster:
        gen = LoadGenerator(cluster.router_thread.host,
                            cluster.router_port,
                            concurrency=CONCURRENCY)
        warm = gen.run(plan[:len(catalog())])     # one untimed pass
        report = gen.run(plan)
    assert warm.failed == 0, warm.failures_by_kind
    assert report.failed == 0, report.failures_by_kind
    total = len(plan)
    return {"shards": n_shards,
            "throughput_rps": round(report.throughput_rps, 3),
            "elapsed_s": round(report.elapsed_s, 4),
            "served": dict(report.served),
            "cache_hit_rate": round(
                report.served.get("cache", 0) / total, 4),
            "latency_ms": report.summary()["latency_ms"]}


def run_cluster_scaling_benchmark() -> dict:
    cells = catalog()
    capacity = row_capacity()
    # the premise: the catalog overflows one shard's cache but each
    # 4-shard slice fits — otherwise there is nothing to measure
    assert capacity < len(cells), (capacity, len(cells))
    plan = [q for _ in range(ROUNDS) for q in cells]

    runs = {n: drive(n, plan, capacity) for n in SHARD_COUNTS}
    base = runs[SHARD_COUNTS[0]]["throughput_rps"]
    for run in runs.values():
        run["speedup_vs_1"] = round(
            run["throughput_rps"] / base, 3) if base else float("inf")

    return {
        "config": {"workloads": list(WORKLOADS),
                   "datasets": list(DATASETS), "seeds": SEEDS,
                   "scale": SCALE, "machine": "test",
                   "catalog_cells": len(cells),
                   "row_capacity_per_shard": capacity,
                   "rounds": ROUNDS, "requests": len(plan),
                   "concurrency": CONCURRENCY,
                   "access_pattern": "cyclic catalog sweep "
                                     "(LRU worst case)"},
        "methodology": "fixed per-shard cache capacity; sharding "
                       "partitions the working set so slices fit warm "
                       "memory — shape of scale-out, not absolute "
                       "throughput (single-core host)",
        "runs": [runs[n] for n in SHARD_COUNTS],
        "speedup_4_vs_1": runs[4]["speedup_vs_1"],
        "floor": MIN_SPEEDUP_4X,
    }


def _render(results: dict) -> str:
    rows = [[r["shards"], r["throughput_rps"], r["speedup_vs_1"],
             r["cache_hit_rate"], r["served"].get("cache", 0),
             r["served"].get("executed", 0),
             r["latency_ms"]["p95"]]
            for r in results["runs"]]
    return format_table(
        ["shards", "rps", "speedup", "hit_rate", "cached", "executed",
         "p95_ms"],
        rows, title="cluster scale-out — fixed per-shard cache, "
                    "cyclic catalog sweep")


def test_cluster_scaling():
    results = run_cluster_scaling_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results)
         + f"\nspeedup at 4 shards: {results['speedup_4_vs_1']:.2f}x "
         f"(floor: {MIN_SPEEDUP_4X}x)")

    by_shards = {r["shards"]: r for r in results["runs"]}
    # the partitioned working set fits at 4 shards: the timed pass is
    # (almost) all cache hits, while 1 shard recomputes at steady state
    assert by_shards[4]["cache_hit_rate"] >= 0.95, by_shards[4]
    assert by_shards[1]["cache_hit_rate"] <= 0.25, by_shards[1]
    # throughput scales monotonically with shard count here
    assert (by_shards[1]["throughput_rps"]
            <= by_shards[2]["throughput_rps"]
            <= by_shards[4]["throughput_rps"]), results["runs"]
    assert results["speedup_4_vs_1"] >= MIN_SPEEDUP_4X, results


if __name__ == "__main__":
    results = run_cluster_scaling_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    print(f"speedup at 4 shards: {results['speedup_4_vs_1']:.2f}x "
          f"(floor: {MIN_SPEEDUP_4X}x)")
    print(f"wrote {OUT_PATH}")
