"""Raw simulator throughput benchmarks (pytest-benchmark timings).

Not a paper figure — these measure the substrate itself so performance
regressions in the cache/TLB/branch/SIMT engines are caught, and so users
can size their own experiments.
"""

import numpy as np
import pytest

from repro.arch import (
    Cache,
    CacheConfig,
    GSharePredictor,
    TLB,
    TLBConfig,
    stack_distances,
)
from repro.gpu.simt import KernelAccum, slots_for_loop

N = 200_000


@pytest.fixture(scope="module")
def addrs():
    rng = np.random.default_rng(0)
    return rng.integers(0, 1 << 24, N).astype(np.uint64)


def test_cache_simulator_throughput(benchmark, addrs):
    cfg = CacheConfig("L2", size=32 * 1024, assoc=8)

    def run():
        c = Cache(cfg)
        return int(c.simulate(addrs).sum())

    misses = benchmark(run)
    assert 0 < misses <= N


def test_stack_distance_throughput(benchmark, addrs):
    sub = addrs[:40_000]

    def run():
        return stack_distances(sub, 64, n_sets=64)

    d = benchmark(run)
    assert len(d) == len(sub)


def test_tlb_throughput(benchmark, addrs):
    def run():
        t = TLB(TLBConfig(entries=64, assoc=4))
        t.simulate(addrs)
        return t.stats().misses

    assert benchmark(run) > 0


def test_branch_predictor_throughput(benchmark):
    rng = np.random.default_rng(1)
    sites = rng.integers(0, 64, N).astype(np.uint32)
    taken = rng.integers(0, 2, N).astype(np.uint8)

    def run():
        return GSharePredictor().simulate(sites, taken).mispredicts

    assert benchmark(run) > 0


def test_simt_accounting_throughput(benchmark):
    rng = np.random.default_rng(2)
    trips = rng.integers(0, 24, 50_000)

    def run():
        acc = KernelAccum()
        acc.loop(trips, 4.0)
        threads, steps, slots = slots_for_loop(trips)
        addrs = rng.integers(0, 1 << 22, len(threads))
        acc.mem_op(slots, addrs)
        return acc.stats.mdr

    mdr = benchmark(run)
    assert 0 <= mdr <= 1
