"""Reference Gibbs sampler for Bayesian-network inference.

Algorithmic ground truth for the Gibbs workload: resample each unobserved
variable from its full conditional given the current state (which depends
only on its Markov blanket), sweep repeatedly, and estimate marginals from
post-burn-in samples.  The framework-based workload in
:mod:`repro.workloads.gibbs` must produce identical marginal estimates for
the same seed (tested), while additionally emitting the CompProp access
pattern into the tracer.
"""

from __future__ import annotations

import numpy as np

from .network import BayesianNetwork


def gibbs_sample(bn: BayesianNetwork,
                 evidence: dict[int, int] | None = None,
                 n_sweeps: int = 100,
                 burn_in: int = 10,
                 seed: int = 0,
                 init_state: np.ndarray | None = None
                 ) -> tuple[np.ndarray, list[np.ndarray]]:
    """Run Gibbs sampling; returns ``(final_state, marginals)``.

    ``marginals[v]`` is the estimated distribution over variable ``v``'s
    states from the retained sweeps.  Evidence variables are clamped.
    """
    if burn_in >= n_sweeps:
        raise ValueError("burn_in must be < n_sweeps")
    rng = np.random.default_rng(seed)
    evidence = dict(evidence or {})
    if init_state is not None:
        state = np.asarray(init_state, dtype=np.int64).copy()
        if len(state) != bn.n:
            raise ValueError("init_state has wrong length")
    else:
        state = np.array([rng.integers(0, a) for a in bn.arities],
                         dtype=np.int64)
    for v, x in evidence.items():
        if not 0 <= x < bn.arities[v]:
            raise ValueError(f"evidence {v}={x} out of range")
        state[v] = x
    free = [v for v in range(bn.n) if v not in evidence]
    counts = [np.zeros(a, dtype=np.int64) for a in bn.arities]
    for sweep in range(n_sweeps):
        for v in free:
            probs = bn.conditional_row(v, state)
            state[v] = rng.choice(len(probs), p=probs)
        if sweep >= burn_in:
            for v in range(bn.n):
                counts[v][state[v]] += 1
    retained = n_sweeps - burn_in
    marginals = [c / retained for c in counts]
    return state, marginals


def exact_marginals_brute_force(bn: BayesianNetwork,
                                evidence: dict[int, int] | None = None
                                ) -> list[np.ndarray]:
    """Exact marginals by joint enumeration — only for tiny test networks
    (used to validate the sampler's convergence in tests)."""
    evidence = dict(evidence or {})
    total_states = int(np.prod(bn.arities))
    if total_states > 1 << 20:
        raise ValueError("network too large for brute force")
    marginals = [np.zeros(a) for a in bn.arities]
    state = np.zeros(bn.n, dtype=np.int64)
    z = 0.0
    for code in range(total_states):
        c = code
        ok = True
        for v in range(bn.n):
            state[v] = c % bn.arities[v]
            c //= bn.arities[v]
            if v in evidence and state[v] != evidence[v]:
                ok = False
                break
        if not ok:
            continue
        p = 1.0
        for v in range(bn.n):
            cpt = bn.cpts[v]
            pstates = tuple(int(state[p_]) for p_ in bn.parents[v])
            p *= cpt.prob(int(state[v]), pstates)
        z += p
        for v in range(bn.n):
            marginals[v][state[v]] += p
    if z > 0:
        for m in marginals:
            m /= z
    return marginals
