"""Request scheduling: admission control, micro-batching, result caching.

The scheduler is the front door between the connection handlers and the
worker pool.  Three mechanisms turn one-shot batch machinery into a
traffic-serving system:

* **Admission control** — at most ``max_pending`` distinct executions may
  be queued-or-running; beyond that, new work is rejected with
  :class:`~repro.core.errors.AdmissionRejected` (backpressure, not an
  unbounded queue).  Coalesced waiters do not count: joining an in-flight
  execution consumes no new capacity.
* **Micro-batching** — requests for an identical cell (same
  ``(workload, dataset, scale, seed, machine, gpu)`` identity) that
  arrive while one is queued or executing are *coalesced*: one execution
  runs, every waiter gets the result.  An optional ``batch_window_s``
  holds a fresh execution briefly so near-simultaneous duplicates can
  pile on.
* **Row caching** — completed records land in the
  :class:`~repro.service.cache.CacheTiers` row tier; an identical later
  request is answered without touching the pool.

Everything runs on the server's event loop; the only await points are the
pool handoff and the batch window, so the bookkeeping needs no locks.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..core.errors import (
    AdmissionRejected,
    CellExecutionError,
    DeadlineExceeded,
)
from ..obs.logs import get_logger
from ..resilience.cell import Cell
from .cache import CacheTiers, row_key
from .pool import WorkerPool

log = get_logger("service.scheduler")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for admission, coalescing, and degraded serving."""

    max_pending: int = 64            # distinct executions queued+running
    batching: bool = True            # coalesce identical in-flight cells
    batch_window_s: float = 0.0      # hold before dispatch to collect dups
    caching: bool = True             # serve/fill the row cache tier
    serve_stale: bool = True         # degraded reads on execution failure
    stale_cap_s: float = 60.0        # hard staleness cap for degraded reads

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.stale_cap_s <= 0:
            raise ValueError("stale_cap_s must be positive")


@dataclass
class SchedulerStats:
    """Traffic counters: how requests were satisfied."""

    submitted: int = 0
    cache_hits: int = 0              # answered from the row tier
    coalesced: int = 0               # joined an in-flight execution
    executed: int = 0                # dispatched to the pool
    rejected: int = 0                # shed by admission control
    failed: int = 0                  # executions that raised
    shed_expired: int = 0            # deadline lapsed before execution
    degraded: int = 0                # stale rows served on failure

    def as_dict(self) -> dict[str, int]:
        return {"submitted": self.submitted, "cache_hits": self.cache_hits,
                "coalesced": self.coalesced, "executed": self.executed,
                "rejected": self.rejected, "failed": self.failed,
                "shed_expired": self.shed_expired,
                "degraded": self.degraded}


class _Batch:
    """One in-flight execution and everyone waiting on it.

    ``deadline`` is the *latest* absolute deadline among waiters: the
    execution is still worth running while any requester would accept
    the result, and sheddable once every one of them has given up.
    """

    def __init__(self, cell: Cell):
        self.cell = cell
        self.waiters: list[asyncio.Future] = []
        self.deadline: float | None = None
        self._unbounded = False          # a waiter with no deadline joined

    def join(self, deadline: float | None = None) -> asyncio.Future:
        fut = asyncio.get_running_loop().create_future()
        self.waiters.append(fut)
        if deadline is None:
            self._unbounded = True
            self.deadline = None
        elif not self._unbounded:
            self.deadline = deadline if self.deadline is None \
                else max(self.deadline, deadline)
        return fut

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def resolve(self, record: dict) -> None:
        for fut in self.waiters:
            if not fut.done():
                # each waiter gets its own shallow copy: the connection
                # handlers annotate the record (cache/coalesce tags)
                fut.set_result(dict(record))

    def fail(self, exc: BaseException) -> None:
        for fut in self.waiters:
            if not fut.done():
                fut.set_exception(exc)


class Scheduler:
    """Admission-controlled, coalescing dispatcher over a worker pool."""

    def __init__(self, pool: WorkerPool, caches: CacheTiers | None = None,
                 config: SchedulerConfig | None = None, *,
                 governor=None):
        self.pool = pool
        self.caches = caches
        self.config = config or SchedulerConfig()
        self.stats = SchedulerStats()
        #: optional :class:`~repro.tenancy.qos.TenantGovernor`; when
        #: absent, submit() follows the single-tenant path unchanged
        self.governor = governor
        self._inflight: dict[str, _Batch] = {}
        self._pending = 0
        self._tasks: set[asyncio.Task] = set()

    @property
    def pending(self) -> int:
        """Distinct executions currently queued or running."""
        return self._pending

    # -- observability -------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Expose queue depth and traffic counters on a registry.

        The queue-depth gauge is a callback (read at scrape time); the
        counters are a collector over :class:`SchedulerStats` — the
        dispatch hot path gains no new writes.
        """
        registry.gauge(
            "scheduler_pending",
            "distinct executions queued or running (queue depth)",
            callback=lambda: float(self._pending))
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> dict:
        return {
            "scheduler_requests_total": {
                "type": "counter",
                "help": "scheduler outcomes (cache_hits/coalesced/"
                        "executed/rejected/failed/submitted)",
                "samples": [{"labels": {"outcome": k}, "value": float(v)}
                            for k, v in self.stats.as_dict().items()]},
        }

    def _shed(self, key: str, deadline: float, now: float) -> None:
        """Count and raise a scheduler-stage deadline shed."""
        self.stats.shed_expired += 1
        overshoot = now - deadline
        log.warning("shed expired request %s (%.1fms past deadline)",
                    key, overshoot * 1e3,
                    extra={"cell": key, "overshoot_s": overshoot})
        raise DeadlineExceeded("scheduler", overshoot, 0.0)

    async def submit(self, cell: Cell,
                     deadline: float | None = None,
                     tenant: str | None = None) -> dict:
        """Resolve one request: cache tier, coalesce, or execute.

        Returns the flat row record (annotated with ``served``:
        ``cache`` / ``coalesced`` / ``executed`` / ``stale``); raises the
        typed execution error if the cell's execution failed,
        :class:`AdmissionRejected` when the server is saturated, or
        :class:`DeadlineExceeded` when ``deadline`` (absolute epoch
        seconds) lapsed before the work could be served — expired work
        is *shed*, never executed.

        With a governor configured, ``tenant`` is charged the admission
        token, reads and fills go through the tenant's cache partition
        (when it has one), and the execution holds a weighted-fair slot
        for its duration — :class:`~repro.core.errors.QuotaExceeded`
        surfaces when the tenant is over its rate or queue quota.
        Coalescing stays global: joining another tenant's in-flight
        execution is free capacity, not a leak, because the result is
        identical by construction.
        """
        self.stats.submitted += 1
        key = row_key(cell)
        if deadline is not None and time.time() >= deadline:
            self._shed(key, deadline, time.time())
        gov = self.governor
        rows = self.caches.rows if self.caches is not None else None
        tname = None
        if gov is not None:
            tname = gov.resolve(tenant)
            gov.admit(tname)
            part = gov.cache_for(tname)
            if part is not None:
                rows = part
        if self.config.caching and rows is not None:
            record = rows.get(key)
            if record is not None:
                self.stats.cache_hits += 1
                return dict(record, served="cache")
        if self.config.batching and key in self._inflight:
            self.stats.coalesced += 1
            record = await self._inflight[key].join(deadline)
            if not record.get("degraded"):
                record["served"] = "coalesced"
            return record
        if self._pending >= self.config.max_pending:
            self.stats.rejected += 1
            log.warning("admission rejected %s (%d/%d pending)",
                        key, self._pending, self.config.max_pending,
                        extra={"cell": key, "pending": self._pending})
            raise AdmissionRejected(self._pending, self.config.max_pending)
        if gov is not None:
            await gov.acquire_slot(tname)
            if deadline is not None and time.time() >= deadline:
                gov.release_slot()
                self._shed(key, deadline, time.time())
        batch = _Batch(cell)
        self._inflight[key] = batch
        self._pending += 1
        fut = batch.join(deadline)
        task = asyncio.get_running_loop().create_task(
            self._execute(key, batch, fill=rows))
        if gov is not None:
            # the slot covers the whole execution (including the batch
            # window), released exactly once when the task settles
            task.add_done_callback(lambda _t: gov.release_slot())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        record = await fut
        if not record.get("degraded"):
            record["served"] = "executed"
        return record

    def _stale_record(self, key: str, rows) -> dict | None:
        """Degraded fallback: an expired-but-present row within the
        staleness cap, marked so the client knows what it got."""
        if not (self.config.serve_stale and self.config.caching
                and rows is not None):
            return None
        stale = rows.get_stale(key, self.config.stale_cap_s)
        if stale is None:
            return None
        record, age = stale
        return dict(record, degraded=True, staleness_s=round(age, 3),
                    served="stale")

    async def _execute(self, key: str, batch: _Batch,
                       fill=None) -> None:
        if self.config.batch_window_s > 0:
            await asyncio.sleep(self.config.batch_window_s)
        now = time.time()
        if batch.expired(now):
            # every waiter's deadline lapsed while queued: shed the work
            # instead of burning a pool slot on a dead request
            self._inflight.pop(key, None)
            self._pending -= 1
            self.stats.shed_expired += 1
            overshoot = now - (batch.deadline or now)
            log.warning("shed expired batch %s (%.1fms past deadline)",
                        key, overshoot * 1e3,
                        extra={"cell": key, "overshoot_s": overshoot})
            batch.fail(DeadlineExceeded("scheduler", overshoot, 0.0))
            return
        try:
            record = await self.pool.run_record(batch.cell)
        except BaseException as e:  # noqa: BLE001 — fan out, don't lose it
            self.stats.failed += 1
            self._inflight.pop(key, None)
            self._pending -= 1
            log.warning("execution failed for %s: %s", key, e,
                        extra={"cell": key,
                               "kind": getattr(e, "kind", "internal")})
            stale = None
            if isinstance(e, CellExecutionError):
                # degraded serving: a stale answer with a disclosed age
                # beats an error while the backend is failing — but only
                # for *execution* failures, never for sheds or cancels
                stale = self._stale_record(key, fill)
            if stale is not None:
                self.stats.degraded += 1
                log.info("served stale row for %s (age %.3fs)", key,
                         stale["staleness_s"],
                         extra={"cell": key,
                                "staleness_s": stale["staleness_s"]})
                batch.resolve(stale)
                return
            batch.fail(e)
            if not isinstance(e, (CellExecutionError, Exception)):
                raise          # CancelledError etc.: propagate after fanning
            return
        self.stats.executed += 1
        # drop from the coalescing map *before* resolving waiters so a
        # request racing in after completion re-executes (or hits the
        # cache) instead of joining a finished batch
        self._inflight.pop(key, None)
        self._pending -= 1
        if self.config.caching and fill is not None:
            fill.put(key, dict(record))
        batch.resolve(record)

    async def drain(self) -> None:
        """Wait for every in-flight execution to settle (shutdown path)."""
        if self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
