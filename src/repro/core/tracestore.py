"""Content-addressed on-disk store for frozen workload traces.

A :class:`~repro.core.trace.FrozenTrace` depends only on (workload,
dataset identity, seed, user params) — it is machine-independent by
construction (the framework emits virtual addresses and instruction
counts; no cache/TLB/branch state enters trace generation).  A machine
sensitivity sweep therefore only needs to *execute* the workload once and
can replay the stored trace against every :class:`MachineConfig`.

Layout: each entry is ``<key>.npz`` (numpy columns) plus a
``<key>.json`` sidecar carrying the regions table, scalar outputs, trace
counters and provenance.  The key is the sha256 of the canonical JSON of
(workload, dataset name/n/m/seed, canonicalized params, trace-format
version), so different seeds/params/datasets can never share an entry and
a format bump invalidates every old entry at once.

Writes are atomic (tmp file + ``os.replace``); the sidecar is written
last and acts as the commit marker.  Loads fail open: a corrupt or
partially written entry counts as a miss and the workload is re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .trace import FrozenTrace, Region

#: Bump when the FrozenTrace schema or the emission semantics of the
#: framework primitives change — stored entries from older formats must
#: never be replayed as if current.
TRACE_FORMAT_VERSION = 1

_ARRAY_FIELDS = ("addrs", "rw", "iat", "acc_region", "branch_sites",
                 "branch_taken", "region_seq", "region_instrs")


class TraceStoreKeyError(ValueError):
    """Raised when a params value cannot be canonicalized into a key."""


def _canon(value: Any) -> Any:
    """Canonicalize one params value into deterministic JSON-able form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": hashlib.sha256(
                    np.ascontiguousarray(value).tobytes()).hexdigest(),
                "dtype": str(value.dtype),
                "shape": list(value.shape)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canon(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items(),
                                                     key=lambda kv: str(kv[0]))}
    raise TraceStoreKeyError(
        f"cannot canonicalize params value of type {type(value).__name__}")


@dataclass
class TraceStoreStats:
    """Store efficacy counters (exposed via obs and ``repro stats``)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0      # corrupt / unreadable entries (treated as misses)

    def as_dict(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "invalid": self.invalid,
                "hit_rate": self.hits / total if total else 0.0}


@dataclass
class StoredTrace:
    """One loaded store entry: the trace plus run context for the harness."""

    trace: FrozenTrace
    footprint_bytes: int
    outputs: dict[str, Any]
    params: dict[str, Any]
    key: str


#: entries kept in the per-store in-memory cache (a machine sweep replays
#: the same handful of traces many times; re-parsing the npz per machine
#: was a measurable share of sweep time)
_MEM_CACHE_ENTRIES = 8


class TraceStore:
    """Content-addressed trace store rooted at a directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = TraceStoreStats()
        self._mem: dict[str, StoredTrace] = {}

    def _mem_put(self, key: str, entry: StoredTrace) -> None:
        self._mem[key] = entry
        if len(self._mem) > _MEM_CACHE_ENTRIES:
            del self._mem[next(iter(self._mem))]

    def _mem_get(self, key: str) -> StoredTrace | None:
        entry = self._mem.get(key)
        if entry is None:
            return None
        # fresh shallow dicts: callers may mutate outputs/params copies
        return StoredTrace(trace=entry.trace,
                           footprint_bytes=entry.footprint_bytes,
                           outputs=dict(entry.outputs),
                           params=dict(entry.params),
                           key=key)

    # -- keys ----------------------------------------------------------------
    def key_for(self, workload: str, spec, params: dict | None = None) -> str:
        """Content key of (workload, dataset identity, canonical params).

        ``spec`` is a :class:`~repro.datagen.spec.GraphSpec`; its
        (name, n, m, seed) identify the generated dataset.  Raises
        :class:`TraceStoreKeyError` for params that cannot be
        canonicalized (e.g. live objects) — callers should bypass the
        store for those runs rather than risk a collision.
        """
        ident = {
            "v": TRACE_FORMAT_VERSION,
            "workload": workload,
            "dataset": spec.name,
            "n": int(spec.n),
            "m": int(spec.m),
            "seed": spec.seed,
            "params": _canon(dict(params or {})),
        }
        blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.npz", self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        npz, sidecar = self._paths(key)
        return npz.exists() and sidecar.exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))

    # -- load/save -----------------------------------------------------------
    def load(self, key: str) -> StoredTrace | None:
        """Load an entry; ``None`` on miss or corruption (fail open)."""
        cached = self._mem_get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        npz_path, sidecar_path = self._paths(key)
        if not (npz_path.exists() and sidecar_path.exists()):
            self.stats.misses += 1
            return None
        try:
            meta = json.loads(sidecar_path.read_text())
            if meta.get("format_version") != TRACE_FORMAT_VERSION:
                raise ValueError("trace format version mismatch")
            with np.load(npz_path, allow_pickle=False) as data:
                cols = {f: data[f] for f in _ARRAY_FIELDS}
            regions = {int(r["rid"]): Region(int(r["rid"]), r["name"],
                                             int(r["code_bytes"]),
                                             bool(r["framework"]))
                       for r in meta["regions"]}
            trace = FrozenTrace(
                **cols,
                regions=regions,
                n_instrs=int(meta["n_instrs"]),
                fw_instrs=int(meta["fw_instrs"]),
                fw_accesses=int(meta["fw_accesses"]),
                n_accesses=int(meta["n_accesses"]),
            )
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        entry = StoredTrace(trace=trace,
                            footprint_bytes=int(meta.get("footprint_bytes", 0)),
                            outputs=dict(meta.get("outputs", {})),
                            params=dict(meta.get("params", {})),
                            key=key)
        self._mem_put(key, entry)
        return self._mem_get(key)

    def save(self, key: str, trace: FrozenTrace, *,
             footprint_bytes: int = 0,
             outputs: dict[str, Any] | None = None,
             params: dict[str, Any] | None = None,
             provenance: dict[str, Any] | None = None) -> Path:
        """Persist one entry atomically; returns the sidecar path.

        ``outputs``/``params`` must already be JSON-safe scalars (the
        harness filters them); ``provenance`` is free-form context
        (workload, dataset, ...) recorded for debugging only.
        """
        npz_path, sidecar_path = self._paths(key)
        cols = {f: getattr(trace, f) for f in _ARRAY_FIELDS}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                # uncompressed: traces are a few MB and the zlib pass was
                # the single largest cost of a store write
                np.savez(fh, **cols)
            os.replace(tmp, npz_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        meta = {
            "format_version": TRACE_FORMAT_VERSION,
            "key": key,
            "regions": [{"rid": r.rid, "name": r.name,
                         "code_bytes": r.code_bytes,
                         "framework": r.framework}
                        for r in trace.regions.values()],
            "n_instrs": int(trace.n_instrs),
            "fw_instrs": int(trace.fw_instrs),
            "fw_accesses": int(trace.fw_accesses),
            "n_accesses": int(trace.n_accesses),
            "footprint_bytes": int(footprint_bytes),
            "outputs": outputs or {},
            "params": params or {},
            "provenance": provenance or {},
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(meta, fh)
            os.replace(tmp, sidecar_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.stores += 1
        # deliberately NOT seeded into the memory tier: the fail-open
        # contract is that load() reflects what is actually on disk, so a
        # tampered/corrupted entry must read as a miss even right after a
        # save.  The first load pays one npz parse and warms the tier.
        self._mem.pop(key, None)
        return sidecar_path

    # -- observability -------------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Register a snapshot-time collector exporting store counters
        (same pattern as :meth:`repro.service.cache.CacheTiers.bind_metrics`)."""
        def _collect() -> dict[str, dict]:
            s = self.stats
            events = [{"labels": {"event": k}, "value": float(v)}
                      for k, v in (("hit", s.hits), ("miss", s.misses),
                                   ("store", s.stores),
                                   ("invalid", s.invalid))]
            return {
                "trace_store_hits_total": {
                    "type": "counter",
                    "help": "Trace store lookups served from disk",
                    "samples": [{"labels": {}, "value": float(s.hits)}],
                },
                "trace_store_misses_total": {
                    "type": "counter",
                    "help": "Trace store lookups that fell through to "
                            "workload execution",
                    "samples": [{"labels": {}, "value": float(s.misses)}],
                },
                "trace_store_events_total": {
                    "type": "counter",
                    "help": "Trace store events by kind",
                    "samples": events,
                },
            }
        registry.register_collector(_collect)
