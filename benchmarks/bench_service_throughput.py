"""Service throughput: micro-batching + result caching vs. cold recompute.

The serving claim behind `repro.service`: duplicate-heavy traffic (the
industrial regime GraphBIG's System G framing implies — many users, few
distinct heavy queries) is answered from the coalescing and cache tiers
at a multiple of the cache-off baseline's throughput, and a chaos-killed
worker mid-run fails only its own requests while concurrent traffic
proceeds.

Measured: a closed-loop load generator drives 200 requests over a small
workload mix against a live in-process server twice — once with caching
and micro-batching enabled, once with both disabled (every request
recomputes).  Workers run ``inline`` so the contrast isolates the serving
tiers rather than subprocess spawn cost.  Results land in
``BENCH_service.json``.

Also measured: metrics overhead, on all-hits traffic — the cheapest
requests the service can serve, hence the regime where per-request
instrumentation cost is most visible.  The asserted estimator is the
projected ratio: the timed per-request instrumentation delta (a real
histogram observe vs the no-op a ``MetricsRegistry(enabled=False)``
server executes) divided by the measured per-request CPU cost, which
stays deterministic on machines where an end-to-end A/B swings tens of
percent from scheduling noise.  The end-to-end A/B (CPU seconds per
request, instrumented vs no-op registry) is recorded as evidence but
not asserted.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import json
import time
import timeit
from pathlib import Path

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.harness import format_table
from repro.obs import MetricsRegistry
from repro.resilience import Cell, ChaosSpec, Fault
from repro.service import (
    CacheTiers,
    GraphService,
    LoadGenerator,
    PoolConfig,
    SchedulerConfig,
    ServiceThread,
    schedule,
    workload_mix,
)

REQUESTS = 200
OVERHEAD_REQUESTS = 2000     # all-hits traffic is fast; a short plan
                             # would make the overhead ratio pure noise
CONCURRENCY = 16
WORKERS = 8
SCALE = 0.05
SEED = 0
MIX_WORKLOADS = ("BFS", "CComp", "kCore")
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _service(enabled: bool, chaos: ChaosSpec | None = None,
             registry: MetricsRegistry | None = None) -> GraphService:
    return GraphService(
        pool_config=PoolConfig(size=WORKERS, isolation="inline"),
        scheduler_config=SchedulerConfig(batching=enabled,
                                         caching=enabled),
        caches=CacheTiers.build() if enabled else CacheTiers.disabled(),
        chaos=chaos, registry=registry)


def _drive(service: GraphService, plan):
    with ServiceThread(service) as st:
        report = LoadGenerator(st.host, st.port,
                               concurrency=CONCURRENCY).run(plan)
        stats = service.stats()
    return report, stats


def run_service_benchmark() -> dict:
    mix = workload_mix(MIX_WORKLOADS, ("ldbc",), scale=SCALE,
                       machine="test")
    plan = schedule(mix, REQUESTS, seed=SEED)

    on_report, on_stats = _drive(_service(enabled=True), plan)
    off_report, off_stats = _drive(_service(enabled=False), plan)
    speedup = (on_report.throughput_rps / off_report.throughput_rps
               if off_report.throughput_rps else float("inf"))

    # chaos containment: pin a crash fault on one cell of the mix and
    # re-drive — exactly that cell's requests fail, typed, on the wire
    doomed = Cell(workload="kCore", dataset="ldbc", scale=SCALE,
                  seed=0, machine="test")
    chaos = ChaosSpec(faults={doomed.cell_id: Fault("crash")})
    doomed_count = sum(1 for q in plan
                       if q.params["workload"] == "kCore")
    chaos_report, _ = _drive(_service(enabled=True, chaos=chaos), plan)

    # metrics overhead, in two parts.
    #
    # (a) The asserted number: the per-request instrumentation *delta*.
    # On the happy path an instrumented server differs from a
    # MetricsRegistry(enabled=False) server by exactly one call — a real
    # histogram observe instead of a no-op observe (byte/connection
    # counters amortize over a connection's lifetime).  Timing that delta
    # with a tight loop and dividing by the measured per-request CPU cost
    # projects the overhead ratio deterministically: both terms are pure
    # CPU measurements with microsecond-scale bodies, so the projection
    # survives noisy-neighbour machines where an end-to-end A/B
    # (wall-clock or CPU-clock) swings tens of percent run to run.
    #
    # (b) The end-to-end A/B (instrumented vs no-op registry CPU seconds
    # per request over the same all-hits plan) is recorded alongside as
    # evidence but not asserted, for exactly that noise reason.
    warm_plan = schedule(mix, 50, seed=SEED + 1)
    overhead_plan = schedule(mix, OVERHEAD_REQUESTS, seed=SEED)

    def _cpu_us_per_request(registry) -> float:
        with ServiceThread(_service(enabled=True,
                                    registry=registry)) as st:
            gen = LoadGenerator(st.host, st.port,
                                concurrency=CONCURRENCY)
            gen.run(warm_plan)                 # fill the caches untimed
            t0 = time.process_time()
            rep = gen.run(overhead_plan)
            cpu_s = time.process_time() - t0
        assert rep.failed == 0, rep.failures_by_kind
        return cpu_s / rep.ok * 1e6

    def _observe_cost_us(registry) -> float:
        lat = registry.histogram(
            "service_request_latency_ms",
            "request handling latency (ms), by op", labels=("op",))
        child = lat.labels(op="run")
        n = 50_000
        return min(timeit.repeat(lambda: child.observe(1.5),
                                 number=n, repeat=3)) / n * 1e6

    cpu_on = _cpu_us_per_request(MetricsRegistry())
    cpu_off = _cpu_us_per_request(MetricsRegistry(enabled=False))
    delta_us = (_observe_cost_us(MetricsRegistry())
                - _observe_cost_us(MetricsRegistry(enabled=False)))
    projected_ratio = 1.0 + max(0.0, delta_us) / cpu_on

    return {
        "metrics_overhead": {
            "requests": OVERHEAD_REQUESTS,
            "instrument_delta_us_per_request": round(delta_us, 4),
            "cpu_us_per_request_on": round(cpu_on, 3),
            "cpu_us_per_request_off": round(cpu_off, 3),
            "projected_ratio": round(projected_ratio, 4),
            "budget": "projected_ratio <= 1.05 (per-request "
                      "instrumentation delta vs request CPU cost)"},
        "config": {"requests": REQUESTS, "concurrency": CONCURRENCY,
                   "workers": WORKERS, "scale": SCALE, "seed": SEED,
                   "mix": list(MIX_WORKLOADS), "isolation": "inline",
                   "machine": "test"},
        "cache_on": on_report.summary(),
        "cache_off": off_report.summary(),
        "speedup": round(speedup, 3),
        "scheduler_on": on_stats["scheduler"],
        "scheduler_off": off_stats["scheduler"],
        "chaos": {"requests": chaos_report.requests,
                  "doomed_requests": doomed_count,
                  "failed": chaos_report.failed,
                  "ok": chaos_report.ok,
                  "failures_by_kind": dict(chaos_report.failures_by_kind),
                  "contained": (chaos_report.failed == doomed_count
                                and chaos_report.ok
                                == REQUESTS - doomed_count)},
    }


def _render(results: dict) -> str:
    rows = []
    for label in ("cache_on", "cache_off"):
        s = results[label]
        lat = s["latency_ms"]
        rows.append([label.replace("_", " "), s["ok"], s["failed"],
                     s["throughput_rps"], lat["p50"], lat["p95"],
                     lat["p99"]])
    return format_table(
        ["mode", "ok", "failed", "rps", "p50_ms", "p95_ms", "p99_ms"],
        rows, title="service throughput — caching+batching on vs off")


def test_service_throughput_and_chaos_containment():
    results = run_service_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    show(_render(results)
         + f"\nspeedup: {results['speedup']:.1f}x "
         f"(acceptance floor: 5x)\nchaos: {results['chaos']}"
         + f"\nmetrics overhead: {results['metrics_overhead']}")

    assert results["cache_on"]["failed"] == 0
    assert results["cache_off"]["failed"] == 0
    # duplicate-heavy traffic: only the distinct queries execute
    assert results["scheduler_on"]["executed"] == len(MIX_WORKLOADS)
    assert results["speedup"] >= 5.0
    assert results["chaos"]["contained"]
    kinds = set(results["chaos"]["failures_by_kind"])
    assert kinds <= {"crash", "retries-exhausted"}
    # instrumentation budget: the per-request instrumentation delta
    # projects to within 5% of the uninstrumented request cost
    assert results["metrics_overhead"]["projected_ratio"] <= 1.05, \
        results["metrics_overhead"]


if __name__ == "__main__":
    results = run_service_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    print(f"speedup: {results['speedup']:.1f}x")
    print(f"chaos containment: {results['chaos']}")
    print(f"metrics overhead: {results['metrics_overhead']}")
    print(f"wrote {OUT_PATH}")
