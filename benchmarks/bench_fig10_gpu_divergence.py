"""Figure 10 — Branch and memory divergence of GPU workloads (LDBC).

Paper: workloads scatter across the whole (MDR, BDR) space — kCore at the
lower-left, DCentr extremely high on both axes, GColor/BCentr
branch-dominated, CComp/TC memory-only (edge-centric); most workloads are
highly divergent on both sides.
"""

from benchmarks.conftest import show
from repro.harness import GPU_WORKLOAD_SET, format_table, paper_note


def test_fig10_gpu_divergence(suite, benchmark):
    gpu = suite.gpu_rows()
    ldbc_name = suite.ldbc.name

    def assemble():
        return [[w, gpu[(w, ldbc_name)].gpu.mdr,
                 gpu[(w, ldbc_name)].gpu.bdr]
                for w in GPU_WORKLOAD_SET]

    data = benchmark(assemble)
    show(format_table(["workload", "MDR", "BDR"], data,
                      title="Fig. 10 — GPU divergence scatter (LDBC)")
         + paper_note("kCore lower-left; DCentr extreme on both axes; "
                      "GColor/BCentr branch-heavy; CComp/TC edge-centric "
                      "-> low BDR, memory-side divergence only"))
    d = {r[0]: (r[1], r[2]) for r in data}
    # edge-centric kernels: balanced lanes
    assert d["CComp"][1] < 0.1
    assert d["TC"][1] < d["GColor"][1]
    # kCore: the lowest thread-centric BDR (lower-left corner)
    for w in ("BFS", "SPath", "GColor", "DCentr", "BCentr"):
        assert d["kCore"][1] < d[w][1], w
    # DCentr: the extreme corner of the thread-centric kernels — top
    # memory divergence among them plus high branch divergence (paper:
    # "extremely high divergence in both sides"; see EXPERIMENTS.md for
    # the CComp-vs-DCentr raw-MDR note)
    thread_centric = ("BFS", "SPath", "kCore", "GColor", "BCentr")
    assert all(d["DCentr"][0] >= d[w][0] - 0.02 for w in thread_centric)
    assert d["DCentr"][1] > 0.75
    # memory divergence is generally high (irregular graph accesses)
    assert sum(1 for v in d.values() if v[0] > 0.5) >= 5
    # everything stays in [0, 1]
    assert all(0 <= x <= 1 and 0 <= y <= 1 for x, y in d.values())
