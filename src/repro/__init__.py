"""repro — GraphBIG reproduction.

A full-spectrum graph-computing benchmark suite modelled on GraphBIG
(Nai et al., SC'15): a System G-style vertex-centric dynamic property-graph
framework, CSR/COO static formats, the 13 GraphBIG workloads across all
three computation types, dataset generators for all four data-source types,
and a trace-driven CPU/GPU architectural characterization harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import PropertyGraph, datasets, workloads

    g = datasets.ldbc(n_vertices=2000, seed=1).build()
    result = workloads.run("BFS", g, root=0)
    print(result.outputs["levels"][:10])
"""

from .core import (
    EdgeNode,
    Field,
    PropertyGraph,
    Schema,
    Tracer,
    Vertex,
    ComputationType,
    DataSource,
)

__version__ = "1.7.0"

__all__ = [
    "EdgeNode", "Field", "PropertyGraph", "Schema", "Tracer", "Vertex",
    "ComputationType", "DataSource", "__version__",
]
