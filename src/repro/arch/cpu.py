"""Top-down CPU cycle-accounting model.

Combines the memory hierarchy, DTLB, branch predictor and ICache results
into the four top-down categories the paper's Fig. 5 reports — Frontend,
Bad Speculation, Retiring, Backend — plus IPC and the per-component metrics
of Figs. 6–9.

Memory-level parallelism: misses are grouped into windows of
``machine.window_instrs`` retired instructions.  Within a window,
independent misses overlap up to the MSHR count, but misses issued inside a
*serial* framework region (the pointer-chasing linked-list walks:
traverse-neighbours, find-edge, delete-edge/vertex) form dependence chains —
a chain of k misses contributes only one unit of overlap.  This is what
makes CompStruct traversals latency-bound (backend > 80–90 % in Fig. 5)
while the vertex-scan workloads (DCentr) keep high MLP despite their huge
MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import trace as T
from ..core.trace import FrozenTrace
from .branch import BranchStats, simulate_branches
from .hierarchy import HierarchyResult, MemoryHierarchy
from .icache import ICache, ICacheStats
from .machine import SCALED_XEON, MachineConfig
from .replay import replay
from .tlb import TLB, TLBStats

#: Framework regions whose loads form dependence chains (pointer chasing).
SERIAL_REGIONS = frozenset({T.R_NEIGHBORS, T.R_FIND_EDGE,
                            T.R_DELETE_EDGE, T.R_DELETE_VERTEX})


@dataclass
class CycleBreakdown:
    """Cycles per top-down category (Fig. 5)."""

    frontend: float
    bad_speculation: float
    retiring: float
    backend: float

    @property
    def total(self) -> float:
        return (self.frontend + self.bad_speculation
                + self.retiring + self.backend)

    def fractions(self) -> dict[str, float]:
        t = self.total or 1.0
        return {"Frontend": self.frontend / t,
                "BadSpeculation": self.bad_speculation / t,
                "Retiring": self.retiring / t,
                "Backend": self.backend / t}


@dataclass
class CPUMetrics:
    """Complete per-run CPU characterization (the ~30-counter equivalent)."""

    n_instrs: int
    cycles: float
    breakdown: CycleBreakdown
    hierarchy: HierarchyResult
    dtlb: TLBStats
    branch: BranchStats
    icache: ICacheStats
    framework_fraction: float
    mlp: float                     # average achieved memory-level parallelism
    dtlb_walk_cycles_effective: float = 0.0
    footprint_bytes: int = 0

    @property
    def ipc(self) -> float:
        return self.n_instrs / self.cycles if self.cycles else 0.0

    @property
    def dtlb_penalty(self) -> float:
        """DTLB walk cycles (overlap-adjusted) as a fraction of total
        cycles (Fig. 6)."""
        if not self.cycles:
            return 0.0
        return self.dtlb_walk_cycles_effective / self.cycles

    def mpki(self) -> dict[str, float]:
        return self.hierarchy.mpki(self.n_instrs)

    def summary(self) -> dict[str, float]:
        """Flat metric dict (harness CSV rows)."""
        m = self.mpki()
        hr = self.hierarchy.hit_rates()
        out = {
            "instrs": float(self.n_instrs),
            "cycles": self.cycles,
            "ipc": self.ipc,
            "l1d_mpki": m["L1D"], "l2_mpki": m["L2"], "l3_mpki": m["L3"],
            "l1d_hit": hr["L1D"], "l2_hit": hr["L2"], "l3_hit": hr["L3"],
            "dtlb_penalty": self.dtlb_penalty,
            "dtlb_mpki": self.dtlb.mpki(self.n_instrs),
            "branch_miss_rate": self.branch.miss_rate,
            "icache_mpki": self.icache.mpki(self.n_instrs),
            "framework_fraction": self.framework_fraction,
            "mlp": self.mlp,
        }
        out.update({f"cycles_{k.lower()}": v
                    for k, v in self.breakdown.fractions().items()})
        return out


def _memory_stall_cycles(trace: FrozenTrace, hier: HierarchyResult,
                         machine: MachineConfig) -> tuple[float, float]:
    """Return (stall_cycles, average MLP) for the L1-miss stream."""
    miss = hier.l1_miss
    if not miss.any():
        return 0.0, 1.0
    lat = hier.latency[miss].astype(np.float64)
    win = (trace.iat[miss] // np.uint64(machine.window_instrs)).astype(np.int64)
    serial = np.isin(trace.acc_region[miss],
                     np.fromiter(SERIAL_REGIONS, dtype=np.uint32))
    # A "chain" = one unit of exploitable parallelism.  Parallel misses are
    # each their own chain; a run of consecutive serial misses in the same
    # window is a single chain.
    prev_serial = np.concatenate(([False], serial[:-1]))
    prev_win = np.concatenate(([-1], win[:-1]))
    chain_start = ~serial | ~prev_serial | (win != prev_win)
    # compact window ids
    uwin, win_idx = np.unique(win, return_inverse=True)
    lat_per_win = np.bincount(win_idx, weights=lat)
    chains_per_win = np.bincount(win_idx, weights=chain_start.astype(np.float64))
    mlp_per_win = np.clip(chains_per_win, 1.0, float(machine.mshr))
    stall = float(np.sum(lat_per_win / mlp_per_win))
    mean_mlp = float(np.sum(lat_per_win) / stall) if stall else 1.0
    return stall, mean_mlp


class CPUModel:
    """Runs the full CPU characterization pipeline over a frozen trace."""

    def __init__(self, machine: MachineConfig = SCALED_XEON):
        self.machine = machine

    def run(self, trace: FrozenTrace, *, stack_depth: int = 0,
            footprint_bytes: int = 0, fast: bool = True,
            memo: dict | None = None) -> CPUMetrics:
        """Characterize one workload run.

        Parameters
        ----------
        trace:
            Frozen tracer output of the workload kernel.
        stack_depth:
            Deep-software-stack ablation depth for the ICache model
            (0 = GraphBIG's flat hierarchy).
        footprint_bytes:
            Heap footprint of the run (reported, not simulated).
        fast:
            Replay the hierarchy + DTLB through the fused one-pass engine
            (:mod:`repro.arch.replay`).  Bitwise-identical to the
            multi-pass reference simulators, which ``fast=False`` keeps
            available as the cross-validation oracle.
        memo:
            Optional per-*trace* scratch dict, shared across the machine
            configs of a sensitivity sweep.  Sub-results that do not
            depend on the dimension being swept — branch prediction
            (keyed by predictor kind/bits), the ICache stats (keyed by
            its config and ``stack_depth``), and the replay engine's
            line/page-id precompute — are computed once per sweep.  Only
            used on the ``fast`` path; the reference path never memoizes.
        """
        m = self.machine
        if not fast:
            memo = None
        if fast:
            rep = replay(trace.addrs, trace.rw, m, id_cache=memo)
            hier = rep.hierarchy
            tlb_stats = rep.tlb
        else:
            hier = MemoryHierarchy(m).simulate(trace.addrs, trace.rw)
            tlb = TLB(m.tlb)
            tlb.simulate(trace.addrs)
            tlb_stats = tlb.stats()
        bkey = ("branch", m.predictor, m.predictor_bits)
        if memo is not None and bkey in memo:
            br = memo[bkey]
        else:
            br = simulate_branches(trace.branch_sites, trace.branch_taken,
                                   kind=m.predictor, fast=fast,
                                   table_bits=m.predictor_bits)
            if memo is not None:
                memo[bkey] = br
        ikey = ("icache", m.icache, stack_depth)
        if memo is not None and ikey in memo:
            ic = memo[ikey]
        else:
            ic = ICache(m.icache).simulate(trace, stack_depth=stack_depth,
                                           fast=fast)
            if memo is not None:
                memo[ikey] = ic

        retiring = trace.n_instrs / m.issue_width
        mem_stall, mlp = _memory_stall_cycles(trace, hier, m)
        # page walks overlap with the outstanding data misses they
        # accompany, so they see the same memory-level parallelism
        walk_eff = tlb_stats.walk_cycles / max(mlp, 1.0)
        backend = mem_stall + walk_eff
        bad_spec = br.mispredicts * m.flush_penalty
        frontend = ic.misses * m.icache_penalty
        breakdown = CycleBreakdown(frontend=frontend,
                                   bad_speculation=bad_spec,
                                   retiring=retiring, backend=backend)
        return CPUMetrics(
            n_instrs=trace.n_instrs,
            cycles=breakdown.total,
            breakdown=breakdown,
            hierarchy=hier,
            dtlb=tlb_stats,
            branch=br,
            icache=ic,
            framework_fraction=trace.framework_fraction(),
            mlp=mlp,
            dtlb_walk_cycles_effective=walk_eff,
            footprint_bytes=footprint_bytes,
        )
