"""Unit tests for the GPU device timing model and populate step."""

import pytest

from repro.core.graph import PropertyGraph
from repro.gpu import K40, DeviceConfig, KernelStats, populate, time_kernel


class TestTimingModel:
    def test_roofline_takes_max(self):
        st = KernelStats(warp_issues=1e6)
        m = time_kernel(st, K40)
        assert m.exec_time >= m.t_compute
        assert m.t_bandwidth == 0.0

    def test_compute_bound(self):
        st = KernelStats(warp_issues=1e9)
        m = time_kernel(st, K40)
        assert m.exec_time == pytest.approx(
            1e9 / (K40.n_sms * K40.clock_hz), rel=1e-6)

    def test_bandwidth_bound(self):
        st = KernelStats(bytes_read=int(288e9))   # 1 second at peak
        m = time_kernel(st, K40)
        assert m.t_bandwidth == pytest.approx(1.0)
        assert m.read_throughput_gbs <= K40.peak_bw_gbs + 1e-6

    def test_latency_term_counts_dram_heavier(self):
        near = KernelStats(slot_transactions=1000, dram_transactions=0)
        far = KernelStats(slot_transactions=1000, dram_transactions=1000)
        assert (time_kernel(far, K40).t_latency
                > time_kernel(near, K40).t_latency)

    def test_atomic_conflicts_add_time(self):
        a = KernelStats(warp_issues=100)
        b = KernelStats(warp_issues=100, atomic_conflicts=10 ** 6)
        assert time_kernel(b, K40).exec_time > time_kernel(a, K40).exec_time

    def test_launch_overhead(self):
        a = KernelStats(warp_issues=100, launches=1)
        b = KernelStats(warp_issues=100, launches=100)
        d = time_kernel(b, K40).exec_time - time_kernel(a, K40).exec_time
        assert d == pytest.approx(99 * K40.launch_overhead_s)

    def test_ipc_bounded_by_sms(self):
        st = KernelStats(warp_issues=1e8)
        m = time_kernel(st, K40)
        assert m.ipc <= K40.n_sms + 1e-9

    def test_summary_keys(self):
        s = time_kernel(KernelStats(warp_issues=10), K40).summary()
        for k in ("bdr", "mdr", "read_gbs", "ipc", "exec_time_s"):
            assert k in s

    def test_custom_device(self):
        slow = DeviceConfig(n_sms=1, clock_ghz=0.1)
        st = KernelStats(warp_issues=1e6)
        assert (time_kernel(st, slow).exec_time
                > time_kernel(st, K40).exec_time)


class TestPopulate:
    def _graph(self):
        g = PropertyGraph()
        for i in range(10):
            g.add_vertex(i)
        for i in range(9):
            g.add_edge(i, i + 1)
        return g

    def test_populate_builds_both_formats(self):
        res = populate(self._graph())
        assert res.csr.n == 10 and res.csr.m == 9
        assert res.coo.m == 9

    def test_transfer_cost_positive(self):
        res = populate(self._graph())
        assert res.bytes_transferred > 0
        assert res.total_time > 0
        assert res.total_time == pytest.approx(
            res.convert_time + res.transfer_time)

    def test_larger_graph_more_bytes(self):
        small = populate(self._graph())
        g = PropertyGraph()
        for i in range(100):
            g.add_vertex(i)
        for i in range(99):
            g.add_edge(i, i + 1)
        big = populate(g)
        assert big.bytes_transferred > small.bytes_transferred
