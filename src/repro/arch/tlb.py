"""Data TLB model.

The paper finds DTLB miss penalty is a first-order inefficiency for graph
computing (>15 % of cycles for most workloads, 12.4 % average; Fig. 6):
graph footprints span many pages and the irregular pattern has almost no
page locality.  The model is an LRU set-associative translation cache over
4 KiB pages, reusing the generic cache engine at page granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.memmodel import PAGE_SIZE
from .cache import Cache, CacheConfig


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the DTLB: ``entries`` total, ``assoc`` ways,
    ``page`` bytes per page, ``walk_latency`` cycles per miss."""

    entries: int = 64
    assoc: int = 4
    page: int = PAGE_SIZE
    walk_latency: int = 36

    def cache_config(self) -> CacheConfig:
        return CacheConfig("DTLB", size=self.entries * self.page,
                           assoc=self.assoc, line=self.page,
                           latency=self.walk_latency)


@dataclass
class TLBStats:
    """Outcome of a DTLB simulation."""

    accesses: int
    misses: int
    walk_latency: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def walk_cycles(self) -> int:
        """Total cycles spent in page walks."""
        return self.misses * self.walk_latency

    def mpki(self, n_instrs: int) -> float:
        return 1000.0 * self.misses / n_instrs if n_instrs else 0.0

    def penalty_fraction(self, total_cycles: float) -> float:
        """DTLB miss penalty as a fraction of total cycles (Fig. 6)."""
        return self.walk_cycles / total_cycles if total_cycles else 0.0


class TLB:
    """LRU DTLB; :meth:`simulate` returns the per-access miss mask."""

    def __init__(self, config: TLBConfig = TLBConfig()):
        self.config = config
        self._cache = Cache(config.cache_config())

    def reset(self) -> None:
        self._cache.reset()

    def simulate(self, addrs: np.ndarray) -> np.ndarray:
        """Replay byte addresses; True marks translation misses."""
        return self._cache.simulate(addrs)

    def stats(self) -> TLBStats:
        st = self._cache.stats
        return TLBStats(st.accesses, st.misses, self.config.walk_latency)
