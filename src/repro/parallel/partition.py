"""Work partitioning across cores/threads.

The paper's CPU runs pin one thread per hardware core (Section 5.1) and
partition work by vertices or edges.  Partition quality — how evenly the
per-vertex work (≈ degree) spreads — determines the parallel efficiency of
the 16-core baseline in Fig. 12, exactly like warp-level imbalance does on
the GPU side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Partition:
    """Assignment of ``n`` work items to ``p`` parts."""

    owner: np.ndarray      # part index per item
    p: int

    def loads(self, weights: np.ndarray | None = None) -> np.ndarray:
        """Total weight per part (unit weights by default)."""
        w = (np.ones(len(self.owner))
             if weights is None else np.asarray(weights, dtype=np.float64))
        return np.bincount(self.owner, weights=w, minlength=self.p)

    def imbalance(self, weights: np.ndarray | None = None) -> float:
        """max/mean load ratio (1.0 = perfectly balanced)."""
        loads = self.loads(weights)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0


def block_partition(n: int, p: int) -> Partition:
    """Contiguous ranges of ``n/p`` items (the default vertex split)."""
    if p <= 0:
        raise ValueError("p must be positive")
    owner = np.minimum(np.arange(n) * p // max(n, 1), p - 1)
    return Partition(owner.astype(np.int64), p)


def cyclic_partition(n: int, p: int) -> Partition:
    """Round-robin assignment (breaks up degree-correlated runs)."""
    if p <= 0:
        raise ValueError("p must be positive")
    return Partition(np.arange(n, dtype=np.int64) % p, p)


def greedy_weighted_partition(weights: np.ndarray, p: int) -> Partition:
    """Longest-processing-time greedy: heaviest item to lightest part.

    The degree-aware split a tuned runtime uses; bounds imbalance at
    4/3 OPT for independent items.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    weights = np.asarray(weights, dtype=np.float64)
    owner = np.zeros(len(weights), dtype=np.int64)
    loads = np.zeros(p)
    for i in np.argsort(-weights):
        part = int(np.argmin(loads))
        owner[i] = part
        loads[part] += weights[i]
    return Partition(owner, p)


PARTITIONERS = {
    "block": lambda w, p: block_partition(len(w), p),
    "cyclic": lambda w, p: cyclic_partition(len(w), p),
    "greedy": greedy_weighted_partition,
}
