"""Chaos availability: the reliability layer on vs off, under real
network faults.

The serving claim behind the request-reliability layer (deadline
propagation, per-shard circuit breakers, budgeted retries, hedging,
degraded serving): under partial network failure a replicated cluster
should keep *answering* — fresh from a surviving replica when one
exists, stale-but-disclosed when none does — without amplifying load
into a retry storm.  The adversary is the deterministic
:class:`~repro.resilience.netchaos.ChaosProxy` interposed on every
router→shard hop.

Scenarios (each a fresh 4-shard cluster, replication 2, zipf-skewed
closed-loop plan, reliability ON vs OFF):

* **baseline** — transparent proxies; sanity and the p99 reference.
* **blackhole_single** — the primary of the zipf-hottest dataset is
  black-holed (bytes read, nothing answered — only a deadline ends the
  wait).  ON must keep success+degraded ≥ 99% with retry amplification
  ≤ 1.1x; OFF burns its whole client timeout against the dead shard.
* **brownout_latency** — half the shards (2 of 4) get +250 ms injected
  latency; hedged requests (p95 quantile) bound the tail without
  breaking the amplification budget.
* **blackhole_pair** — *both* owners of the hottest dataset go dark:
  no fresh copy exists, so availability for those keys is exactly the
  degraded-serving path (last-good answers, staleness disclosed, hard
  cap enforced).

Retry amplification = shard dials per client request, from the router's
``cluster_route_total`` counter (outcomes that actually dialed) over the
measured window.  Shape-not-absolute: thresholds compare arms within
this run on this host, seeds pin the fault schedule and the plan.
Results land in ``BENCH_chaos.json``.

Run standalone (tiny mode for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_chaos_availability.py
    CHAOS_BENCH_TINY=1 PYTHONPATH=src python benchmarks/bench_chaos_availability.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

try:
    from benchmarks.conftest import show
except ModuleNotFoundError:      # standalone: repo root not on sys.path
    def show(text: str) -> None:
        print("\n" + text)
from repro.cluster import ClusterSpec, ClusterThread
from repro.cluster.router import ReliabilityConfig
from repro.harness import format_table
from repro.resilience.netchaos import NetFaultSpec
from repro.service import LoadGenerator, schedule, workload_mix

TINY = bool(os.environ.get("CHAOS_BENCH_TINY"))

SHARDS = 4
REPLICATION = 2
WORKLOADS = ("BFS", "CComp")
DATASETS = ("twitter", "knowledge", "roadnet", "ldbc") if not TINY \
    else ("twitter", "ldbc")
SCALE = 0.02
SEED = 7
SKEW = 1.1
DEADLINE_S = 2.0
STALE_CAP_S = 60.0
CONCURRENCY = 4
REQUESTS = 60 if TINY else 150
WARM_ROUNDS = 3                        # transparent-proxy catalog sweeps
MIN_ON_AVAILABILITY = 0.99
MAX_AMPLIFICATION = 1.1
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Outcomes of ``cluster_route_total`` that represent an actual shard
#: dial (breaker skips never touched the wire).
_DIAL_OUTCOMES = ("ok", "failover", "hedge", "error", "unreachable")


def reliability_on(hedge: bool = False) -> ReliabilityConfig:
    return ReliabilityConfig(
        breaker_failure_threshold=3, breaker_reset_timeout_s=1.0,
        retry_budget_ratio=0.1, retry_budget_max_tokens=10.0,
        hedge_quantile=95.0 if hedge else None,
        serve_stale=True, stale_cap_s=STALE_CAP_S)


def catalog():
    return workload_mix(WORKLOADS, DATASETS, scale=SCALE, seeds=1,
                        machine="test", op="run")


def dialed_attempts(router) -> float:
    snap = router.registry.snapshot().get("cluster_route_total", {})
    return sum(s["value"] for s in snap.get("samples", [])
               if s["labels"].get("outcome") in _DIAL_OUTCOMES)


def hedge_counts(router) -> dict[str, float]:
    snap = router.registry.snapshot().get("cluster_hedges_total", {})
    return {s["labels"]["outcome"]: s["value"]
            for s in snap.get("samples", [])}


def drive(scenario: str, reliability: ReliabilityConfig,
          faults: dict[str, NetFaultSpec],
          n_requests: int) -> dict[str, Any]:
    """One arm: boot, warm through transparent proxies, inject the
    scenario's faults, run the measured plan, read the meters."""
    spec = ClusterSpec.of(SHARDS, replication=REPLICATION,
                          datasets=DATASETS)
    mix = catalog()
    plan = schedule(mix, n_requests, seed=SEED, dataset_skew=SKEW)
    deadline = DEADLINE_S if reliability.enabled else None
    with ClusterThread(spec, netchaos=True, netchaos_seed=SEED,
                       router_kwargs={"reliability": reliability,
                                      "eject_after": 2}) as cluster:
        gen = LoadGenerator(cluster.router_thread.host,
                            cluster.router_port,
                            concurrency=CONCURRENCY,
                            timeout_s=DEADLINE_S,
                            deadline_s=deadline)
        warm = gen.run([q for _ in range(WARM_ROUNDS) for q in mix])
        assert warm.failed == 0, warm.failures_by_kind
        for shard, fault in faults.items():
            cluster.set_shard_faults(shard, fault)
        attempts_before = dialed_attempts(cluster.router)
        report = gen.run(plan)
        attempts = dialed_attempts(cluster.router) - attempts_before
        hedges = hedge_counts(cluster.router)
        reliability_state = cluster.router.reliability_snapshot()
        proxy_stats = {name: p.snapshot()
                       for name, p in cluster.proxies.items()}
    s = report.summary()
    return {"scenario": scenario,
            "reliability": "on" if reliability.enabled else "off",
            "requests": report.requests, "ok": report.ok,
            "failed": report.failed,
            "availability": s["availability"],
            "degraded": report.degraded,
            "degraded_fraction": round(
                report.degraded / report.requests, 4),
            "max_staleness_s": s["max_staleness_s"],
            "goodput_rps": s["throughput_rps"],
            "p50_ms": s["latency_ms"]["p50"],
            "p99_ms": s["latency_ms"]["p99"],
            "failures_by_kind": s["failures_by_kind"],
            "served": s["served"],
            "attempts": attempts,
            "amplification": round(attempts / report.requests, 4)
            if report.requests else None,
            "hedges": hedges,
            "reliability_state": reliability_state,
            "proxies": proxy_stats}


def run_chaos_availability_benchmark() -> dict[str, Any]:
    spec = ClusterSpec.of(SHARDS, replication=REPLICATION,
                          datasets=DATASETS)
    # the zipf-hottest dataset is the first in the mix's rank order;
    # black-holing its owners is the worst-placed partition
    hot = DATASETS[0]
    owners = spec.ring().owners(hot, REPLICATION)
    primary = owners[0]
    blackhole = NetFaultSpec(blackhole=True)
    slow = NetFaultSpec(latency_ms=250.0, jitter_ms=50.0)
    browned = list(spec.shards)[:SHARDS // 2]

    arms: list[dict[str, Any]] = []

    def both(scenario: str, faults: dict[str, NetFaultSpec],
             n_requests: int, hedge: bool = False) -> None:
        arms.append(drive(scenario, reliability_on(hedge=hedge),
                          faults, n_requests))
        arms.append(drive(scenario, ReliabilityConfig.disabled(),
                          faults, n_requests))

    both("baseline", {}, REQUESTS)
    both("blackhole_single", {primary: blackhole}, REQUESTS)
    if not TINY:
        both("brownout_latency",
             {name: slow for name in browned}, REQUESTS, hedge=True)
        both("blackhole_pair",
             {name: blackhole for name in owners}, REQUESTS)

    by = {(a["scenario"], a["reliability"]): a for a in arms}
    headline = by[("blackhole_single", "on")]
    contrast = by[("blackhole_single", "off")]
    return {
        "config": {"shards": SHARDS, "replication": REPLICATION,
                   "workloads": list(WORKLOADS),
                   "datasets": list(DATASETS), "scale": SCALE,
                   "seed": SEED, "zipf_skew": SKEW,
                   "deadline_s": DEADLINE_S,
                   "stale_cap_s": STALE_CAP_S,
                   "requests_per_arm": REQUESTS,
                   "concurrency": CONCURRENCY, "tiny": TINY,
                   "hot_dataset": hot, "hot_owners": list(owners),
                   "blackholed_primary": primary},
        "methodology": "deterministic ChaosProxy faults (seeded) on "
                       "every router-shard hop; closed-loop zipf plan; "
                       "shape-not-absolute — compare arms within this "
                       "run, not req/s across hosts",
        "arms": arms,
        "headline": {
            "on_availability": headline["availability"],
            "off_availability": contrast["availability"],
            "availability_floor": MIN_ON_AVAILABILITY,
            "on_amplification": headline["amplification"],
            "amplification_ceiling": MAX_AMPLIFICATION,
            "on_max_staleness_s": headline["max_staleness_s"]},
    }


def _render(results: dict) -> str:
    rows = [[a["scenario"], a["reliability"], a["availability"],
             a["degraded"], a["amplification"], a["p50_ms"],
             a["p99_ms"], a["failed"]]
            for a in results["arms"]]
    return format_table(
        ["scenario", "layer", "avail", "degraded", "amp", "p50_ms",
         "p99_ms", "failed"],
        rows, title="chaos availability — reliability layer on vs off")


def _check(results: dict) -> None:
    h = results["headline"]
    # the acceptance contract: single-shard black hole, replication 2
    assert h["on_availability"] >= MIN_ON_AVAILABILITY, h
    assert h["on_availability"] > h["off_availability"], h
    assert h["on_amplification"] <= MAX_AMPLIFICATION, h
    for a in results["arms"]:
        assert a["max_staleness_s"] <= STALE_CAP_S, a


def test_chaos_availability():
    results = run_chaos_availability_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    h = results["headline"]
    show(_render(results)
         + f"\nblackhole_single: on={h['on_availability']:.4f} vs "
         f"off={h['off_availability']:.4f}, "
         f"amplification {h['on_amplification']}x "
         f"(ceiling {MAX_AMPLIFICATION}x)")
    _check(results)


if __name__ == "__main__":
    results = run_chaos_availability_benchmark()
    OUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True))
    print(_render(results))
    h = results["headline"]
    print(f"blackhole_single: on={h['on_availability']:.4f} vs "
          f"off={h['off_availability']:.4f}, "
          f"amplification {h['on_amplification']}x")
    print(f"wrote {OUT_PATH}")
