"""Integration tests: the paper's headline observations must hold on a
scaled end-to-end characterization run (Sections 5.2.2 and 5.3.1)."""

import pytest

from repro.arch.machine import SCALED_XEON
from repro.bayes import munin_like
from repro.core.taxonomy import ComputationType
from repro.datagen import ca_road, ldbc
from repro.gpu import run_gpu_workload
from repro.harness import characterize, clear_cache, gpu_speedup


@pytest.fixture(scope="module")
def rows():
    """Characterize a representative workload set on a mid-size LDBC
    graph with the scaled Xeon (one shared pass for all assertions)."""
    clear_cache()
    spec = ldbc(1000, avg_degree=16, seed=0)
    bn = munin_like(n_vertices=300, n_edges=400, target_params=20000,
                    seed=0)
    names = ("BFS", "DFS", "GCons", "GUp", "SPath", "kCore", "CComp",
             "GColor", "TC", "Gibbs", "DCentr", "BCentr")
    out = {}
    for name in names:
        if name == "Gibbs":
            from repro.harness import run_cpu_workload
            result, cpu = run_cpu_workload(name, spec, machine=SCALED_XEON,
                                           gibbs_bn=bn)
            from repro.harness.runner import Row
            from repro.workloads import WORKLOADS
            out[name] = Row(name, spec.name, WORKLOADS[name].CTYPE,
                            cpu=cpu, result=result)
        else:
            out[name] = characterize(name, spec, machine=SCALED_XEON)
    return out


class TestCPUObservations:
    def test_backend_is_major_bottleneck(self, rows):
        """'Backend is the major bottleneck for most graph computing
        workloads, especially for CompStruct.'"""
        for name, r in rows.items():
            if r.ctype == ComputationType.COMP_STRUCT and name != "TC":
                assert r.cpu.breakdown.fractions()["Backend"] > 0.5, name

    def test_compprop_less_backend_bound(self, rows):
        """CompProp shows markedly lower backend share (Fig. 5: ~50 %)."""
        gibbs = rows["Gibbs"].cpu.breakdown.fractions()["Backend"]
        bfs = rows["BFS"].cpu.breakdown.fractions()["Backend"]
        assert gibbs < bfs

    def test_kcore_gup_extreme_backend(self, rows):
        """'In extreme cases, such as kCore and GUp, the backend stall
        percentage can be even higher than 90 %.'"""
        for name in ("kCore", "GUp"):
            assert rows[name].cpu.breakdown.fractions()["Backend"] > 0.85

    def test_icache_mpki_low(self, rows):
        """'The ICache MPKI of each workload all show below 0.7 values.'"""
        for name, r in rows.items():
            assert r.cpu.summary()["icache_mpki"] < 0.8, name

    def test_l1d_hit_above_l2_l3(self, rows):
        """'L2 and L3 caches show extremely low hit rates ... however,
        L1D cache shows significantly higher hit rates.'"""
        for name, r in rows.items():
            s = r.cpu.summary()
            assert s["l1d_hit"] > s["l2_hit"] - 0.05, name

    def test_branch_miss_low_except_tc_and_compprop(self, rows):
        """'Workloads from other computation types show a miss prediction
        rate below 5 %' (TC and CompProp are the exceptions)."""
        for name, r in rows.items():
            if name in ("TC", "Gibbs", "TMorph"):
                continue
            assert r.cpu.summary()["branch_miss_rate"] < 0.08, name

    def test_tc_branch_miss_is_top_compstruct(self, rows):
        tc = rows["TC"].cpu.summary()["branch_miss_rate"]
        for name, r in rows.items():
            if r.ctype == ComputationType.COMP_STRUCT and name != "TC":
                assert tc > r.cpu.summary()["branch_miss_rate"], name

    def test_dcentr_near_top_l3_mpki(self, rows):
        """Fig. 7: DCentr has the suite's highest L3 MPKI (145.9).  At
        this reduced integration scale the graph half-fits the scaled L3,
        compressing the gap — DCentr must stay within 20 % of the max
        (the strict ordering is asserted at full scale by the Fig. 7
        benchmark)."""
        dc = rows["DCentr"].cpu.summary()["l3_mpki"]
        top = max(r.cpu.summary()["l3_mpki"] for r in rows.values())
        assert dc >= 0.8 * top

    def test_compprop_lowest_mpki_highest_ipc(self, rows):
        """Fig. 8: CompProp has by far the lowest MPKI and highest IPC."""
        gibbs = rows["Gibbs"].cpu.summary()
        for name, r in rows.items():
            if r.ctype == ComputationType.COMP_STRUCT:
                assert gibbs["l3_mpki"] < r.cpu.summary()["l3_mpki"]
                assert gibbs["ipc"] > r.cpu.summary()["ipc"]

    def test_gcons_better_locality_than_gup(self, rows):
        """'In GCons, significantly better locality is observed.'"""
        assert (rows["GCons"].cpu.summary()["l3_mpki"]
                < rows["GUp"].cpu.summary()["l3_mpki"])

    def test_tc_gibbs_lowest_dtlb(self, rows):
        """Fig. 6: DTLB penalty lowest for TC (3.9 %) and Gibbs (1 %)."""
        for probe in ("TC", "Gibbs"):
            p = rows[probe].cpu.summary()["dtlb_penalty"]
            assert p < 0.06, probe

    def test_framework_time_dominates(self, rows):
        """Fig. 1: in-framework time is large (avg 76 %); TC, whose
        intersections are user code, is the outlier."""
        fw = {n: r.result.trace.framework_fraction()
              for n, r in rows.items()}
        heavy = [v for n, v in fw.items() if n != "TC"]
        assert sum(heavy) / len(heavy) > 0.6
        assert fw["TC"] < 0.3


class TestGPUObservations:
    def test_gpu_wins_for_most_workloads(self):
        """'GPU provides significant speedup in most workloads.'"""
        clear_cache()
        spec = ldbc(1000, avg_degree=16, seed=0)
        wins = 0
        names = ("BFS", "SPath", "kCore", "CComp", "GColor", "TC",
                 "DCentr", "BCentr")
        speedups = {}
        for name in names:
            r = characterize(name, spec, machine=SCALED_XEON,
                             with_gpu=True)
            speedups[name] = gpu_speedup(
                r, machine=SCALED_XEON,
                weights=spec.degrees_undirected())
        wins = sum(1 for v in speedups.values() if v > 1.0)
        assert wins >= 5
        # CComp shows the standout speedup (paper: up to 121x)
        assert speedups["CComp"] == max(speedups.values())

    def test_memory_divergence_data_sensitive(self):
        """'Memory divergence shows higher data sensitivity' (Fig. 13)."""
        social = ldbc(800, avg_degree=14, seed=1)
        road = ca_road(800, seed=1)
        _, ms = run_gpu_workload("BFS", social)
        _, mr = run_gpu_workload("BFS", road)
        assert abs(ms.mdr - mr.mdr) > 0.1
